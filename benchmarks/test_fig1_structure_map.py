"""Figure 1: the fault-space structure map for ``ls``.

The paper plots, for the ls utility, which (test, libc function) pairs
fail when the *first* call to that function is made to fail.  The black
clusters (structure) are what motivates guided exploration.

Reproduction: the same grid over our simulated ls's 11 tests and the
19-function axis, rendered as ASCII ('#' = test failure, '.' = none).
Shape checks: per-utility block structure exists — functions used only
by ls fail only ls tests; ignored-failure functions (setlocale) produce
empty columns; the grid is far from uniform.
"""

from __future__ import annotations

from conftest import run_once
from repro.reporting import render_structure_map, structure_map
from repro.sim.targets.coreutils import COREUTILS_FUNCTIONS, CoreutilsTarget

LS_TESTS = list(range(1, 12))


def test_fig1_ls_structure_map(benchmark, report):
    target = CoreutilsTarget()
    functions = list(COREUTILS_FUNCTIONS)

    grid = run_once(
        benchmark,
        lambda: structure_map(target, functions, test_ids=LS_TESTS, call_number=1),
    )

    rendering = render_structure_map(grid, functions, LS_TESTS)
    report("fig1_structure_map", rendering)

    column = {name: i for i, name in enumerate(functions)}

    # The locale column is all gray: coreutils ignore locale failures.
    assert not any(row[column["setlocale"]] for row in grid)
    # closedir failures are ignored by ls (gray column, like Fig. 1).
    assert not any(row[column["closedir"]] for row in grid)
    # opendir is on most ls paths: a mostly-black column.
    assert sum(row[column["opendir"]] for row in grid) >= 8
    # The grid is structured, not uniform: overall failure density is
    # strictly between 5% and 80%.
    total = sum(sum(row) for row in grid)
    assert 0.05 * len(grid) * len(functions) < total < 0.8 * len(grid) * len(functions)


def test_fig1_full_grid_block_structure(benchmark, report):
    """Extend the map to all 29 tests: utility blocks must be visible."""
    target = CoreutilsTarget()
    functions = list(COREUTILS_FUNCTIONS)
    all_tests = list(range(1, 30))

    grid = run_once(
        benchmark,
        lambda: structure_map(target, functions, test_ids=all_tests, call_number=1),
    )
    report(
        "fig1_full_grid",
        render_structure_map(grid, functions, all_tests),
    )

    column = {name: i for i, name in enumerate(functions)}
    # ls-only functions never fail ln/mv tests (rows 11..28).
    for function in ("opendir", "readdir", "chdir"):
        assert not any(grid[row][column[function]] for row in range(11, 29))
    # link failures hit only the ln block.
    assert any(grid[row][column["link"]] for row in range(11, 20))
    assert not any(grid[row][column["link"]] for row in range(0, 11))
    assert not any(grid[row][column["link"]] for row in range(20, 29))
