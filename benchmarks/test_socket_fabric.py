"""Networked fabric: wire overhead and digest parity of socket dispatch.

Runs the same MiniDB exploration twice — once on the in-process thread
fabric, once over the real TCP socket fabric with two explorer nodes,
at the same speculative batch size (the batch size shapes the search
trajectory, so it is held fixed across fabrics) — and writes the
numbers to ``BENCH_net.json`` at the repo root (plus a text table
under ``benchmarks/out/``):

1. **Digest parity** — the socket campaign's history digest must be
   byte-identical to the in-process run's: the wire moves placement,
   never outcomes.
2. **Wire accounting** — bytes and frames per executed test under the
   negotiated v2 binary protocol: batched work frames, one coalesced
   ``report_batch`` per chunk with the backpressure credit piggybacked.
   The gates are the ISSUE acceptance bars — under 200 bytes and under
   0.5 frames per test, versus the ~1 kB / several frames the v1 JSON
   dialect paid.  The GIL bounds what two in-process node threads can
   add in *throughput* on the pure-Python simulator (the real win needs
   separate processes or machines, as in the paper's EC2 deployment),
   so the gate here is overhead and correctness, not speedup.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import cores_info, run_once
from repro.cluster import (
    PROTOCOL_VERSION,
    ClusterExplorer,
    ExplorerNode,
    FaultTolerantFabric,
    LocalCluster,
    NodeManager,
    RetryPolicy,
    SocketFabric,
)
from repro.core import (
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    standard_impact,
)
from repro.core.checkpoint import history_digest
from repro.sim.targets.minidb import MINIDB_FUNCTIONS, MiniDbTarget
from repro.util.tables import TextTable

ITERATIONS = 300
NODES = 2
CAPACITY = 8
BATCH_SIZE = 16
SEED = 3
BENCH_PATH = Path(__file__).parent.parent / "BENCH_net.json"


def _space() -> FaultSpace:
    return FaultSpace.product(
        test=range(1, 1148), function=MINIDB_FUNCTIONS, call=range(1, 101)
    )


def _timed(func):
    started = time.perf_counter()
    result = func()
    return result, time.perf_counter() - started


def test_socket_fabric_wire_overhead(benchmark, report):
    def experiment():
        def explore(cluster):
            return ClusterExplorer(
                cluster, _space(), standard_impact(), FitnessGuidedSearch(),
                IterationBudget(ITERATIONS), rng=SEED,
                batch_size=BATCH_SIZE,
            ).run()

        local = LocalCluster(
            [NodeManager(f"local{i}", MiniDbTarget()) for i in range(NODES)]
        )
        local_results, local_s = _timed(lambda: explore(
            FaultTolerantFabric(local, policy=RetryPolicy())
        ))

        net = SocketFabric("127.0.0.1:0", expected_nodes=NODES)
        nodes = [
            ExplorerNode(
                (net.host, net.port), MiniDbTarget, name=f"bench{i}",
                capacity=CAPACITY, heartbeat_interval=0.2,
            )
            for i in range(NODES)
        ]
        threads = [n.run_in_thread() for n in nodes]
        net.wait_for_nodes(timeout=30)
        try:
            socket_results, socket_s = _timed(lambda: explore(
                FaultTolerantFabric(net, policy=RetryPolicy())
            ))
            wire = {
                "bytes_in": net.bytes_in, "bytes_out": net.bytes_out,
                "frames_in": net.frames_in, "frames_out": net.frames_out,
                "requeued": net.requeued,
                "registrations": net.registrations,
                "node_stats": net.node_stats(),
                "encode_seconds": net.encode_seconds,
            }
        finally:
            net.close()
            for thread in threads:
                thread.join(timeout=10)
        return {
            "local": (local_results, local_s),
            "socket": (socket_results, socket_s),
            "wire": wire,
        }

    measured = run_once(benchmark, experiment)

    local_results, local_s = measured["local"]
    socket_results, socket_s = measured["socket"]
    wire = measured["wire"]
    local_digest = history_digest(list(local_results))
    socket_digest = history_digest(list(socket_results))
    executed = len(socket_results)
    bytes_per_test = (wire["bytes_in"] + wire["bytes_out"]) / executed
    frames_per_test = (wire["frames_in"] + wire["frames_out"]) / executed

    payload = {
        "benchmark": "socket_fabric",
        "target": "minidb",
        "iterations": ITERATIONS,
        "cores": cores_info(),
        "nodes": NODES,
        "capacity_per_node": CAPACITY,
        "batch_size": BATCH_SIZE,
        "local_threads": {
            "tests": len(local_results),
            "seconds": round(local_s, 4),
            "history_digest": local_digest,
        },
        "socket": {
            "tests": executed,
            "seconds": round(socket_s, 4),
            "history_digest": socket_digest,
            "digest_matches_local": socket_digest == local_digest,
        },
        "wire": {
            "version": PROTOCOL_VERSION,
            "bytes_in": wire["bytes_in"],
            "bytes_out": wire["bytes_out"],
            "frames_in": wire["frames_in"],
            "frames_out": wire["frames_out"],
            "bytes_per_test": round(bytes_per_test, 1),
            "frames_per_test": round(frames_per_test, 2),
            "encode_seconds": round(wire["encode_seconds"], 4),
            "requeued": wire["requeued"],
            "registrations": wire["registrations"],
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    table = TextTable(
        ["fabric", "tests", "seconds", "digest"],
        title=f"socket-fabric wire overhead, MiniDB x{ITERATIONS} "
              f"({NODES} nodes x {CAPACITY} slots)",
    )
    table.add_row([f"threads x{NODES}", len(local_results), f"{local_s:.2f}",
                   local_digest[:12]])
    table.add_row([f"socket x{NODES}", executed, f"{socket_s:.2f}",
                   socket_digest[:12]])
    table.add_row(["wire bytes/test", "-", "-", f"{bytes_per_test:.0f}"])
    table.add_row(["wire frames/test", "-", "-", f"{frames_per_test:.1f}"])
    report("socket_fabric", table.render()
           + f"\nwritten to {BENCH_PATH.name}")

    # The acceptance bar: byte-identical history over the real network.
    assert socket_digest == local_digest
    assert executed >= ITERATIONS
    # Every node registered exactly once; nothing needed requeueing on
    # a healthy localhost run.
    assert wire["registrations"] == NODES
    assert wire["requeued"] == 0
    # Each node actually pulled a share of the work.
    assert len(wire["node_stats"]) == NODES
    assert all(s["executed"] > 0 for s in wire["node_stats"])
    # The tentpole economics (ISSUE acceptance): batched binary frames
    # put a test at tens of bytes — v1 JSON paid ~1 kB and several
    # frames — and coalesced reports push the frame count below one
    # frame per two tests.
    assert bytes_per_test < 200, payload["wire"]
    assert frames_per_test < 0.5, payload["wire"]
