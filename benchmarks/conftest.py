"""Shared benchmark harness utilities.

Every benchmark regenerates one of the paper's tables or figures.  The
reproduced rows are printed (visible with ``pytest -s``) and also written
to ``benchmarks/out/<experiment>.txt`` so EXPERIMENTS.md can cite them.

Benchmarks run their experiment exactly once inside the timing harness
(``benchmark.pedantic(..., rounds=1)``): the measured quantity is the
wall-clock of the whole experiment, which is itself a reproduction datum
(the paper contrasts 250-iteration searches against CPU-years of
exhaustive exploration).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


def cores_info() -> dict:
    """The machine's real parallelism, recorded in every BENCH payload:
    what the OS reports (``cpu_count``) and what this process may
    actually use (``usable``, the scheduler affinity mask where
    available).  Deltas judge speedup numbers against the cores the
    runner really had, not against a hopeful assumption."""
    cpu_count = os.cpu_count() or 1
    try:
        usable = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        usable = cpu_count
    return {"cpu_count": cpu_count, "usable": usable}


@pytest.fixture(scope="session")
def report():
    """report(name, text): print and persist an experiment's output."""
    OUT_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        print(f"\n=== {name} ===\n{text}\n")
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _report


def run_once(benchmark, func):
    """Execute ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
