"""§7.7: scalability of the AFEX prototype.

Two claims reproduced:

1. "the number of tests performed scales linearly, with virtually no
   overhead" on 1-14 nodes — measured on the virtual-time cluster
   (DESIGN.md documents the EC2 → virtual-time substitution);
2. "the AFEX explorer can generate 8,500 tests per second ...  it could
   easily keep a cluster of several thousand node managers 100% busy" —
   measured as the raw generation rate of Algorithm 1 in isolation.
"""

from __future__ import annotations

import random

from conftest import run_once
from repro.cluster import ClusterExplorer, NodeManager, VirtualCluster
from repro.core import (
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    standard_impact,
)
from repro.sim.targets.coreutils import COREUTILS_FUNCTIONS, CoreutilsTarget
from repro.util.tables import TextTable

NODE_COUNTS = (1, 2, 4, 8, 14)
TESTS_PER_RUN = 420  # divisible by every node count's batches


def _space() -> FaultSpace:
    return FaultSpace.product(
        test=range(1, 30), function=COREUTILS_FUNCTIONS, call=[0, 1, 2]
    )


def test_scalability_linear_nodes(benchmark, report):
    def experiment():
        rows = {}
        for nodes in NODE_COUNTS:
            managers = [
                NodeManager(f"node{i}", CoreutilsTarget()) for i in range(nodes)
            ]
            cluster = VirtualCluster(managers)
            explorer = ClusterExplorer(
                cluster,
                _space(),
                standard_impact(),
                FitnessGuidedSearch(),
                IterationBudget(TESTS_PER_RUN),
                rng=3,
                batch_size=max(nodes * 2, 8),
            )
            results = explorer.run()
            rows[nodes] = (len(results), cluster.makespan,
                           cluster.speedup_over_serial())
        return rows

    rows = run_once(benchmark, experiment)

    table = TextTable(
        ["nodes", "tests", "virtual makespan (s)", "speedup"],
        title="§7.7 — virtual-time cluster scaling (paper: linear, 1-14 "
              "EC2 nodes)",
    )
    for nodes, (tests, makespan, speedup) in rows.items():
        table.add_row([nodes, tests, f"{makespan:.4f}", f"{speedup:.2f}x"])
    report("scalability_nodes", table.render())

    # Linear-ish scaling: 14 nodes achieve >= 10x the single-node speedup,
    # and makespan decreases monotonically with node count.
    makespans = [rows[n][1] for n in NODE_COUNTS]
    assert all(b < a for a, b in zip(makespans, makespans[1:]))
    assert rows[14][2] >= 10.0
    assert rows[8][2] >= 6.0


def test_scalability_explorer_generation_rate(benchmark, report):
    """The explorer in isolation: tests generated per second.

    The paper reports 8,500 tests/s on a 2 GHz Xeon E5405 (2008
    hardware).  We measure Algorithm 1's propose+observe loop with a
    synthetic zero-cost executor.
    """
    space = FaultSpace.product(
        test=range(1, 1148), function=COREUTILS_FUNCTIONS, call=range(1, 101)
    )

    def generate_batch():
        strategy = FitnessGuidedSearch(initial_batch=25)
        strategy.bind(space, random.Random(1))
        produced = 0
        from repro.injection.plan import InjectionPlan
        from repro.sim.process import RunResult

        blank = RunResult(
            test_id=1, test_name="", plan=InjectionPlan.none(), exit_code=0,
            crash_kind=None, crash_message=None, crash_stack=None,
            injection_stack=None, injected=True, coverage=frozenset(),
            steps=1,
        )
        for _ in range(2000):
            fault = strategy.propose()
            if fault is None:
                break
            strategy.observe(fault, 1.0, blank)
            produced += 1
        return produced

    produced = benchmark(generate_batch)
    rate = produced / benchmark.stats.stats.mean
    report(
        "scalability_generation_rate",
        (
            f"explorer generation rate: {rate:,.0f} tests/second\n"
            f"(paper: 8,500/s on a 2008-era Xeon; enough to keep thousands "
            f"of node managers busy)"
        ),
    )
    assert produced == 2000
    assert rate > 8500  # modern hardware should comfortably beat the paper
