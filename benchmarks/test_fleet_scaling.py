"""Elastic fleet scaling: throughput, stealing, and dedup vs node count.

Runs the same MiniDB campaign on socket fleets of 1/2/4/8/16 simulated
nodes and writes ``BENCH_fleet.json`` at the repo root.  Each node's
executor sleeps a few milliseconds per test (releasing the GIL, the
way a real remote machine releases the manager's CPU), so fleet
scaling is measurable inside one container; the sleeps are deliberately
*heterogeneous* across nodes so the fast nodes finish their partitions
early and the work-stealing path carries real load.

Per arm: throughput and speedup over the single-node fleet, steal and
requeue accounting, digest parity against an in-process single-manager
run (placement must never move outcomes), and the fleet-cache dedup
hit-rate of re-running the identical campaign on the warm fleet.  A
separate churn arm exercises a mid-campaign join plus a graceful drain
between dispatch rounds.

Gates (the CI acceptance bars): the 8-node fleet must deliver at least
3x the single-node throughput, and every arm's history digest must be
byte-identical to the reference.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import cores_info, run_once
from repro.cluster import (
    ClusterExplorer,
    ExplorerNode,
    FaultTolerantFabric,
    FleetResultCache,
    LocalCluster,
    NodeManager,
    RetryPolicy,
    SocketFabric,
    TestRequest,
)
from repro.core import (
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    standard_impact,
)
from repro.core.checkpoint import history_digest
from repro.sim.targets.minidb import MINIDB_FUNCTIONS, MiniDbTarget
from repro.util.tables import TextTable

ITERATIONS = 192
NODE_COUNTS = (1, 2, 4, 8, 16)
GATED_NODES = 8
SPEEDUP_GATE = 3.0
CAPACITY = 4
#: one fixed batch width across every arm — the batch size shapes the
#: search trajectory, and digest parity needs one trajectory.
BATCH_SIZE = 64
SEED = 11
#: per-test executor sleeps, cycled across nodes: heterogeneity is what
#: makes stealing happen (fast nodes drain their partitions first).
DELAYS = (0.012, 0.016, 0.02)
BENCH_PATH = Path(__file__).parent.parent / "BENCH_fleet.json"


def _space() -> FaultSpace:
    return FaultSpace.product(
        test=range(1, 1148), function=MINIDB_FUNCTIONS, call=range(1, 101)
    )


def _timed(func):
    started = time.perf_counter()
    result = func()
    return result, time.perf_counter() - started


class SleepyNodeManager(NodeManager):
    """An executor that models a machine ``delay`` seconds slower per
    test; the sleep releases the GIL, so fleets scale in-process."""

    def __init__(self, *args, delay: float = 0.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.delay = delay

    def execute(self, request):
        if self.delay:
            time.sleep(self.delay)
        return super().execute(request)


class SleepyNode(ExplorerNode):
    def __init__(self, *args, delay: float = 0.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.delay = delay

    def _node_manager(self) -> NodeManager:
        if self._manager is None:
            self._manager = SleepyNodeManager(
                self.name, self.target_factory(),
                step_budget=self.step_budget, cache=self.cache,
                delay=self.delay,
            )
        return self._manager


def _campaign(fabric):
    return ClusterExplorer(
        FaultTolerantFabric(fabric, policy=RetryPolicy()),
        _space(), standard_impact(), FitnessGuidedSearch(),
        IterationBudget(ITERATIONS), rng=SEED, batch_size=BATCH_SIZE,
    ).run()


def _fleet(count: int, **fabric_kwargs):
    net = SocketFabric("127.0.0.1:0", expected_nodes=count,
                       **fabric_kwargs)
    nodes = [
        SleepyNode(
            (net.host, net.port), MiniDbTarget, name=f"fleet{i:02d}",
            capacity=CAPACITY, heartbeat_interval=0.2,
            delay=DELAYS[i % len(DELAYS)],
        )
        for i in range(count)
    ]
    threads = [n.run_in_thread() for n in nodes]
    net.wait_for_nodes(timeout=30)
    return net, nodes, threads


def _teardown(net, nodes, threads):
    net.close()
    for node in nodes:
        node.stop()
    for thread in threads:
        thread.join(timeout=10)


def _scaling_arm(count: int) -> dict:
    net, nodes, threads = _fleet(count, fleet_cache=FleetResultCache())
    try:
        results, seconds = _timed(lambda: _campaign(net))
        digest = history_digest(list(results))
        # Re-run the identical campaign on the warm fleet: every
        # scenario is already in the fleet cache, so dedup answers it
        # at the manager without dispatching.
        hits_before = net.fleet_dedup_hits
        rerun, rerun_s = _timed(lambda: _campaign(net))
        rerun_hits = net.fleet_dedup_hits - hits_before
        return {
            "nodes": count,
            "tests": len(results),
            "seconds": seconds,
            "digest": digest,
            "rerun_digest": history_digest(list(rerun)),
            "stolen": net.stolen,
            "steal_duplicates": net.steal_duplicates,
            "requeued": net.requeued,
            "dedup_rerun": {
                "tests": len(rerun),
                "hits": rerun_hits,
                "hit_rate": rerun_hits / len(rerun) if rerun else 0.0,
                "seconds": rerun_s,
            },
        }
    finally:
        _teardown(net, nodes, threads)


def _churn_requests(count: int, base: int = 0) -> list[TestRequest]:
    return [
        TestRequest(
            request_id=base + i, subspace="fleet",
            scenario={"test": 1 + (i % 50), "function": "read",
                      "call": 1 + i // 50},
        )
        for i in range(count)
    ]


def _report_core(report) -> tuple:
    """The digest-material fields: placement (manager), wall-clock
    (cost) and trace spans are allowed to differ across fabrics."""
    return (
        report.request_id, report.failed, report.crash_kind,
        report.exit_code, report.steps, report.stack_digest,
        report.injected, report.injection_stack,
    )


def _churn_arm() -> dict:
    """An 8-node round sequence with one join and one drain mid-way."""
    net, nodes, threads = _fleet(GATED_NODES - 1)
    joiner = SleepyNode(
        (net.host, net.port), MiniDbTarget, name="fleet-joiner",
        capacity=CAPACITY, heartbeat_interval=0.2,
        delay=DELAYS[0],
    )
    joiner_thread = None
    try:
        rounds = [_churn_requests(64, base=1000 * r) for r in range(3)]
        reports = list(net.run_batch(rounds[0]))
        # Join between rounds (the manager is mid-campaign: dispatched).
        joiner_thread = joiner.run_in_thread()
        net.wait_for_nodes(count=GATED_NODES, timeout=30)
        # Drain one incumbent; round 2 runs while it retires.
        nodes[0].request_drain()
        reports += net.run_batch(rounds[1])
        reports += net.run_batch(rounds[2])

        reference = LocalCluster([NodeManager("ref", MiniDbTarget())])
        expected = [
            _report_core(r)
            for batch in rounds for r in reference.run_batch(batch)
        ]
        return {
            "nodes": GATED_NODES,
            "tests": len(reports),
            "matches_reference":
                [_report_core(r) for r in reports] == expected,
            "mid_campaign_joins": net.mid_campaign_joins,
            "graceful_leaves": net.graceful_leaves,
            "worker_deaths": net.health.worker_deaths,
            "stolen": net.stolen,
            "requeued": net.requeued,
            "joiner_executed": joiner.executed,
        }
    finally:
        _teardown(net, nodes, threads)
        joiner.stop()
        if joiner_thread is not None:
            joiner_thread.join(timeout=10)


def test_fleet_scaling(benchmark, report):
    def experiment():
        reference = LocalCluster([NodeManager("solo", MiniDbTarget())])
        reference_digest = history_digest(list(_campaign(reference)))
        arms = [_scaling_arm(count) for count in NODE_COUNTS]
        churn = _churn_arm()
        return reference_digest, arms, churn

    reference_digest, arms, churn = run_once(benchmark, experiment)

    single = next(arm for arm in arms if arm["nodes"] == 1)
    single_rate = single["tests"] / single["seconds"]
    payload_arms = []
    for arm in arms:
        rate = arm["tests"] / arm["seconds"]
        payload_arms.append({
            "nodes": arm["nodes"],
            "tests": arm["tests"],
            "seconds": round(arm["seconds"], 4),
            "tests_per_second": round(rate, 1),
            "speedup_vs_single": round(rate / single_rate, 2),
            "stolen": arm["stolen"],
            "steal_duplicates": arm["steal_duplicates"],
            "requeued": arm["requeued"],
            "digest_matches_reference":
                arm["digest"] == reference_digest,
            "dedup_rerun": {
                "tests": arm["dedup_rerun"]["tests"],
                "hits": arm["dedup_rerun"]["hits"],
                "hit_rate": round(arm["dedup_rerun"]["hit_rate"], 4),
                "seconds": round(arm["dedup_rerun"]["seconds"], 4),
                "digest_matches_reference":
                    arm["rerun_digest"] == reference_digest,
            },
        })

    gated = next(a for a in payload_arms if a["nodes"] == GATED_NODES)
    payload = {
        "benchmark": "fleet_scaling",
        "target": "minidb",
        "iterations": ITERATIONS,
        "batch_size": BATCH_SIZE,
        "capacity_per_node": CAPACITY,
        "node_delays_seconds": list(DELAYS),
        "seed": SEED,
        "cores": cores_info(),
        "reference_digest": reference_digest,
        "arms": payload_arms,
        "churn": churn,
        "speedup_gate": {
            "nodes": GATED_NODES,
            "threshold": SPEEDUP_GATE,
            "speedup": gated["speedup_vs_single"],
            "skipped": False,
            "reason": None,
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    table = TextTable(
        ["nodes", "tests", "seconds", "tests/s", "speedup", "stolen",
         "dedup hit-rate"],
        title=f"elastic fleet scaling, MiniDB x{ITERATIONS} "
              f"(batch {BATCH_SIZE}, capacity {CAPACITY}/node)",
    )
    for arm in payload_arms:
        table.add_row([
            arm["nodes"], arm["tests"], f"{arm['seconds']:.2f}",
            f"{arm['tests_per_second']:.0f}",
            f"{arm['speedup_vs_single']:.2f}x", arm["stolen"],
            f"{arm['dedup_rerun']['hit_rate']:.2f}",
        ])
    table.add_row([
        f"churn({churn['nodes']})", churn["tests"], "-", "-",
        f"+{churn['mid_campaign_joins']} join "
        f"-{churn['graceful_leaves']} drain",
        churn["stolen"], "-",
    ])
    report("fleet_scaling", table.render()
           + f"\nwritten to {BENCH_PATH.name}")

    # Placement never moves outcomes: every fleet size (and every warm
    # rerun) reproduces the single-manager history byte for byte.
    for arm in payload_arms:
        assert arm["digest_matches_reference"], arm
        assert arm["dedup_rerun"]["digest_matches_reference"], arm
        assert arm["requeued"] == 0, arm
        if arm["nodes"] >= 2:
            # Heterogeneous nodes guarantee a drained partition while a
            # slow node still holds backlog — stealing must fire.
            assert arm["stolen"] >= 1, arm
        # The warm rerun is answered from the fleet cache.
        assert arm["dedup_rerun"]["hit_rate"] >= 0.95, arm
    # Elasticity without losses: one join, one drain, no deaths, and
    # the report stream still matches the in-process reference exactly.
    assert churn["matches_reference"], churn
    assert churn["mid_campaign_joins"] == 1, churn
    assert churn["graceful_leaves"] == 1, churn
    assert churn["worker_deaths"] == 0, churn
    assert churn["joiner_executed"] > 0, churn
    # The CI acceptance bar: >= 3x single-node throughput at 8 nodes.
    assert gated["speedup_vs_single"] >= SPEEDUP_GATE, payload[
        "speedup_gate"
    ]
