"""Fault-injection-oriented assertions (§7 "Metrics", realized).

"Once fault injection becomes more widely adopted in test suites, we
expect developers to write fault injection-oriented assertions, such as
'under no circumstances should a file transfer be only partially
completed when the system stops,' in which case one can count the number
of failed assertions."

This bench does that counting for two shipped invariant contracts:

* **DocStore snapshot durability** — acknowledged snapshots must survive
  any later failure.  v0.8's truncate-in-place snapshot violates the
  contract across its persist group; v2.0's atomic temp+rename never
  does (verified sweep).
* **mv no-data-loss** — and the sweep's by-product: the invariant
  machinery *discovered* a check-then-act window in ``mv -b`` (a failed
  ``stat`` skips the backup and the rename clobbers the destination
  silently).
"""

from __future__ import annotations

from conftest import run_once
from repro.core import (
    CompositeImpact,
    ExplorationSession,
    FailedTestImpact,
    FaultSpace,
    FitnessGuidedSearch,
    InvariantImpact,
    IterationBudget,
    TargetRunner,
)
from repro.injection.libfi import LibFaultInjector
from repro.sim.process import run_test
from repro.sim.targets.coreutils import CoreutilsTarget
from repro.sim.targets.docstore import DocStoreTarget
from repro.util.tables import TextTable

PERSIST_TESTS = range(36, 51)
SWEEP_FUNCTIONS = ("open", "write", "close", "rename", "fsync", "unlink")
SWEEP_CALLS = range(1, 8)


def _violation_sweep(version: str) -> tuple[int, int]:
    """(injections swept, assertion violations) over the persist group."""
    target = DocStoreTarget(version)
    injector = LibFaultInjector()
    swept = violated = 0
    for test_id in PERSIST_TESTS:
        for function in SWEEP_FUNCTIONS:
            for call in SWEEP_CALLS:
                plan = injector.plan_for({"function": function, "call": call})
                result = run_test(target, target.suite[test_id], plan)
                swept += 1
                if result.violated:
                    violated += 1
    return swept, violated


def test_assertion_counting_docstore(benchmark, report):
    def experiment():
        return {v: _violation_sweep(v) for v in ("0.8", "2.0")}

    rows = run_once(benchmark, experiment)

    table = TextTable(
        ["version", "injections swept", "assertion violations"],
        title=(
            "§7-style assertion counting — DocStore snapshot-durability "
            "contract over the persist group"
        ),
    )
    for version, (swept, violated) in rows.items():
        table.add_row([f"v{version}", swept, violated])
    report("invariant_assertions", table.render())

    # v0.8 loses acknowledged data; v2.0 provably (within the sweep) never.
    assert rows["0.8"][1] > 0
    assert rows["2.0"][1] == 0
    assert rows["0.8"][0] == rows["2.0"][0]  # identical sweeps


def test_invariant_guided_search_finds_mv_toctou(benchmark, report):
    """Invariant-scored exploration surfaces the discovered mv -b bug."""
    target = CoreutilsTarget()
    space = FaultSpace.product(
        test=range(21, 30),
        function=target.libc_functions(),
        call=[0, 1, 2],
    )

    def explore(seed):
        return ExplorationSession(
            runner=TargetRunner(target),
            space=space,
            # Failures give the search a gradient toward error-handling
            # regions; the (rare) invariant violation dominates the score.
            metric=CompositeImpact([InvariantImpact(30.0),
                                    FailedTestImpact(1.0)]),
            strategy=FitnessGuidedSearch(initial_batch=20),
            target=IterationBudget(250),
            rng=seed,
        ).run()

    def experiment():
        all_hits = []
        tested = 0
        for seed in (1, 2, 3, 4):
            results = explore(seed)
            tested += len(results)
            all_hits += [t for t in results if t.result.violated]
            if all_hits:
                break  # found: the search target is met
        return tested, all_hits

    tested, hits = run_once(benchmark, experiment)
    report(
        "invariant_mv_toctou",
        (
            f"invariant-guided search over mv: {tested} tests across "
            f"restarts, {len(hits)} data-loss scenario(s) found\n"
            + "\n".join(
                f"  {t.fault} -> {t.result.invariant_violations[0]}"
                for t in hits[:3]
            )
        ),
    )
    assert hits, "expected the mv -b stat TOCTOU to be discovered"
    assert all(
        t.fault.value("function") == "stat" and t.fault.value("test") == 27
        for t in hits
    )
    # Found well before exhausting the 513-point space x 4 restarts.
    assert tested <= 2 * space.size()
