"""Figure 9: AFEX efficiency across development stages (DocStore).

Paper (MongoDB v0.8 pre-production vs v2.0 production, 250 samplings):
  * fitness finds 2.37x random's failures on v0.8, only 1.43x on v2.0
    (the advantage shrinks as code matures);
  * absolute failure counts are *higher* on v2.0 ("more features appear
    to indeed come at the cost of reliability");
  * AFEX found a crash scenario in v2.0 but none in v0.8.

Shape requirements: both orderings above, and the v2.0-only crash is
demonstrated separately in benchmarks/test_bug_discovery.py.
"""

from __future__ import annotations

from conftest import run_once
from repro.core import (
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    RandomSearch,
    TargetRunner,
    standard_impact,
)
from repro.sim.targets.docstore import DOCSTORE_FUNCTIONS, DocStoreTarget
from repro.util.tables import TextTable

ITERATIONS = 250
SEEDS = (1, 2, 3, 4, 5)


def _explore(version, strategy_factory, seed):
    return ExplorationSession(
        runner=TargetRunner(DocStoreTarget(version=version)),
        space=FaultSpace.product(
            test=range(1, 61), function=DOCSTORE_FUNCTIONS, call=range(1, 31)
        ),
        metric=standard_impact(),
        strategy=strategy_factory(),
        target=IterationBudget(ITERATIONS),
        rng=seed,
    ).run()


def _mean_failed(version, strategy_factory) -> float:
    return sum(
        _explore(version, strategy_factory, seed).failed_count()
        for seed in SEEDS
    ) / len(SEEDS)


def test_fig9_docstore_maturity(benchmark, report):
    def experiment():
        return {
            version: (
                _mean_failed(version, FitnessGuidedSearch),
                _mean_failed(version, RandomSearch),
            )
            for version in ("0.8", "2.0")
        }

    rows = run_once(benchmark, experiment)

    table = TextTable(
        ["version", "fitness-guided", "random", "advantage"],
        title=(
            "Fig. 9 — DocStore failures at 250 samplings, mean of seeds "
            f"{SEEDS} (paper: 2.37x on v0.8 -> 1.43x on v2.0, absolute "
            "counts higher on v2.0)"
        ),
    )
    advantages = {}
    for version, (fit, rnd) in rows.items():
        advantage = fit / max(rnd, 1e-9)
        advantages[version] = advantage
        table.add_row([f"v{version}", f"{fit:.0f}", f"{rnd:.0f}",
                       f"{advantage:.2f}x"])
    report("fig9_docstore", table.render())

    # The guided advantage shrinks with maturity...
    assert advantages["0.8"] > advantages["2.0"]
    # ...while absolute failure opportunities grow with features.
    assert rows["2.0"][0] > rows["0.8"][0]
    assert rows["2.0"][1] > rows["0.8"][1]
    # Fitness still wins on both versions.
    assert advantages["2.0"] > 1.2
