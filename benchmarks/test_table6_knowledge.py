"""Table 6: the value of system-specific knowledge.

Paper — samples needed to find all 28 malloc faults that fail ln/mv:

                          fitness | exhaustive | random
    black-box AFEX:          417  |   1,653    |   836
    trimmed fault space:     213  |     783    |   391
    trim + environment model: 103 |     783    |   391

Shape requirements: trimming X_func to the functions ln/mv actually use
roughly halves every strategy's cost; adding the statistical
environment model (malloc 40%, file ops 50%, opendir+chdir 10%) speeds
the guided search further; fitness beats random at every knowledge
level; full knowledge gives >=2.5x over black-box fitness.
"""

from __future__ import annotations

from conftest import run_once
from repro.core import (
    CollectMatching,
    ExhaustiveSearch,
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    RandomSearch,
    TargetRunner,
    standard_impact,
)
from repro.core.targets import AnyOf
from repro.quality import EnvironmentModel
from repro.sim.targets.coreutils import COREUTILS_FUNCTIONS, CoreutilsTarget
from repro.util.tables import TextTable

TOTAL_MALLOC_FAULTS = 28  # verified exhaustively by the test suite
SEEDS = (1, 2, 3, 4)

#: the 9 on-axis functions the ln/mv tests actually call (traced with
#: the callsite analyzer) — matching the paper's "9 libc functions that
#: we know these two coreutils call", which makes the trimmed space
#: exactly the paper's 29 x 9 x 3 = 783 faults.
LN_MV_FUNCTIONS = (
    "malloc", "fopen", "fclose", "fputs", "fflush", "stat", "rename",
    "link", "setlocale",
)

#: the paper's statistical environment model, §7.5.
ENV_MODEL = EnvironmentModel.from_groups([
    (["malloc"], 0.40),
    (["fopen", "read", "write", "open", "close"], 0.50),
    (["opendir", "chdir"], 0.10),
])


def _is_goal(executed) -> bool:
    return (
        executed.failed
        and executed.fault.value("function") == "malloc"
        and 12 <= int(executed.fault.value("test")) <= 29
    )


def _space(functions) -> FaultSpace:
    return FaultSpace.product(
        test=range(1, 30), function=functions, call=[0, 1, 2]
    )


def _samples_to_find_all(strategy_factory, space, environment, seed) -> int:
    target = CoreutilsTarget()
    session = ExplorationSession(
        runner=TargetRunner(target),
        space=space,
        metric=standard_impact(),
        strategy=strategy_factory(),
        target=AnyOf(CollectMatching(_is_goal, TOTAL_MALLOC_FAULTS),
                     IterationBudget(space.size())),
        rng=seed,
        environment=environment,
    )
    results = session.run()
    found = sum(1 for t in results if _is_goal(t))
    assert found == TOTAL_MALLOC_FAULTS, f"only found {found}"
    return len(results)


def _mean(strategy_factory, space, environment=None) -> float:
    return sum(
        _samples_to_find_all(strategy_factory, space, environment, seed)
        for seed in SEEDS
    ) / len(SEEDS)


def test_table6_domain_knowledge(benchmark, report):
    def experiment():
        full = _space(COREUTILS_FUNCTIONS)
        trimmed = _space(LN_MV_FUNCTIONS)
        rows = {}
        rows["black-box AFEX"] = (
            _mean(FitnessGuidedSearch, full),
            _mean(ExhaustiveSearch, full),
            _mean(RandomSearch, full),
        )
        rows["trimmed fault space"] = (
            _mean(FitnessGuidedSearch, trimmed),
            _mean(ExhaustiveSearch, trimmed),
            _mean(RandomSearch, trimmed),
        )
        rows["trim + env model"] = (
            _mean(FitnessGuidedSearch, trimmed, ENV_MODEL),
            rows["trimmed fault space"][1],  # model does not affect these
            rows["trimmed fault space"][2],
        )
        return rows

    rows = run_once(benchmark, experiment)

    table = TextTable(
        ["knowledge level", "fitness", "exhaustive", "random"],
        title=(
            "Table 6 — samples to find all 28 failing malloc faults "
            f"(mean of seeds {SEEDS}; paper: 417/1653/836, 213/783/391, "
            "103/783/391)"
        ),
    )
    for name, (fit, ex, rnd) in rows.items():
        table.add_row([name, f"{fit:.0f}", f"{ex:.0f}", f"{rnd:.0f}"])
    report("table6_knowledge", table.render())

    blackbox = rows["black-box AFEX"]
    trimmed = rows["trimmed fault space"]
    informed = rows["trim + env model"]
    # Fitness beats random at every knowledge level.
    for level in rows.values():
        assert level[0] < level[2]
    # The trimmed space is exactly the paper's 783 points.
    assert _space(LN_MV_FUNCTIONS).size() == 783
    # Trimming the function axis cuts costs substantially for everyone.
    assert trimmed[0] < 0.8 * blackbox[0]
    assert trimmed[1] < blackbox[1]
    assert trimmed[2] < 0.8 * blackbox[2]
    # The environment model adds a further speedup for the guided search.
    assert informed[0] < trimmed[0]
    # Full knowledge >= 2x faster than black-box guided search (paper: 4x).
    assert informed[0] < 0.5 * blackbox[0]
