"""Batched speculative exploration: throughput of the execution fabrics.

Measures the PR's two perf claims on MiniDB and writes the numbers to
``BENCH_parallel.json`` at the repo root (also persisted as a text table
under ``benchmarks/out/``):

1. **Process-pool fabric** — tests/second of a 4-worker
   :class:`ProcessPoolCluster` exploration (fixed batch and adaptive
   ``--batch-size auto``) vs the serial in-process loop.  Real
   multi-core speedup is only physically possible with >= 2 usable
   cores, so the >= serial gate is skipped — with the machine's
   ``cpu_count``/affinity and an explicit reason recorded in the JSON —
   when the container is starved; the :class:`VirtualCluster` modelled
   speedup — the repo's documented stand-in for hardware we cannot rent
   (see DESIGN.md on the EC2 substitution) — is reported alongside.
2. **Result cache** — a certification campaign job re-run against a warm
   shared :class:`ResultCache` must be ≥1.5x faster than its cold first
   run.  This holds on any hardware: the second run replays memoized
   executions instead of the simulator.
"""

from __future__ import annotations

import functools
import json
import time
from pathlib import Path

from conftest import cores_info, run_once
from repro.campaign import CampaignJob
from repro.core.checkpoint import history_digest
from repro.obs import MetricsRegistry, RingBufferSink, Tracer, profile_payload
from repro.cluster import (
    ClusterExplorer,
    NodeManager,
    ProcessPoolCluster,
    VirtualCluster,
)
from repro.core import (
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    RandomSearch,
    ResultCache,
    TargetRunner,
    standard_impact,
)
from repro.sim.targets import target_by_name
from repro.sim.targets.minidb import MINIDB_FUNCTIONS, MiniDbTarget
from repro.util.tables import TextTable

ITERATIONS = 420        # >= 400 per the acceptance bar
WORKERS = 4
BATCH_SIZE = 16
SEED = 3
CACHE_ITERATIONS = 250
BENCH_PATH = Path(__file__).parent.parent / "BENCH_parallel.json"
OBS_ITERATIONS = 300
OBS_REPEATS = 5
OBS_BENCH_PATH = Path(__file__).parent.parent / "BENCH_obs.json"


def _space() -> FaultSpace:
    return FaultSpace.product(
        test=range(1, 1148), function=MINIDB_FUNCTIONS, call=range(1, 101)
    )


def _timed(func):
    started = time.perf_counter()
    result = func()
    return result, time.perf_counter() - started


def test_parallel_fabric_throughput(benchmark, report):
    cores = cores_info()

    def experiment():
        # -- serial baseline: the pre-batching in-process loop -------------
        serial_results, serial_s = _timed(lambda: ExplorationSession(
            TargetRunner(MiniDbTarget()), _space(), standard_impact(),
            FitnessGuidedSearch(), IterationBudget(ITERATIONS), rng=SEED,
        ).run())

        # -- process-pool fabric: 4 warm workers, chunked dispatch ---------
        def explore_on_pool(batch_size):
            with ProcessPoolCluster(
                functools.partial(target_by_name, "minidb"), workers=WORKERS
            ) as pool:
                explorer = ClusterExplorer(
                    pool, _space(), standard_impact(), FitnessGuidedSearch(),
                    IterationBudget(ITERATIONS), rng=SEED,
                    batch_size=batch_size,
                )
                results = explorer.run()
                return (
                    results, pool.is_degraded, pool.encode_seconds,
                    explorer.autobatch.stats()
                    if explorer.autobatch is not None else None,
                )
        (pool_results, degraded, encode_s, _), pool_s = _timed(
            lambda: explore_on_pool(BATCH_SIZE)
        )

        # -- same pool, adaptive batch sizing (--batch-size auto) ----------
        (auto_results, _, _, auto_stats), auto_s = _timed(
            lambda: explore_on_pool("auto")
        )

        # -- virtual-time model: what a real 4-node cluster would do -------
        virtual = VirtualCluster([
            NodeManager(f"vnode{i}", MiniDbTarget()) for i in range(WORKERS)
        ])
        virtual_results = ClusterExplorer(
            virtual, _space(), standard_impact(), FitnessGuidedSearch(),
            IterationBudget(ITERATIONS), rng=SEED, batch_size=BATCH_SIZE,
        ).run()

        # -- cache: re-certify the same system against a warm cache --------
        cache = ResultCache()
        job = CampaignJob(
            name="minidb-recertify", target=MiniDbTarget(), space=_space(),
            iterations=CACHE_ITERATIONS, seed=5,
            strategy_factory=RandomSearch, cache=cache,
        )
        (_, cold_results, _), cold_s = _timed(job.execute)
        (_, warm_results, _), warm_s = _timed(job.execute)
        assert warm_results.to_json() == cold_results.to_json()

        return {
            "serial": (len(serial_results), serial_s),
            "pool": (len(pool_results), pool_s, degraded, encode_s),
            "auto": (len(auto_results), auto_s, auto_stats),
            "virtual": (len(virtual_results), virtual.speedup_over_serial()),
            "cache": (cold_s, warm_s, cache.stats()),
        }

    measured = run_once(benchmark, experiment)

    serial_n, serial_s = measured["serial"]
    pool_n, pool_s, degraded, encode_s = measured["pool"]
    auto_n, auto_s, auto_stats = measured["auto"]
    virtual_n, modelled_speedup = measured["virtual"]
    cold_s, warm_s, cache_stats = measured["cache"]

    serial_rate = serial_n / serial_s
    pool_rate = pool_n / pool_s
    auto_rate = auto_n / auto_s
    pool_speedup = pool_rate / serial_rate
    auto_speedup = auto_rate / serial_rate
    cache_speedup = cold_s / warm_s if warm_s > 0 else float("inf")

    # The >=serial gate needs real parallel hardware; on a starved
    # machine it is recorded as skipped, with the reason, instead of
    # asserting physics the container cannot provide.
    gate_runnable = cores["usable"] >= 2
    gate_reason = (
        None if gate_runnable else
        f"only {cores['usable']} usable core(s) "
        f"(cpu_count={cores['cpu_count']}): a process pool cannot "
        f"beat serial without a second core"
    )

    payload = {
        "benchmark": "parallel_fabric",
        "target": "minidb",
        "iterations": ITERATIONS,
        "cores": cores,
        "speedup_gate": {
            "skipped": not gate_runnable,
            "reason": gate_reason,
            "threshold": 1.0,
        },
        "serial": {
            "tests": serial_n,
            "seconds": round(serial_s, 4),
            "tests_per_second": round(serial_rate, 1),
        },
        "process_pool": {
            "workers": WORKERS,
            "batch_size": BATCH_SIZE,
            "tests": pool_n,
            "seconds": round(pool_s, 4),
            "tests_per_second": round(pool_rate, 1),
            "speedup_vs_serial": round(pool_speedup, 2),
            "encode_seconds": round(encode_s, 4),
            "degraded": degraded,
        },
        "process_pool_auto": {
            "workers": WORKERS,
            "batch_size": "auto",
            "tests": auto_n,
            "seconds": round(auto_s, 4),
            "tests_per_second": round(auto_rate, 1),
            "speedup_vs_serial": round(auto_speedup, 2),
            "controller": auto_stats,
        },
        "virtual_cluster": {
            "nodes": WORKERS,
            "tests": virtual_n,
            "modelled_speedup": round(modelled_speedup, 2),
        },
        "cache": {
            "iterations": CACHE_ITERATIONS,
            "cold_seconds": round(cold_s, 4),
            "warm_seconds": round(warm_s, 4),
            "speedup": round(cache_speedup, 2),
            **cache_stats,
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    table = TextTable(
        ["fabric", "tests", "seconds", "tests/s", "speedup"],
        title=f"execution-fabric throughput, MiniDB x{ITERATIONS} "
              f"({cores['usable']} of {cores['cpu_count']} core(s) usable)",
    )
    table.add_row(["serial", serial_n, f"{serial_s:.2f}",
                   f"{serial_rate:.0f}", "1.00x"])
    table.add_row([f"processes x{WORKERS}", pool_n, f"{pool_s:.2f}",
                   f"{pool_rate:.0f}", f"{pool_speedup:.2f}x"])
    table.add_row([f"processes x{WORKERS} auto-batch", auto_n,
                   f"{auto_s:.2f}", f"{auto_rate:.0f}",
                   f"{auto_speedup:.2f}x"])
    table.add_row([f"virtual x{WORKERS} (modelled)", virtual_n, "-", "-",
                   f"{modelled_speedup:.2f}x"])
    table.add_row([f"warm cache (x{CACHE_ITERATIONS} re-run)", "-",
                   f"{warm_s:.3f}", "-", f"{cache_speedup:.2f}x"])
    if not gate_runnable:
        table.add_row(["speedup gate SKIPPED", "-", "-", "-", gate_reason])
    report("parallel_fabric", table.render()
           + f"\nwritten to {BENCH_PATH.name}")

    assert serial_n >= ITERATIONS and pool_n >= ITERATIONS
    assert auto_n >= ITERATIONS
    assert not degraded  # partial(target_by_name, ...) must pickle
    assert auto_stats["rounds"] >= 1  # the controller actually steered
    # The modelled 4-node cluster shows the §6.1 embarrassing parallelism.
    assert modelled_speedup >= 2.0
    # Real-core speedup is only physically possible with >= 2 cores:
    # on parallel hardware the batched pool must beat serial outright.
    if gate_runnable:
        assert pool_speedup >= 1.0, payload["process_pool"]
        assert auto_speedup >= 1.0, payload["process_pool_auto"]
    # The warm cache wins on any hardware.
    assert cache_speedup >= 1.5, payload["cache"]
    assert cache_stats["hits"] >= CACHE_ITERATIONS


def test_observability_overhead(benchmark, report):
    """Full instrumentation must cost < 5% at this file's batch size.

    Both arms run the identical serial MiniDB exploration (same seed,
    same batch size as every fabric experiment above); the instrumented
    arm adds a :class:`MetricsRegistry` plus a :class:`Tracer` with a
    ring sink — the exact ``--profile`` configuration.  Min-of-N per arm
    (interleaved) suppresses machine noise.  ``batch_size=1`` is also
    measured and reported: there every test is its own round, so the
    per-round spans have nothing to amortize over — the recorded
    worst case, informational rather than gated.
    """

    def run(instrumented: bool, batch_size: int):
        metrics = MetricsRegistry() if instrumented else None
        tracer = (
            Tracer(sinks=[RingBufferSink(capacity=65536)])
            if instrumented else None
        )
        started = time.perf_counter()
        results = ExplorationSession(
            TargetRunner(MiniDbTarget(), metrics=metrics, tracer=tracer),
            _space(), standard_impact(), FitnessGuidedSearch(),
            IterationBudget(OBS_ITERATIONS), rng=SEED,
            batch_size=batch_size, metrics=metrics, tracer=tracer,
        ).run()
        return time.perf_counter() - started, results, metrics

    def experiment():
        timings: dict[tuple[bool, int], list[float]] = {}
        digests: dict[tuple[bool, int], str] = {}
        registry = None
        for batch_size in (BATCH_SIZE, 1):
            run(False, batch_size)  # warm both arms before timing
            run(True, batch_size)
            for _ in range(OBS_REPEATS):
                for instrumented in (False, True):
                    seconds, results, metrics = run(instrumented, batch_size)
                    timings.setdefault((instrumented, batch_size),
                                       []).append(seconds)
                    digests[(instrumented, batch_size)] = history_digest(
                        list(results)
                    )
                    if instrumented and batch_size == BATCH_SIZE:
                        registry = metrics
        return timings, digests, registry

    (timings, digests, registry) = run_once(benchmark, experiment)

    def overhead(batch_size: int) -> tuple[float, float, float]:
        plain = min(timings[(False, batch_size)])
        instrumented = min(timings[(True, batch_size)])
        return plain, instrumented, instrumented / plain - 1.0

    plain_s, obs_s, gated = overhead(BATCH_SIZE)
    plain1_s, obs1_s, worst = overhead(1)

    snapshot = registry.snapshot()
    payload = profile_payload(registry, meta={
        "benchmark_config": "serial minidb",
        "cores": cores_info(),
        "iterations": OBS_ITERATIONS,
        "repeats": OBS_REPEATS,
        "batch_size": BATCH_SIZE,
        "plain_seconds": round(plain_s, 4),
        "instrumented_seconds": round(obs_s, 4),
        "overhead_pct": round(gated * 100, 2),
        "batch1_overhead_pct": round(worst * 100, 2),
    })
    OBS_BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    table = TextTable(
        ["config", "plain s", "instrumented s", "overhead"],
        title=f"observability overhead, MiniDB x{OBS_ITERATIONS} "
              f"(min of {OBS_REPEATS}, interleaved)",
    )
    table.add_row([f"batch={BATCH_SIZE} (gated)", f"{plain_s:.3f}",
                   f"{obs_s:.3f}", f"{gated * 100:.2f}%"])
    table.add_row(["batch=1 (worst case)", f"{plain1_s:.3f}",
                   f"{obs1_s:.3f}", f"{worst * 100:.2f}%"])
    report("observability_overhead", table.render()
           + f"\nwritten to {OBS_BENCH_PATH.name}")

    # Instrumentation observes; it must never steer the search.
    for batch_size in (BATCH_SIZE, 1):
        assert digests[(False, batch_size)] == digests[(True, batch_size)]
    # The registry saw every execution, and the timed series are live.
    # (A batched session may overshoot its budget by up to one batch.)
    tests = snapshot["counters"]["session.tests"]
    assert OBS_ITERATIONS <= tests < OBS_ITERATIONS + BATCH_SIZE
    execute = snapshot["histograms"]["runner.execute_seconds"]
    assert execute["count"] == tests and execute["sum"] > 0
    assert payload["benchmark"] == "observability"
    assert gated < 0.05, {
        "plain": plain_s, "instrumented": obs_s, "overhead": gated,
    }
