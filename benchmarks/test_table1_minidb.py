"""Table 1: MiniDB (the MySQL stand-in) — fitness vs random vs own suite.

Paper (MySQL 5.1.44, 24 h on a desktop):
    coverage:     54.10% (suite) / 52.15% (fitness) / 53.14% (random)
    failed tests: 0 / 1,681 / 575        (2.9x)
    crashes:      0 / 464 / 51           (9.1x)

Our 24-hour budget is replaced by a 2,000-iteration budget over the same
2,179,300-point space (1,147 tests x 19 functions x 100 calls).  Shape
requirements: the suite alone finds nothing; fitness-guided finds several
times the failures of random and at least an order of magnitude more
crashes; random still finds *some* crashes.
"""

from __future__ import annotations

from conftest import run_once
from repro.core import (
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    RandomSearch,
    TargetRunner,
    standard_impact,
)
from repro.reporting import comparison_table
from repro.sim.process import run_test
from repro.sim.targets.minidb import MINIDB_FUNCTIONS, MiniDbTarget

ITERATIONS = 2000
SEED = 7


def _space() -> FaultSpace:
    return FaultSpace.product(
        test=range(1, 1148), function=MINIDB_FUNCTIONS, call=range(1, 101)
    )


def _explore(target, strategy, seed):
    return ExplorationSession(
        runner=TargetRunner(target),
        space=_space(),
        metric=standard_impact(),
        strategy=strategy,
        target=IterationBudget(ITERATIONS),
        rng=seed,
    ).run()


def test_table1_minidb(benchmark, report):
    target = MiniDbTarget()

    def experiment():
        suite_failures = sum(
            1 for test in target.suite if run_test(target, test).failed
        )
        fitness = _explore(target, FitnessGuidedSearch(), SEED)
        rand = _explore(target, RandomSearch(), SEED)
        return suite_failures, fitness, rand

    suite_failures, fitness, rand = run_once(benchmark, experiment)

    space = _space()
    table = comparison_table(
        {"fitness-guided": fitness, "random": rand},
        title=(
            f"Table 1 — MiniDB, {ITERATIONS} iterations over "
            f"{space.size():,} faults (paper: 1,681/575 failed, 464/51 "
            f"crashes; own suite finds 0)"
        ),
    )
    extra = (
        f"\nMiniDB's own test suite (no injection): {suite_failures} failures"
        f"\nratios: failed {fitness.failed_count() / max(rand.failed_count(), 1):.1f}x"
        f" (paper 2.9x), crashes "
        f"{fitness.crash_count() / max(rand.crash_count(), 1):.1f}x (paper 9.1x)"
    )
    report("table1_minidb", table.render() + extra)

    assert space.size() == 2_179_300  # the paper's exact space size
    assert suite_failures == 0  # the suite alone finds none of these bugs
    assert fitness.failed_count() >= 3 * rand.failed_count()
    assert fitness.crash_count() >= 9 * max(rand.crash_count(), 1)
    assert rand.crash_count() >= 1  # random isn't totally blind


def test_table1_bug_manifestations(benchmark, report):
    """Within the guided run's crashes, both planted MySQL bugs appear."""
    target = MiniDbTarget()

    def experiment():
        return _explore(target, FitnessGuidedSearch(), SEED)

    fitness = run_once(benchmark, experiment)

    crash_stacks = [
        tuple(t.result.crash_stack or ())
        for t in fitness.crashes()
    ]
    double_unlock = sum(1 for s in crash_stacks if "mi_create_err" in s)
    binlog_abort = sum(1 for s in crash_stacks if "binlog_append" in s)
    report(
        "table1_bug_manifestations",
        (
            f"guided crashes: {len(crash_stacks)} total\n"
            f"  double-unlock (MySQL #53268 analogue): {double_unlock}\n"
            f"  binlog abort-by-policy:                {binlog_abort}\n"
        ),
    )
    assert double_unlock + binlog_abort > 0
