"""Table 3: coreutils — fitness vs random at 250 iterations vs exhaustive.

Paper numbers (coverage / #tests / #failed):
    fitness-guided: 36.14% / 250 / 74
    random:         35.84% / 250 / 32
    exhaustive:     36.17% / 1,653 / 205

Shape requirements reproduced here:
  * fitness-guided finds >= 2x the failed tests of random at 250 iters
    (paper: 2.3x);
  * exhaustive finds the most failures but costs >6x the iterations;
  * all three coverage percentages are within a few points of each other
    (the paper's point that coverage is a poor reliability-testing
    metric);
  * fitness covers most of the recovery code while sampling ~15% of the
    space (paper: 95% of recovery blocks at 250/1,653 samples).
"""

from __future__ import annotations

from conftest import run_once
from repro.core import (
    ExhaustiveSearch,
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    RandomSearch,
    TargetRunner,
    standard_impact,
)
from repro.reporting import comparison_table
from repro.sim.targets.coreutils import COREUTILS_FUNCTIONS, CoreutilsTarget

SEEDS = (1, 2, 3)
ITERATIONS = 250


def _space(target) -> FaultSpace:
    return FaultSpace.product(
        test=range(1, 30), function=COREUTILS_FUNCTIONS, call=[0, 1, 2]
    )


def _explore(target, strategy_factory, iterations, seed):
    return ExplorationSession(
        runner=TargetRunner(target),
        space=_space(target),
        metric=standard_impact(),
        strategy=strategy_factory(),
        target=IterationBudget(iterations),
        rng=seed,
    ).run()


def test_table3_coreutils(benchmark, report):
    target = CoreutilsTarget()

    def experiment():
        fitness = [_explore(target, FitnessGuidedSearch, ITERATIONS, s)
                   for s in SEEDS]
        rand = [_explore(target, RandomSearch, ITERATIONS, s) for s in SEEDS]
        exhaustive = _explore(target, ExhaustiveSearch, 10**9, 0)
        return fitness, rand, exhaustive

    fitness, rand, exhaustive = run_once(benchmark, experiment)

    universe = exhaustive.coverage_union()
    table = comparison_table(
        {
            "fitness-guided": fitness[0],
            "random": rand[0],
            "exhaustive": exhaustive,
        },
        title=(
            "Table 3 — coreutils, 250 sampled faults vs exhaustive 1,653 "
            "(paper: 74 / 32 / 205 failed)"
        ),
        coverage_universe=universe,
    )
    mean_fit = sum(r.failed_count() for r in fitness) / len(SEEDS)
    mean_rand = sum(r.failed_count() for r in rand) / len(SEEDS)
    extra = (
        f"\nmean over seeds {SEEDS}: fitness={mean_fit:.1f} "
        f"random={mean_rand:.1f} ratio={mean_fit / mean_rand:.2f}x "
        f"(paper 2.3x)"
    )
    report("table3_coreutils", table.render() + extra)

    # Shape assertions.
    assert mean_fit >= 2.0 * mean_rand
    assert exhaustive.failed_count() > mean_fit
    assert len(exhaustive) == 1653
    # Coverage percentages land close together even though failure counts
    # differ by ~4x (the paper's "coverage is not a good metric" point:
    # 36.14 vs 35.84 vs 36.17).  At our block granularity the band is
    # wider, but every strategy covers the large majority of blocks.
    for results in (fitness[0], rand[0]):
        covered = len(results.coverage_union() & universe)
        assert covered >= 0.7 * len(universe)


def test_table3_recovery_code_coverage(benchmark, report):
    """The §7.2 recovery-coverage analysis.

    Recovery blocks := blocks covered by exhaustive fault injection but
    not by a fault-free run of the whole suite.  Fitness-guided search at
    250 iterations must cover most of them.
    """
    from repro.sim.process import run_test

    target = CoreutilsTarget()

    def experiment():
        baseline: set[str] = set()
        for test in target.suite:
            baseline |= run_test(target, test).coverage
        exhaustive = _explore(target, ExhaustiveSearch, 10**9, 0)
        fitness = _explore(target, FitnessGuidedSearch, ITERATIONS, 1)
        return frozenset(baseline), exhaustive, fitness

    baseline, exhaustive, fitness = run_once(benchmark, experiment)

    recovery_blocks = exhaustive.coverage_union() - baseline
    covered = fitness.coverage_union() & recovery_blocks
    fraction = len(covered) / max(len(recovery_blocks), 1)
    report(
        "table3_recovery_coverage",
        (
            f"recovery blocks (exhaustive - baseline): {len(recovery_blocks)}\n"
            f"covered by fitness@250: {len(covered)} ({100 * fraction:.0f}%)\n"
            f"(paper: 95% of recovery code at 15% of the fault space)"
        ),
    )
    assert len(recovery_blocks) > 0
    # Partial reproduction: the paper reports 95% recovery coverage; at
    # our (much coarser) block granularity a 250-iteration guided run
    # reliably reaches ~half of the single-fault-reachable recovery
    # blocks.  EXPERIMENTS.md discusses the gap.
    assert fraction >= 0.4
