"""Multi-fault scenario exploration (§4/§7: beyond single faults).

The paper's language and prototype support "fault injection scenarios of
arbitrary complexity", but §7 evaluates single faults only ("we limit
our evaluation to only single-fault scenarios").  This bench completes
the picture: some recovery code only runs when *two* things go wrong —
mv's copy-fallback error handling requires a cross-device rename failure
AND a failure inside the fallback.  Single-fault exploration provably
cannot execute those blocks; multi-fault exploration reaches them.
"""

from __future__ import annotations

from conftest import run_once
from repro.core import (
    ExhaustiveSearch,
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    TargetRunner,
    standard_impact,
)
from repro.injection.libfi import MultiLibFaultInjector
from repro.sim.targets.coreutils import COREUTILS_FUNCTIONS, CoreutilsTarget
from repro.util.tables import TextTable

#: recovery blocks in mv's copy fallback that need >= 2 simultaneous faults.
DEEP_RECOVERY_BLOCKS = (
    "mv.copy.abort",
    "mv.copy.read_failed",
    "mv.copy.write_failed",
    "mv.copy.close_dest_failed",
)


def _single_fault_coverage() -> frozenset[str]:
    target = CoreutilsTarget()
    space = FaultSpace.product(
        test=range(21, 30), function=COREUTILS_FUNCTIONS, call=[0, 1, 2]
    )
    results = ExplorationSession(
        runner=TargetRunner(target),
        space=space,
        metric=standard_impact(),
        strategy=ExhaustiveSearch(),
        target=IterationBudget(10**9),
        rng=0,
    ).run()
    return results.coverage_union()


def _multi_fault_coverage(iterations: int, seed: int) -> frozenset[str]:
    target = CoreutilsTarget()
    space = FaultSpace.product(
        test=range(21, 30),
        function_a=["rename"], call_a=[0, 1], errno_a=["EXDEV"],
        function_b=["open", "read", "write", "close", "unlink"],
        call_b=[0, 1, 2, 3],
    )
    results = ExplorationSession(
        runner=TargetRunner(target, injector=MultiLibFaultInjector()),
        space=space,
        metric=standard_impact(),
        strategy=FitnessGuidedSearch(initial_batch=15),
        target=IterationBudget(min(iterations, space.size())),
        rng=seed,
    ).run()
    return results.coverage_union()


def test_multifault_reaches_deep_recovery(benchmark, report):
    def experiment():
        single = _single_fault_coverage()
        multi = _multi_fault_coverage(150, seed=5)
        return single, multi

    single, multi = run_once(benchmark, experiment)

    table = TextTable(
        ["deep recovery block", "single-fault", "multi-fault"],
        title=(
            "Multi-fault exploration vs the *entire* single-fault space "
            "(mv tests): blocks requiring two simultaneous faults"
        ),
    )
    for block in DEEP_RECOVERY_BLOCKS:
        table.add_row([
            block,
            "covered" if block in single else "-",
            "covered" if block in multi else "-",
        ])
    report("multifault_recovery", table.render())

    # Exhaustive single-fault exploration cannot reach any of them...
    for block in DEEP_RECOVERY_BLOCKS:
        assert block not in single, block
    # ...while 150 sampled two-fault scenarios reach several.
    reached = sum(1 for block in DEEP_RECOVERY_BLOCKS if block in multi)
    assert reached >= 2
    # And the multi-fault run still covers the single-fault-reachable
    # copy-path entry (rename-EXDEV alone).
    assert "mv.copy.enter" in multi
