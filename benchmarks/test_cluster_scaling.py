"""Online vs batch clustering: the streaming quality stage's scaling claim.

The batch §5 pass pays O(n²) edit distances at report time; the online
engine assigns each result as it arrives, pruning with the exact-match
fast path, per-cluster length ranges, and representative triangle
bounds.  This benchmark times both over an AFEX-shaped workload —
stack traces concentrated on a few dozen injection points, with
call-path noise producing near-duplicates — at n ∈ {250, 1000, 2000},
checks the partitions are *identical*, and writes ``BENCH_cluster.json``
at the repo root.

Gate: at n=2000 the online engine must finish in at most half the batch
pass's time (the PR's ≥2x claim).
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

from conftest import cores_info, run_once
from repro.quality.clustering import cluster_stacks_reference
from repro.quality.online import OnlineClusters
from repro.util.tables import TextTable

SIZES = (250, 1000, 2000)
GATED_SIZE = 2000
MAX_DISTANCE = 1
SEED = 42
INJECTION_POINTS = 32
NOISE_FRAMES = 8
DUP_RATE = 0.45
BENCH_PATH = Path(__file__).parent.parent / "BENCH_cluster.json"


def _workload(n: int, rng: random.Random) -> list[tuple[str, ...] | None]:
    """Stack traces as an exploration produces them: most results
    re-fire one of a few dozen injection points exactly (the dominant
    exact-duplicate case), the rest differ from a base trace by one
    frame (the near-duplicates clustering exists to merge)."""
    bases = [
        tuple(f"ip{i}_fn{j}" for j in range(rng.randint(4, 14)))
        for i in range(INJECTION_POINTS)
    ]
    noise = [f"noise_{k}" for k in range(NOISE_FRAMES)]
    stacks: list[tuple[str, ...] | None] = []
    for _ in range(n):
        if rng.random() < 0.05:
            stacks.append(None)  # fault never fired
            continue
        base = list(rng.choice(bases))
        if rng.random() >= DUP_RATE:
            op = rng.randrange(3)
            position = rng.randrange(len(base))
            if op == 0 and len(base) > 1:
                base.pop(position)
            elif op == 1:
                base.insert(position, rng.choice(noise))
            else:
                base[position] = rng.choice(noise)
        stacks.append(tuple(base))
    return stacks


def _timed(func):
    started = time.perf_counter()
    result = func()
    return result, time.perf_counter() - started


def test_online_clustering_scaling(benchmark, report):
    def experiment():
        rows = []
        for n in SIZES:
            stacks = _workload(n, random.Random(SEED))

            def run_online():
                engine = OnlineClusters(max_distance=MAX_DISTANCE)
                for stack in stacks:
                    engine.add(stack)
                return engine

            batch, batch_s = _timed(
                lambda: cluster_stacks_reference(
                    stacks, max_distance=MAX_DISTANCE
                )
            )
            engine, online_s = _timed(run_online)
            online = engine.partition()
            assert online.assignment == batch.assignment, n
            rows.append({
                "n": n,
                "clusters": online.cluster_count,
                "batch_seconds": batch_s,
                "online_seconds": online_s,
                "speedup": batch_s / online_s if online_s > 0 else float("inf"),
                "stats": engine.stats(),
            })
        return rows

    rows = run_once(benchmark, experiment)

    payload = {
        "benchmark": "cluster_scaling",
        "cores": cores_info(),
        "max_distance": MAX_DISTANCE,
        "seed": SEED,
        "injection_points": INJECTION_POINTS,
        "dup_rate": DUP_RATE,
        "sizes": [
            {
                "n": row["n"],
                "clusters": row["clusters"],
                "batch_seconds": round(row["batch_seconds"], 4),
                "online_seconds": round(row["online_seconds"], 4),
                "speedup": round(row["speedup"], 2),
                "comparisons": row["stats"]["comparisons"],
                "comparisons_avoided": row["stats"]["comparisons_avoided"],
                "cache_hit_ratio": round(
                    float(row["stats"]["cache_hit_ratio"]), 4
                ),
            }
            for row in rows
        ],
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    table = TextTable(
        ["n", "clusters", "batch s", "online s", "speedup",
         "distances", "avoided"],
        title="online vs batch clustering (identical partitions)",
    )
    for row in rows:
        table.add_row([
            row["n"], row["clusters"],
            f"{row['batch_seconds']:.3f}", f"{row['online_seconds']:.3f}",
            f"{row['speedup']:.2f}x",
            row["stats"]["comparisons"],
            row["stats"]["comparisons_avoided"],
        ])
    report("cluster_scaling", table.render()
           + f"\nwritten to {BENCH_PATH.name}")

    gated = next(row for row in rows if row["n"] == GATED_SIZE)
    # The streaming engine must at least halve the batch pass's time at
    # the gated size (equivalently: a >= 2x speedup).
    assert gated["online_seconds"] <= 0.5 * gated["batch_seconds"], {
        "batch": gated["batch_seconds"], "online": gated["online_seconds"],
    }
