"""Table 2: MiniHttpd — fitness vs random, 1,000 test iterations.

Paper (Apache httpd 2.3.8, Φ of 11,020 faults):
    # failed tests: 736 (fitness) vs 238 (random)  — 3.1x
    # crashes:      246 vs 21                      — 11.7x
    plus 27 manifestations of the Fig. 7 strdup bug found by fitness,
    none by random.

Shape requirements: >=2x failed, >=5x crashes, and the strdup/NULL
crash must appear among the guided run's crashes.
"""

from __future__ import annotations

from conftest import run_once
from repro.core import (
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    RandomSearch,
    TargetRunner,
    standard_impact,
)
from repro.reporting import comparison_table
from repro.sim.targets.httpd import HTTPD_FUNCTIONS, HttpdTarget

ITERATIONS = 1000
SEEDS = (1, 2, 3)


def _space() -> FaultSpace:
    return FaultSpace.product(
        test=range(1, 59), function=HTTPD_FUNCTIONS, call=range(1, 11)
    )


def _explore(strategy, seed):
    return ExplorationSession(
        runner=TargetRunner(HttpdTarget()),
        space=_space(),
        metric=standard_impact(),
        strategy=strategy,
        target=IterationBudget(ITERATIONS),
        rng=seed,
    ).run()


def test_table2_httpd(benchmark, report):
    def experiment():
        fitness_runs = [_explore(FitnessGuidedSearch(), s) for s in SEEDS]
        random_runs = [_explore(RandomSearch(), s) for s in SEEDS]
        return fitness_runs, random_runs

    fitness_runs, random_runs = run_once(benchmark, experiment)
    fitness, rand = fitness_runs[1], random_runs[1]

    table = comparison_table(
        {"fitness-guided": fitness, "random": rand},
        title=(
            "Table 2 — MiniHttpd, 1,000 iterations over 11,020 faults, "
            "representative seed (paper: 736/238 failed, 246/21 crashes)"
        ),
    )

    def total_failed(runs):
        return sum(r.failed_count() for r in runs)

    def total_crashes(runs):
        return sum(r.crash_count() for r in runs)

    strdup_fit = sum(
        1 for run in fitness_runs for t in run.crashes()
        if t.fault.value("function") == "strdup"
    )
    strdup_rand = sum(
        1 for run in random_runs for t in run.crashes()
        if t.fault.value("function") == "strdup"
    )
    extra = (
        f"\nmeans over seeds {SEEDS}: fitness "
        f"{total_failed(fitness_runs) / len(SEEDS):.0f} failed / "
        f"{total_crashes(fitness_runs) / len(SEEDS):.0f} crashes; random "
        f"{total_failed(random_runs) / len(SEEDS):.0f} failed / "
        f"{total_crashes(random_runs) / len(SEEDS):.0f} crashes"
        f"\nstrdup-bug manifestations (all seeds): fitness {strdup_fit}, "
        f"random {strdup_rand} (paper: 27 vs 0)"
    )
    report("table2_httpd", table.render() + extra)

    assert _space().size() == 11_020
    assert total_failed(fitness_runs) >= 2 * total_failed(random_runs)
    assert total_crashes(fitness_runs) >= 5 * max(total_crashes(random_runs), 1)
    assert strdup_fit > 0
    # The paper: random found no manifestation of the strdup bug.  Allow
    # a couple of lucky hits — the claim is the order-of-magnitude gap.
    assert strdup_fit > 3 * max(strdup_rand, 1)
