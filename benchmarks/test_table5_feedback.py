"""Table 5: the redundancy feedback loop (unique failures/crashes).

Reproduced at a 300-iteration budget: our simulated httpd has tens (not
hundreds) of distinct injection-point stack traces, so at 1,000
iterations every strategy saturates the trace pool and the uniqueness
differences vanish.  At 300 the paper's trade-off is cleanly visible.

Paper (Apache, 1,000 tests):
                     fitness | fitness+feedback | random
    # failed tests:    736   |       512        |  238
    # unique failures: 249   |       348        |  190
    # unique crashes:    4   |         7        |    2

Shape requirements: weighting fitness by stack-trace novelty (§7.4,
100% similarity zeroes fitness) trades raw failure count for *distinct*
failures — feedback finds fewer failed tests overall but more unique
failures (and at least as many unique crashes) than plain
fitness-guided search.
"""

from __future__ import annotations

from conftest import run_once
from repro.core import (
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    RandomSearch,
    TargetRunner,
    standard_impact,
)
from repro.quality import RedundancyFeedback
from repro.sim.targets.httpd import HTTPD_FUNCTIONS, HttpdTarget
from repro.util.tables import TextTable

ITERATIONS = 300
SEEDS = (1, 2, 3, 4)


def _explore(strategy_factory, seed):
    return ExplorationSession(
        runner=TargetRunner(HttpdTarget()),
        space=FaultSpace.product(
            test=range(1, 59), function=HTTPD_FUNCTIONS, call=range(1, 11)
        ),
        metric=standard_impact(),
        strategy=strategy_factory(),
        target=IterationBudget(ITERATIONS),
        rng=seed,
    ).run()


def _stats(results) -> tuple[int, int, int]:
    return (
        results.failed_count(),
        results.unique_failures(),
        results.unique_crashes(),
    )


def test_table5_redundancy_feedback(benchmark, report):
    def experiment():
        rows = {"fitness": [0, 0, 0], "fitness+feedback": [0, 0, 0],
                "random": [0, 0, 0]}
        for seed in SEEDS:
            for name, factory in (
                ("fitness", FitnessGuidedSearch),
                ("fitness+feedback",
                 lambda: FitnessGuidedSearch(
                     fitness_weight=RedundancyFeedback())),
                ("random", RandomSearch),
            ):
                stats = _stats(_explore(factory, seed))
                for i, value in enumerate(stats):
                    rows[name][i] += value
        return {
            name: tuple(v / len(SEEDS) for v in values)
            for name, values in rows.items()
        }

    rows = run_once(benchmark, experiment)

    table = TextTable(
        ["metric", "fitness", "fitness+feedback", "random"],
        title=(
            "Table 5 — unique failures/crashes with the §7.4 feedback "
            f"loop, mean of seeds {SEEDS} (paper: 736/512/238 failed, "
            "249/348/190 unique failures, 4/7/2 unique crashes)"
        ),
    )
    for i, metric in enumerate(("# failed tests", "# unique failures",
                                "# unique crashes")):
        table.add_row([
            metric,
            f"{rows['fitness'][i]:.0f}",
            f"{rows['fitness+feedback'][i]:.0f}",
            f"{rows['random'][i]:.0f}",
        ])
    report("table5_feedback", table.render())

    fitness = rows["fitness"]
    feedback = rows["fitness+feedback"]
    rand = rows["random"]
    # Feedback trades raw failure count...
    assert feedback[0] < fitness[0]
    # ...for more unique failures than either alternative...
    assert feedback[1] > fitness[1]
    assert feedback[1] > rand[1]
    # ...without losing unique crashes (our httpd has only two distinct
    # crash-trace variants, so this is >= rather than the paper's >).
    assert feedback[2] >= fitness[2]
