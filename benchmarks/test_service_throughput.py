"""Campaign-service throughput: concurrency and time-to-first-result.

Runs the same batch of campaigns through an in-process
``CampaignService`` twice — once strictly sequentially (one worker) and
once with ``CONCURRENCY`` workers draining the queue together — and
writes ``BENCH_service.json`` at the repo root.

Measured quantities:

- submit -> first-result latency: how long after submission the first
  executed test lands (queue pop, engine build, and the first dispatch
  all included).  This is the interactive price of going through the
  service instead of calling the engine directly.
- N-concurrent vs N-sequential wall-clock: the scheduler and the
  SQLite store must not serialize independent campaigns.  The gate is
  throughput >= 0.9x of sequential — the service may not *cost*
  concurrency (the GIL bounds how much it can win in-process).

Both arms must also agree with each other and with the direct engine
digest: scheduling moves when campaigns run, never their outcomes.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import FIRST_COMPLETED, wait
from pathlib import Path

from conftest import cores_info, run_once
from repro.service.server import CampaignService, TenantConfig
from repro.service.spec import CampaignSpec
from repro.service.store import ResultStore
from repro.util.tables import TextTable

CONCURRENCY = 4
JOBS = 4
ITERATIONS = 60
SEEDS = tuple(range(1, JOBS + 1))
MAX_FIRST_RESULT_S = 5.0
MIN_RELATIVE_THROUGHPUT = 0.9
BENCH_PATH = Path(__file__).parent.parent / "BENCH_service.json"


def _specs() -> list[CampaignSpec]:
    return [
        CampaignSpec(target="coreutils", iterations=ITERATIONS, seed=seed)
        for seed in SEEDS
    ]


def _drain(service: CampaignService) -> None:
    """Run every queued job on the service's own executor and wait,
    honouring the tenant quota the way the serve loop does: finish a
    job in the queue's books before popping past its quota."""
    pending: dict = {}
    while True:
        while (entry := service.queue.pop()) is not None:
            future = service._executor.submit(service._run_job, entry)
            pending[future] = entry.job_id
        if not pending:
            return
        done, _ = wait(pending, return_when=FIRST_COMPLETED)
        for future in done:
            service.queue.finish(pending.pop(future))
            future.result()


def _arm(tmp: Path, workers: int, label: str) -> dict:
    store = ResultStore(tmp / f"{label}.db")
    service = CampaignService(
        store,
        tenants=[TenantConfig("bench", priority=0,
                              max_concurrent=workers)],
        workers=workers,
    )
    try:
        started = time.perf_counter()
        jobs = [service.submit("bench", spec) for spec in _specs()]
        _drain(service)
        seconds = time.perf_counter() - started
        done = [store.job(job.id) for job in jobs]
        bad = [j for j in done if j.state != "done"]
        assert not bad, bad
        latencies = [
            j.document["first_result_s"] for j in done
        ]
        tests = sum(j.summary["tests"] for j in done)
        return {
            "workers": workers,
            "jobs": len(jobs),
            "tests": tests,
            "seconds": seconds,
            "digests": [j.digest for j in done],
            "first_result_s": latencies,
        }
    finally:
        service.shutdown()


def test_service_throughput(benchmark, report, tmp_path):
    def experiment():
        sequential = _arm(tmp_path, 1, "sequential")
        concurrent = _arm(tmp_path, CONCURRENCY, "concurrent")
        return sequential, concurrent

    sequential, concurrent = run_once(benchmark, experiment)

    relative = sequential["seconds"] / concurrent["seconds"]
    worst_latency = max(
        max(sequential["first_result_s"]),
        max(concurrent["first_result_s"]),
    )
    payload = {
        "benchmark": "service_throughput",
        "target": "coreutils",
        "jobs": JOBS,
        "iterations": ITERATIONS,
        "seeds": list(SEEDS),
        "cores": cores_info(),
        "sequential": {
            "workers": 1,
            "seconds": round(sequential["seconds"], 4),
            "tests_per_second": round(
                sequential["tests"] / sequential["seconds"], 1
            ),
            "first_result_s": [
                round(s, 4) for s in sequential["first_result_s"]
            ],
        },
        "concurrent": {
            "workers": CONCURRENCY,
            "seconds": round(concurrent["seconds"], 4),
            "tests_per_second": round(
                concurrent["tests"] / concurrent["seconds"], 1
            ),
            "first_result_s": [
                round(s, 4) for s in concurrent["first_result_s"]
            ],
        },
        "relative_throughput": round(relative, 3),
        "digests_match": sorted(sequential["digests"])
        == sorted(concurrent["digests"]),
        "gates": {
            "min_relative_throughput": MIN_RELATIVE_THROUGHPUT,
            "max_first_result_s": MAX_FIRST_RESULT_S,
            "worst_first_result_s": round(worst_latency, 4),
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    table = TextTable(
        ["arm", "workers", "jobs", "seconds", "tests/s",
         "worst first-result"],
        title=f"campaign service throughput, coreutils x{ITERATIONS} "
              f"x{JOBS} campaigns",
    )
    for label, arm in (("sequential", payload["sequential"]),
                       ("concurrent", payload["concurrent"])):
        table.add_row([
            label, arm["workers"], JOBS, f"{arm['seconds']:.2f}",
            f"{arm['tests_per_second']:.0f}",
            f"{max(arm['first_result_s']):.3f}s",
        ])
    report(
        "service_throughput",
        table.render()
        + f"\nconcurrent/sequential = {relative:.2f}x"
        + f"\nwritten to {BENCH_PATH.name}",
    )

    # Scheduling moves when campaigns run, never their outcomes.
    assert payload["digests_match"], payload
    # The interactive price of the service stays bounded.
    assert worst_latency <= MAX_FIRST_RESULT_S, payload["gates"]
    # Concurrency must not cost throughput.
    assert relative >= MIN_RELATIVE_THROUGHPUT, payload
