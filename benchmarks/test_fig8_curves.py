"""Figure 8: failure count vs iteration number, fitness vs random.

The paper plots the number of test-failure-inducing injections over 500
iterations of Φ_coreutils exploration: the fitness-guided curve pulls
away from random as structure is learned ("the difference between the
rates of finding high-impact faults increases").

Shape requirements: the guided curve dominates the random curve at
every checkpoint from iteration 100 on, and its *lead* grows between
iteration 100 and iteration 500.
"""

from __future__ import annotations

from conftest import run_once
from repro.core import (
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    RandomSearch,
    TargetRunner,
    standard_impact,
)
from repro.reporting import cumulative_counts
from repro.sim.targets.coreutils import COREUTILS_FUNCTIONS, CoreutilsTarget
from repro.util.tables import TextTable

ITERATIONS = 500
CHECKPOINTS = (50, 100, 200, 300, 400, 500)
SEEDS = (1, 2, 3)


def _explore(strategy, seed):
    target = CoreutilsTarget()
    return ExplorationSession(
        runner=TargetRunner(target),
        space=FaultSpace.product(
            test=range(1, 30), function=COREUTILS_FUNCTIONS, call=[0, 1, 2]
        ),
        metric=standard_impact(),
        strategy=strategy,
        target=IterationBudget(ITERATIONS),
        rng=seed,
    ).run()


def _mean_curve(strategy_factory) -> list[float]:
    curves = [
        cumulative_counts(_explore(strategy_factory(), seed))
        for seed in SEEDS
    ]
    return [
        sum(curve[i] for curve in curves) / len(curves)
        for i in range(ITERATIONS)
    ]


def test_fig8_failure_curves(benchmark, report):
    def experiment():
        return _mean_curve(FitnessGuidedSearch), _mean_curve(RandomSearch)

    fitness_curve, random_curve = run_once(benchmark, experiment)

    table = TextTable(
        ["iteration", "fitness-guided", "random", "lead"],
        title=(
            "Fig. 8 — cumulative test-failure-inducing injections "
            f"(mean of seeds {SEEDS}; paper shows ~190 vs ~75 at 500)"
        ),
    )
    for checkpoint in CHECKPOINTS:
        fit = fitness_curve[checkpoint - 1]
        rnd = random_curve[checkpoint - 1]
        table.add_row([checkpoint, f"{fit:.0f}", f"{rnd:.0f}",
                       f"{fit - rnd:.0f}"])
    report("fig8_curves", table.render())

    # Guided dominates from iteration 100 on...
    for checkpoint in CHECKPOINTS[1:]:
        assert fitness_curve[checkpoint - 1] > random_curve[checkpoint - 1]
    # ...and the lead grows as structure is learned.
    lead_100 = fitness_curve[99] - random_curve[99]
    lead_500 = fitness_curve[499] - random_curve[499]
    assert lead_500 > lead_100
    # Both curves are monotone by construction.
    assert all(b >= a for a, b in zip(fitness_curve, fitness_curve[1:]))
