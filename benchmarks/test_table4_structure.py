"""Table 4: how much does AFEX rely on fault-space structure? (Apache)

The paper shuffles the values of one axis at a time, destroying its
structure, and measures the drop in the fraction of injections that
fail/crash Apache tests:

    structure:      original | rand X_test | rand X_func | rand X_call | random
    % failed tests:   73%    |    59%      |    43%      |    48%      |  23%
    % crashes:        25%    |    22%      |    13%      |    17%      |   2%

Shape requirements (medians over 5 seeds): every single-axis shuffle
hurts the guided search's failure rate, full-random is worst on both
metrics, and the original-structure run is best.  The crash-rate row is
reported but only weakly asserted: our httpd's crash surface is a
single function column (the strdup band), which the guided search finds
through sensitivity alone, so value-*order* shuffles barely change the
crash rate (EXPERIMENTS.md discusses this deviation from the paper's
25/22/13/17 pattern).
"""

from __future__ import annotations

from conftest import run_once
from repro.core import (
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    RandomSearch,
    TargetRunner,
    standard_impact,
)
from repro.sim.targets.httpd import HTTPD_FUNCTIONS, HttpdTarget
from repro.util.tables import TextTable

ITERATIONS = 1000
SEEDS = (1, 2, 3, 4, 5)


def _base_space() -> FaultSpace:
    return FaultSpace.product(
        test=range(1, 59), function=HTTPD_FUNCTIONS, call=range(1, 11)
    )


def _rates(space: FaultSpace, strategy_factory, seeds=SEEDS):
    """Median per-seed (failed%, crash%) — medians resist the occasional
    run that diffuses across non-crash failures instead of farming."""
    import statistics

    failed_rates = []
    crash_rates = []
    for seed in seeds:
        results = ExplorationSession(
            runner=TargetRunner(HttpdTarget()),
            space=space,
            metric=standard_impact(),
            strategy=strategy_factory(),
            target=IterationBudget(ITERATIONS),
            rng=seed,
        ).run()
        failed_rates.append(100.0 * results.failed_count() / len(results))
        crash_rates.append(100.0 * results.crash_count() / len(results))
    return statistics.median(failed_rates), statistics.median(crash_rates)


def test_table4_structure_ablation(benchmark, report):
    def experiment():
        base = _base_space()
        configs = {
            "original": base,
            "rand Xtest": base.shuffle_axis("test", 11),
            "rand Xfunc": base.shuffle_axis("function", 12),
            "rand Xcall": base.shuffle_axis("call", 13),
        }
        rows = {
            name: _rates(space, FitnessGuidedSearch)
            for name, space in configs.items()
        }
        rows["random search"] = _rates(base, RandomSearch)
        return rows

    rows = run_once(benchmark, experiment)

    table = TextTable(
        ["structure", "% failed tests", "% crashes"],
        title=(
            "Table 4 — MiniHttpd guided-search efficiency under axis "
            "randomization (paper: 73/59/43/48/23 failed, 25/22/13/17/2 "
            "crashes)"
        ),
    )
    for name, (failed_pct, crash_pct) in rows.items():
        table.add_row([name, f"{failed_pct:.0f}%", f"{crash_pct:.0f}%"])
    report("table4_structure", table.render())

    original_failed, original_crash = rows["original"]
    random_failed, random_crash = rows["random search"]
    # Every single-axis shuffle degrades the failure rate.
    for name in ("rand Xtest", "rand Xfunc", "rand Xcall"):
        assert rows[name][0] < original_failed, name
    # Full-random is the worst configuration on both metrics.
    assert random_failed < min(rows[name][0] for name in rows
                               if name != "random search")
    assert random_crash < 0.25 * original_crash
    # Shuffled runs still beat random search (partial structure survives).
    for name in ("rand Xtest", "rand Xfunc", "rand Xcall"):
        assert rows[name][0] > 2 * random_failed, name
