"""Fault-model plugin overhead: the abstraction must be ~free.

The errno model refactor put every libc campaign behind the
:class:`~repro.injection.models.ModelInjector` indirection, and the
world hooks put a ``None`` check on the filesystem/heap/network hot
paths.  This bench measures what that costs on Φ_coreutils and writes
``BENCH_models.json`` at the repo root:

1. **Plan-compilation overhead** — campaign throughput under the
   historical ``LibFaultInjector`` vs ``ModelInjector("errno")``; the
   digests must be byte-identical (the differential gate, measured
   rather than asserted-only here).
2. **Unarmed hook overhead** — the full four-model composite at its
   no-fault points exercises every ``None`` check with no hook ever
   armed; throughput must stay within 2x of the direct injector
   (in practice it is far closer).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import cores_info, run_once
from repro.core import (
    ExplorationSession,
    FitnessGuidedSearch,
    IterationBudget,
    TargetRunner,
    standard_impact,
)
from repro.core.checkpoint import history_digest
from repro.core.faultspace import FaultSpace
from repro.injection import LibFaultInjector
from repro.injection.models import compose_models, model_injector, model_space
from repro.sim.targets.coreutils import COREUTILS_FUNCTIONS, CoreutilsTarget
from repro.util.tables import TextTable

BENCH_PATH = Path(__file__).parent.parent / "BENCH_models.json"

ITERATIONS = 300
SEED = 42


def _campaign(target, injector, space) -> tuple[float, str, int]:
    """(tests/second, history digest, executed) for one campaign."""
    session = ExplorationSession(
        runner=TargetRunner(target, injector),
        space=space,
        metric=standard_impact(),
        strategy=FitnessGuidedSearch(),
        target=IterationBudget(ITERATIONS),
        rng=SEED,
    )
    started = time.perf_counter()
    results = list(session.run())
    elapsed = time.perf_counter() - started
    rate = len(results) / elapsed if elapsed > 0 else float("inf")
    return rate, history_digest(results), len(results)


def test_faultmodel_overhead(benchmark, report):
    def experiment():
        errno_space = FaultSpace.product(
            test=range(1, 30), function=COREUTILS_FUNCTIONS, call=[0, 1, 2]
        )
        libfi_rate, libfi_digest, executed = _campaign(
            CoreutilsTarget(), LibFaultInjector(), errno_space
        )
        model_rate, model_digest, _ = _campaign(
            CoreutilsTarget(), model_injector("errno"), errno_space
        )
        # the composite's world-model axes pinned to their no-fault
        # points: every run still crosses all three hook None checks.
        target = CoreutilsTarget()
        composite_space = (
            model_space(target, compose_models("errno+disk+net+bitflip"))
            .restrict_axis("test", range(1, 30))
            .restrict_axis("disk_write", [0])
            .restrict_axis("net_op", [0])
            .restrict_axis("flip_access", [0])
        )
        composite_rate, _digest, _ = _campaign(
            target, model_injector("errno+disk+net+bitflip"), composite_space
        )
        return {
            "libfi_rate": libfi_rate,
            "model_rate": model_rate,
            "composite_rate": composite_rate,
            "digest_match": libfi_digest == model_digest,
            "digest": libfi_digest,
            "executed": executed,
        }

    data = run_once(benchmark, experiment)

    table = TextTable(
        ["configuration", "tests/s"],
        title=(
            f"Fault-model plugin overhead — Φ_coreutils, "
            f"{ITERATIONS} iterations, seed {SEED}"
        ),
    )
    table.add_row(["LibFaultInjector (direct)", f"{data['libfi_rate']:.0f}"])
    table.add_row(["ModelInjector('errno')", f"{data['model_rate']:.0f}"])
    table.add_row(["composite, unarmed hooks", f"{data['composite_rate']:.0f}"])
    text = (table.render()
            + f"\ndigests identical: {data['digest_match']}"
            + f"\nwritten to {BENCH_PATH.name}")
    report("faultmodel_overhead", text)

    payload = {
        "experiment": "faultmodel_overhead",
        "iterations": ITERATIONS,
        "seed": SEED,
        "cores": cores_info(),
        "libfi_tests_per_second": data["libfi_rate"],
        "model_errno_tests_per_second": data["model_rate"],
        "composite_unarmed_tests_per_second": data["composite_rate"],
        "model_errno_relative": data["model_rate"] / data["libfi_rate"],
        "composite_relative": data["composite_rate"] / data["libfi_rate"],
        "digest_match": data["digest_match"],
        "history_digest": data["digest"],
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # the refactor's keystone, measured end to end:
    assert data["digest_match"], (
        "ModelInjector('errno') diverged from LibFaultInjector"
    )
    # the plugin indirection and unarmed hooks must be near-free; 2x is
    # a loose tripwire against an accidentally hot abstraction.
    assert data["model_rate"] >= 0.5 * data["libfi_rate"]
    assert data["composite_rate"] >= 0.5 * data["libfi_rate"]
