"""§7.1: AFEX finds the paper's actual bugs, automatically.

The paper's headline result is three new bugs found with no source
access:

  * MySQL bug #53268 — double unlock of THR_LOCK_myisam in mi_create's
    shared error-recovery block (Fig. 6);
  * MySQL bug #25097 — crash from using the error-message table after a
    failed errmsg.sys read;
  * Apache (Fig. 7) — NULL dereference of an unchecked strdup during
    module registration;
  * plus §7.6's observation that AFEX could crash MongoDB v2.0 but not
    v0.8.

Each is planted faithfully in the corresponding simulated target; this
bench runs black-box fitness-guided exploration and asserts each bug is
actually *discovered* (a crash whose injection/crash stack identifies
the planted site), within a budget far below exhaustive cost.
"""

from __future__ import annotations

from conftest import run_once
from repro.core import (
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    TargetRunner,
    standard_impact,
)
from repro.core.targets import AnyOf, CollectMatching
from repro.quality import RedundancyFeedback
from repro.sim.targets.docstore import DOCSTORE_FUNCTIONS, DocStoreTarget
from repro.sim.targets.httpd import HTTPD_FUNCTIONS, HttpdTarget
from repro.sim.targets.minidb import MINIDB_FUNCTIONS, MiniDbTarget
from repro.util.tables import TextTable


def _crash_with_frame(frame: str):
    def predicate(executed) -> bool:
        stack = executed.result.crash_stack or ()
        return executed.result.crashed and frame in stack
    return predicate


def _hunt(target, space, predicate, budget, seed=11):
    # Bug hunting uses the §7.4 online feedback loop: without it the
    # search happily farms its first crash cluster instead of moving on
    # to *different* bugs — precisely the redundancy problem the paper's
    # clustering feedback exists to solve.
    session = ExplorationSession(
        runner=TargetRunner(target),
        space=space,
        metric=standard_impact(),
        strategy=FitnessGuidedSearch(fitness_weight=RedundancyFeedback()),
        target=AnyOf(CollectMatching(predicate, 1), IterationBudget(budget)),
        rng=seed,
    )
    results = session.run()
    hits = [t for t in results if predicate(t)]
    return len(results), hits


def test_bug_discovery_all_planted_bugs(benchmark, report):
    minidb_space = FaultSpace.product(
        test=range(1, 1148), function=MINIDB_FUNCTIONS, call=range(1, 101)
    )
    httpd_space = FaultSpace.product(
        test=range(1, 59), function=HTTPD_FUNCTIONS, call=range(1, 11)
    )
    docstore_space = FaultSpace.product(
        test=range(1, 61), function=DOCSTORE_FUNCTIONS, call=range(1, 31)
    )

    def experiment():
        rows = {}
        rows["MySQL #53268 (double unlock)"] = _hunt(
            MiniDbTarget(), minidb_space,
            _crash_with_frame("mi_create_err"), budget=4000,
        )
        rows["MySQL #25097 (errmsg.sys)"] = _hunt(
            MiniDbTarget(), minidb_space,
            _crash_with_frame("my_error"), budget=8000,
        )
        rows["Apache Fig.7 (strdup NULL)"] = _hunt(
            HttpdTarget(), httpd_space,
            _crash_with_frame("ap_add_module"), budget=2000,
        )
        rows["DocStore v2.0 (replay OOM)"] = _hunt(
            DocStoreTarget("2.0"), docstore_space,
            _crash_with_frame("journal_replay"), budget=20000,
        )
        rows["DocStore v0.8 (immune)"] = _hunt(
            DocStoreTarget("0.8"), docstore_space,
            lambda t: t.result.crashed, budget=3000,
        )
        return rows

    rows = run_once(benchmark, experiment)

    table = TextTable(
        ["bug", "tests until found", "found"],
        title="§7.1/§7.6 — black-box discovery of the planted bugs",
    )
    for name, (tests, hits) in rows.items():
        found = "yes" if hits else "no"
        table.add_row([name, tests, found])
    report("bug_discovery", table.render())

    assert rows["MySQL #53268 (double unlock)"][1]
    assert rows["MySQL #25097 (errmsg.sys)"][1]
    assert rows["Apache Fig.7 (strdup NULL)"][1]
    assert rows["DocStore v2.0 (replay OOM)"][1]
    # v0.8 cannot crash, ever (also verified exhaustively in the tests).
    assert not rows["DocStore v0.8 (immune)"][1]

    # Discovery cost is far below exhaustive exploration.
    assert rows["MySQL #53268 (double unlock)"][0] < 0.01 * minidb_space.size()
    assert rows["Apache Fig.7 (strdup NULL)"][0] < 0.2 * httpd_space.size()


def test_bug_discovery_replay_scripts(benchmark, report):
    """§6.3: the generated regression scripts reproduce the found bug."""
    httpd_space = FaultSpace.product(
        test=range(1, 59), function=HTTPD_FUNCTIONS, call=range(1, 11)
    )

    def experiment():
        return _hunt(
            HttpdTarget(), httpd_space,
            _crash_with_frame("ap_add_module"), budget=2000,
        )

    _, hits = run_once(benchmark, experiment)
    assert hits
    from repro.core.results import ResultSet

    results = ResultSet(hits)
    script = results.replay_script(hits[0], "httpd")
    namespace: dict = {}
    exec(compile(script, "<replay>", "exec"), namespace)
    replayed = namespace["replay"]()
    assert replayed.crash_kind == "segfault"
    report(
        "bug_discovery_replay",
        "replay script for the Apache strdup bug reproduces: "
        + replayed.summary(),
    )
