"""Design-choice ablations (the DESIGN.md commitments).

The paper motivates several ingredients of Algorithm 1 without
separately measuring them; these benches quantify each on Φ_coreutils:

  * Gaussian vs uniform value mutation (§3's locality argument);
  * sensitivity-guided vs uniform axis choice (the Battleship
    orientation inference);
  * aging on vs off (§3: without aging the search orbits outliers);
  * Algorithm 1 vs the abandoned genetic algorithm (§3 "Alternative
    Algorithms": "we found it inefficient").
"""

from __future__ import annotations

from conftest import run_once
from repro.core import (
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    GeneticSearch,
    IterationBudget,
    RandomSearch,
    TargetRunner,
    standard_impact,
)
from repro.sim.targets.coreutils import COREUTILS_FUNCTIONS, CoreutilsTarget
from repro.util.tables import TextTable

ITERATIONS = 250
SEEDS = (1, 2, 3, 4, 5)


def _mean_failed(strategy_factory) -> float:
    total = 0
    for seed in SEEDS:
        target = CoreutilsTarget()
        results = ExplorationSession(
            runner=TargetRunner(target),
            space=FaultSpace.product(
                test=range(1, 30), function=COREUTILS_FUNCTIONS,
                call=[0, 1, 2],
            ),
            metric=standard_impact(),
            strategy=strategy_factory(),
            target=IterationBudget(ITERATIONS),
            rng=seed,
        ).run()
        total += results.failed_count()
    return total / len(SEEDS)


def test_ablations_algorithm_ingredients(benchmark, report):
    def experiment():
        return {
            "full Algorithm 1": _mean_failed(FitnessGuidedSearch),
            "uniform mutation": _mean_failed(
                lambda: FitnessGuidedSearch(gaussian=False)),
            "no sensitivity": _mean_failed(
                lambda: FitnessGuidedSearch(use_sensitivity=False)),
            "no aging": _mean_failed(
                lambda: FitnessGuidedSearch(aging=False)),
            "adaptive sigma": _mean_failed(
                lambda: FitnessGuidedSearch(adaptive_sigma=True)),
            "strict-min eviction": _mean_failed(
                lambda: FitnessGuidedSearch(eviction="strict-min")),
            "genetic algorithm": _mean_failed(
                lambda: GeneticSearch(population_size=25)),
            "random": _mean_failed(RandomSearch),
        }

    rows = run_once(benchmark, experiment)

    table = TextTable(
        ["configuration", "failed tests @250"],
        title=(
            f"Ablations — Φ_coreutils, mean of seeds {SEEDS} "
            "(every ingredient removed should cost failures; the GA is "
            "the paper's abandoned baseline)"
        ),
    )
    for name, failed in rows.items():
        table.add_row([name, f"{failed:.1f}"])
    report("ablations", table.render())

    full = rows["full Algorithm 1"]
    # Every guided variant still beats random handily...
    for name in ("uniform mutation", "no sensitivity", "no aging",
                 "adaptive sigma", "strict-min eviction"):
        assert rows[name] > 1.5 * rows["random"], name
    # The §3 future-work dynamic sigma is competitive with the fixed
    # |A|/5 choice (within 25% either way on this target).
    assert rows["adaptive sigma"] > 0.75 * full
    # ...and the full algorithm beats the GA the authors abandoned.
    assert full > rows["genetic algorithm"]
    # The GA itself beats random (it is guided, just less efficiently).
    assert rows["genetic algorithm"] > rows["random"]


def test_ablation_aging_retires_outliers(benchmark, report):
    """§3's aging motivation, isolated on a synthetic space.

    "Discovering a massive-impact 'outlier' fault with no serious faults
    in its vicinity would cause an AFEX with no aging to waste time
    exploring exhaustively that vicinity."  We plant exactly that
    outlier (impact 1000, dead surroundings) and observe the mechanism:

    * with aging, the outlier's fitness decays below the retirement
      threshold and it leaves Qpriority — deterministically, across
      every seed;
    * without aging it anchors Qpriority forever.

    Honest secondary finding: in *this implementation* the downstream
    pathology is largely neutralized even without aging, because the
    offspring-generation fallback (random probe after repeated duplicate
    candidates) re-widens the search once the outlier's vicinity is
    saturated.  Aging remains the principled fix; the fallback is the
    safety net.  Both are reported.
    """
    import random as _random

    from repro.core.fault import Fault
    from repro.injection.plan import InjectionPlan
    from repro.sim.process import RunResult

    space = FaultSpace.product(x=range(60), y=range(60))
    outlier = Fault.of(x=5, y=5)

    blank = RunResult(
        test_id=1, test_name="", plan=InjectionPlan.none(), exit_code=0,
        crash_kind=None, crash_message=None, crash_stack=None,
        injection_stack=None, injected=True, coverage=frozenset(), steps=1,
    )

    def run(aging: bool, seed: int):
        strategy = FitnessGuidedSearch(
            initial_batch=10, aging=aging, aging_decay=0.9,
            initial_seeds=(outlier,),
        )
        strategy.bind(space, _random.Random(seed))
        near = total = 0
        for i in range(400):
            fault = strategy.propose()
            if fault is None:
                break
            strategy.observe(fault, 1000.0 if fault == outlier else 0.0,
                             blank)
            if i >= 100:
                total += 1
                if space.distance(fault, outlier) <= 15:
                    near += 1
        still_queued = any(
            c.fault == outlier for c in strategy.priority_snapshot()
        )
        return still_queued, near / max(total, 1)

    def experiment():
        seeds = range(20, 28)
        with_aging = [run(True, s) for s in seeds]
        without = [run(False, s) for s in seeds]
        return with_aging, without

    with_aging, without = run_once(benchmark, experiment)
    aging_near = sum(frac for _, frac in with_aging) / len(with_aging)
    without_near = sum(frac for _, frac in without) / len(without)
    report(
        "ablation_aging",
        (
            "outlier-retirement mechanism (8 seeds, 400 iterations):\n"
            f"  aging on:  outlier still in Qpriority: "
            f"{sum(q for q, _ in with_aging)}/8; "
            f"late proposals near outlier: {100 * aging_near:.0f}%\n"
            f"  aging off: outlier still in Qpriority: "
            f"{sum(q for q, _ in without)}/8; "
            f"late proposals near outlier: {100 * without_near:.0f}%\n"
            "(the random-probe fallback caps the damage either way — "
            "aging removes the cause, the fallback the symptom)"
        ),
    )
    # The mechanism is deterministic: aging always retires the outlier,
    # no-aging never does.
    assert not any(queued for queued, _ in with_aging)
    assert all(queued for queued, _ in without)
