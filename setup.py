"""Legacy setup shim.

The offline environment has setuptools but no ``wheel`` package, so
PEP 517 editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` fall back to
the classic ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
