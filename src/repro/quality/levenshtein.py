"""Levenshtein edit distance, from scratch (paper ref. [14]).

AFEX compares the stack traces of injected faults with the Levenshtein
distance (§5).  Traces are sequences of frame names, so the distance
operates over arbitrary hashable symbols, not just characters.

Implementation notes: two-row dynamic programming (O(min(m,n)) memory),
with an optional ``upper_bound`` that enables a banded early-exit — the
clustering pass compares every pair of traces, so most comparisons are
against the threshold and can stop as soon as the band exceeds it.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["levenshtein"]


def levenshtein(
    a: Sequence,
    b: Sequence,
    upper_bound: int | None = None,
) -> int:
    """Edit distance between two sequences of hashable items.

    If ``upper_bound`` is given and the true distance exceeds it, any
    value > ``upper_bound`` may be returned (callers compare against the
    bound, so the exact overshoot is irrelevant) — this enables the
    early-exit optimization.
    """
    # The length difference alone is a lower bound on the distance
    # (every missing item costs at least one edit), so a threshold
    # comparison can bail out before even the O(min(m,n)) equality
    # scan below.  The online clustering engine leans on this guard:
    # its length-bucket pruning assumes a length gap beyond the
    # threshold can never cluster, which is exactly this inequality.
    if upper_bound is not None and abs(len(a) - len(b)) > upper_bound:
        return upper_bound + 1
    if a == b:
        return 0
    # Ensure `a` is the shorter sequence: memory is O(len(a)).
    if len(a) > len(b):
        a, b = b, a
    if not a:
        return len(b)

    previous = list(range(len(a) + 1))
    current = [0] * (len(a) + 1)
    for j, item_b in enumerate(b, start=1):
        current[0] = j
        row_min = current[0]
        for i, item_a in enumerate(a, start=1):
            cost = 0 if item_a == item_b else 1
            current[i] = min(
                previous[i] + 1,       # deletion
                current[i - 1] + 1,    # insertion
                previous[i - 1] + cost,  # substitution
            )
            if current[i] < row_min:
                row_min = current[i]
        if upper_bound is not None and row_min > upper_bound:
            return upper_bound + 1
        previous, current = current, previous
    return previous[len(a)]
