"""Statistical environment models: practical relevance of faults (§5, §7.5).

Developers who know the deployment environment can state how likely each
fault class is to occur in production ("malloc has a relative
probability of failing of 40%, all file-related operations ... a
combined weight of 50%, and opendir, chdir a combined weight of 10%" —
the exact model used in Table 6).  AFEX then weighs each measured impact
by the fault's relevance, steering the search toward failures that both
hurt *and* happen.

A model maps attribute predicates to weights.  The common case — weights
keyed by the ``function`` attribute — gets a convenience constructor
that distributes group weights uniformly within each group.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import ReportError

__all__ = ["EnvironmentModel"]


class EnvironmentModel:
    """Per-fault relevance weights derived from failure statistics."""

    def __init__(self, weights: Mapping[str, float], attribute: str = "function") -> None:
        if not weights:
            raise ReportError("environment model needs at least one weight")
        bad = {k: w for k, w in weights.items() if w < 0}
        if bad:
            raise ReportError(f"negative relevance weights: {bad}")
        total = sum(weights.values())
        if total <= 0:
            raise ReportError("environment model weights sum to zero")
        self.attribute = attribute
        #: normalized per-value probability of occurrence.
        self.weights = {k: w / total for k, w in weights.items()}

    @classmethod
    def from_groups(
        cls,
        groups: Sequence[tuple[Sequence[str], float]],
        attribute: str = "function",
    ) -> "EnvironmentModel":
        """Build from (member values, combined group weight) pairs.

        The Table 6 model::

            EnvironmentModel.from_groups([
                (["malloc"], 0.40),
                (["fopen", "read", ...], 0.50),
                (["opendir", "chdir"], 0.10),
            ])
        """
        weights: dict[str, float] = {}
        for members, group_weight in groups:
            if not members:
                raise ReportError("empty group in environment model")
            share = group_weight / len(members)
            for member in members:
                weights[member] = weights.get(member, 0.0) + share
        return cls(weights, attribute)

    def relevance(self, fault) -> float:
        """The fault's occurrence probability (0 for unmodelled values).

        Accepts any object with a ``get(name)`` (a Fault) or a plain
        attribute dict.
        """
        if hasattr(fault, "get"):
            value = fault.get(self.attribute)
        else:  # pragma: no cover - defensive
            value = None
        if value is None:
            return 0.0
        return self.weights.get(str(value), self.weights.get(value, 0.0))

    def weight_impact(self, fault, impact: float) -> float:
        """Impact scaled by relevance — what the explorer maximizes in §7.5.

        The relevance is rescaled so the *average modelled* weight is
        1.0: a uniform model then leaves impacts untouched, and
        non-uniform models redistribute emphasis rather than deflating
        every impact.
        """
        if not self.weights:
            return impact
        mean_weight = 1.0 / len(self.weights)
        return impact * (self.relevance(fault) / mean_weight)
