"""The full AFEX output report (§6.3).

"AFEX's output consists of a set of faults that satisfy the search
target, a characterization of the quality of this fault set, and
generated test cases ... In addition ... operational aspects, such as a
synopsis of the search algorithms used, exploration time, number of
explored faults."

:func:`build_report` assembles exactly that from a finished
:class:`~repro.core.results.ResultSet`:

* the top-N faults ranked by severity (impact);
* per-fault **redundancy cluster** membership, with one designated
  representative per cluster (§5);
* per-fault **impact precision** — 1/Var over repeated trials, ∞ for
  deterministic faults (§5), measured by re-executing each reported
  fault;
* per-fault **practical relevance** when a statistical environment
  model is supplied (§5);
* an auto-generated **replay script** per cluster representative;
* the operational synopsis.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Callable

from typing import TYPE_CHECKING

from repro.errors import ReportError
from repro.quality.precision import ImpactPrecision, measure_precision
from repro.quality.relevance import EnvironmentModel
from repro.util.tables import TextTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> quality)
    from repro.core.impact import ImpactMetric
    from repro.core.results import ExecutedTest, ResultSet

__all__ = ["ReportedFault", "ExplorationReport", "build_report"]


def _stateless_metric() -> "ImpactMetric":
    """Default metric for precision trials: no stateful coverage term."""
    from repro.core.impact import (
        CompositeImpact,
        CrashImpact,
        FailedTestImpact,
        HangImpact,
    )

    return CompositeImpact([FailedTestImpact(), HangImpact(), CrashImpact()])


@dataclass(frozen=True)
class ReportedFault:
    """One fault in the report, with its full quality characterization."""

    executed: "ExecutedTest"
    cluster_id: int
    is_representative: bool
    precision: ImpactPrecision | None
    relevance: float | None

    @property
    def precision_label(self) -> str:
        if self.precision is None:
            return "-"
        if self.precision.deterministic:
            return "inf (deterministic)"
        return f"{self.precision.precision:.2f}"


@dataclass
class ExplorationReport:
    """Everything §6.3 says AFEX hands back to the developer."""

    target_name: str
    strategy_name: str
    injector_name: str
    explored: int
    failed: int
    crashes: int
    hangs: int
    cluster_count: int
    reported: list[ReportedFault]
    replay_scripts: dict[str, str]
    build_seconds: float
    relevance_modelled: bool = False
    extra_notes: list[str] = field(default_factory=list)
    #: fabric fault-tolerance counters (a ``FabricHealth.as_dict()``)
    #: when the exploration ran on a hardened fabric.
    fabric_health: dict[str, object] | None = None
    #: live clustering counters (an ``OnlineClusters.stats()``) when the
    #: exploration ran with the streaming quality stage on.
    quality_stats: dict[str, object] | None = None

    def render(self) -> str:
        lines = [
            f"AFEX exploration report — {self.target_name}",
            f"  strategy: {self.strategy_name or 'unknown'}; "
            f"injector: {self.injector_name or 'libfi'}",
            f"  explored {self.explored} faults: {self.failed} failed, "
            f"{self.crashes} crashed, {self.hangs} hung",
            f"  {self.cluster_count} redundancy clusters among the "
            f"reported faults; {len(self.replay_scripts)} replay scripts",
            f"  report built in {self.build_seconds:.2f}s",
        ]
        if self.fabric_health is not None:
            h = self.fabric_health
            lines.append(
                "  fabric health: "
                f"{h.get('retries', 0)} retries "
                f"({h.get('timeouts', 0)} timeouts, "
                f"{h.get('worker_deaths', 0)} worker deaths, "
                f"{h.get('corrupt_reports', 0)} corrupt reports); "
                f"{h.get('worker_replacements', 0)} worker replacements"
            )
        if self.quality_stats is not None:
            q = self.quality_stats
            ratio = float(q.get("novelty_ratio", 0.0) or 0.0)
            lines.append(
                "  online quality: "
                f"{q.get('clusters', 0)} live clusters over "
                f"{q.get('items', 0)} results "
                f"({100 * ratio:.0f}% non-redundant); "
                f"{q.get('comparisons', 0)} distances computed, "
                f"{q.get('comparisons_avoided', 0)} avoided"
            )
        lines.append("")
        headers = ["rank", "impact", "fault", "cluster", "precision"]
        if self.relevance_modelled:
            headers.append("relevance")
        table = TextTable(headers, title="top faults by severity")
        for rank, reported in enumerate(self.reported, start=1):
            row: list[object] = [
                rank,
                f"{reported.executed.impact:.1f}",
                str(reported.executed.fault),
                f"#{reported.cluster_id}"
                + ("*" if reported.is_representative else ""),
                reported.precision_label,
            ]
            if self.relevance_modelled:
                row.append(
                    "-" if reported.relevance is None
                    else f"{100 * reported.relevance:.0f}%"
                )
            table.add_row(row)
        lines.append(table.render())
        if self.extra_notes:
            lines.append("")
            lines.extend(f"note: {note}" for note in self.extra_notes)
        return "\n".join(lines)


def build_report(
    results: "ResultSet",
    runner: Callable[..., object],
    target_name: str,
    strategy_name: str = "",
    injector_name: str = "libfi",
    top_n: int = 10,
    precision_trials: int = 5,
    environment: EnvironmentModel | None = None,
    cluster_distance: int = 1,
    of: Callable[["ExecutedTest"], bool] | None = None,
    precision_metric_factory: Callable[[], "ImpactMetric"] = _stateless_metric,
    fabric_health: object | None = None,
    quality_stats: dict[str, object] | None = None,
) -> ExplorationReport:
    """Assemble the §6.3 report from a finished exploration.

    ``runner`` must accept ``(fault, trial=...)`` — a
    :class:`~repro.core.runner.TargetRunner` does — so precision can be
    measured by genuine re-execution.  ``of`` filters which executed
    tests are eligible for reporting (default: the failed ones; pass
    ``lambda t: True`` to rank everything).
    """
    if top_n < 1:
        raise ReportError(f"top_n must be >= 1, got {top_n}")
    if len(results) == 0:
        raise ReportError("cannot report on an empty result set")
    started = time.perf_counter()

    eligible_filter = of if of is not None else (lambda t: t.failed)
    eligible = [t for t in results if eligible_filter(t)]
    notes: list[str] = []
    if not eligible:
        notes.append("no faults matched the report filter; ranking all tests")
        eligible = list(results)

    clusters = _cluster(eligible, cluster_distance)
    representatives = set(clusters.representatives())

    ranked = sorted(eligible, key=lambda t: t.impact, reverse=True)[:top_n]
    metric = precision_metric_factory()
    reported: list[ReportedFault] = []
    for executed in ranked:
        index_in_eligible = eligible.index(executed)
        precision = measure_precision(
            lambda fault, trial: runner(executed.fault, trial=trial),
            executed.fault,
            metric.score,
            trials=precision_trials,
        )
        relevance = (
            environment.relevance(executed.fault)
            if environment is not None else None
        )
        reported.append(ReportedFault(
            executed=executed,
            cluster_id=clusters.cluster_of(index_in_eligible),
            is_representative=index_in_eligible in representatives,
            precision=precision,
            relevance=relevance,
        ))

    crash_id_for = _crash_id_factory(runner)
    scripts: dict[str, str] = {}
    for rep_index in sorted(representatives):
        rep = eligible[rep_index]
        scripts[f"replay_{rep.index:05d}.py"] = results.replay_script(
            rep, target_name, crash_id=crash_id_for(rep)
        )

    return ExplorationReport(
        target_name=target_name,
        strategy_name=strategy_name,
        injector_name=injector_name,
        explored=len(results),
        failed=results.failed_count(),
        crashes=results.crash_count(),
        hangs=len(results.hangs()),
        cluster_count=clusters.cluster_count,
        reported=reported,
        replay_scripts=scripts,
        build_seconds=time.perf_counter() - started,
        relevance_modelled=environment is not None,
        extra_notes=notes,
        fabric_health=(
            fabric_health.as_dict()  # type: ignore[attr-defined]
            if hasattr(fabric_health, "as_dict")
            else fabric_health  # already a dict (or None)
        ),
        quality_stats=quality_stats,
    )


def _crash_id_factory(runner) -> Callable[["ExecutedTest"], "str | None"]:
    """Per-test crash ids when the runner carries the needed identity.

    A :class:`~repro.core.runner.TargetRunner` exposes its target and
    injector; anything else (a bare callable in tests) degrades to no
    crash-id line in the generated scripts rather than failing the
    report.
    """
    target = getattr(runner, "target", None)
    injector = getattr(runner, "injector", None)
    if target is None or injector is None:
        return lambda test: None
    from repro.replay import crash_id_of

    spec = str(getattr(injector, "name", ""))
    spec = spec.removeprefix("model:")

    def _id(test: "ExecutedTest") -> str:
        return crash_id_of(
            target.name, target.version, spec,
            test.fault.subspace, test.fault.attributes,
        )

    return _id


def _cluster(eligible: list["ExecutedTest"], cluster_distance: int):
    from repro.quality.clustering import cluster_stacks

    stacks = [
        tuple(t.result.injection_stack) if t.result.injection_stack else None
        for t in eligible
    ]
    return cluster_stacks(stacks, max_distance=cluster_distance)

