"""Redundancy clusters: equivalence classes of faults by stack trace (§5).

"While executing a test that injects fault φ, AFEX captures the stack
trace corresponding to φ's injection point.  Subsequently, it compares
the stack traces of all injected faults by computing the edit distance
between every pair ...  Any two faults for which the distance is below a
threshold end up in the same cluster."

Clustering is transitive closure over the "distance below threshold"
relation, implemented with union-find.  A similarity in [0, 1] (1 =
identical) is also exposed — the §7.4 feedback loop weighs fitness
linearly by it.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.quality.levenshtein import levenshtein

__all__ = [
    "RedundancyClusters",
    "cluster_stacks",
    "cluster_stacks_reference",
    "stack_similarity",
]

Stack = tuple[str, ...]


def stack_similarity(a: Stack, b: Stack) -> float:
    """1 - normalized edit distance: 1.0 means identical traces."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein(a, b) / longest


@dataclass(frozen=True)
class RedundancyClusters:
    """The clustering result: groups of item indices plus their stacks."""

    #: cluster id per input index (cluster ids are dense, 0-based).
    assignment: tuple[int, ...]
    #: for each cluster, the indices of its members (sorted).
    clusters: tuple[tuple[int, ...], ...]

    @property
    def cluster_count(self) -> int:
        return len(self.clusters)

    def representatives(self) -> tuple[int, ...]:
        """One member index per cluster (the first seen — §6.4 step 8)."""
        return tuple(members[0] for members in self.clusters)

    def cluster_of(self, index: int) -> int:
        return self.assignment[index]


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def cluster_stacks(
    stacks: Sequence[Stack | None],
    max_distance: int = 1,
) -> RedundancyClusters:
    """Cluster stack traces whose pairwise edit distance <= ``max_distance``.

    ``None`` entries (tests where no fault fired, so there is no
    injection point) each form their own singleton cluster — a test that
    injected nothing is not redundant with anything.

    This is a thin wrapper over the streaming
    :class:`~repro.quality.online.OnlineClusters` engine — the same
    incremental pass that assigns clusters while a session runs — so
    report-time clustering is near-linear in practice instead of
    quadratic.  The partition (and cluster numbering) is identical to
    the quadratic all-pairs pass, kept below as
    :func:`cluster_stacks_reference` and enforced by a property test.
    """
    from repro.quality.online import OnlineClusters

    engine = OnlineClusters(max_distance=max_distance)
    for stack in stacks:
        engine.add(stack)
    return engine.partition()


def cluster_stacks_reference(
    stacks: Sequence[Stack | None],
    max_distance: int = 1,
) -> RedundancyClusters:
    """The original quadratic all-pairs pass, kept as the oracle the
    online engine is verified against (tests and the scaling benchmark).

    Identical stacks are grouped first through a dict, so the pairwise
    pass runs over *distinct* traces only.
    """
    n = len(stacks)
    # Group identical stacks (including the None group -> handled apart).
    distinct: dict[Stack, list[int]] = {}
    singletons: list[int] = []
    for i, stack in enumerate(stacks):
        if stack is None:
            singletons.append(i)
        else:
            distinct.setdefault(tuple(stack), []).append(i)

    keys = list(distinct)
    uf = _UnionFind(len(keys))
    for i in range(len(keys)):
        for j in range(i + 1, len(keys)):
            if levenshtein(keys[i], keys[j], upper_bound=max_distance) <= max_distance:
                uf.union(i, j)

    # Materialize dense cluster ids.
    root_to_cluster: dict[int, int] = {}
    assignment = [-1] * n
    for key_index, key in enumerate(keys):
        root = uf.find(key_index)
        cluster_id = root_to_cluster.setdefault(root, len(root_to_cluster))
        for item_index in distinct[key]:
            assignment[item_index] = cluster_id
    next_id = len(root_to_cluster)
    for item_index in singletons:
        assignment[item_index] = next_id
        next_id += 1

    members: dict[int, list[int]] = {}
    for index, cluster_id in enumerate(assignment):
        members.setdefault(cluster_id, []).append(index)
    clusters = tuple(
        tuple(sorted(members[cid])) for cid in range(next_id)
    )
    return RedundancyClusters(tuple(assignment), clusters)
