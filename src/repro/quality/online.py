"""Online redundancy clustering: the streaming §5/§7.4 quality pipeline.

The batch :func:`~repro.quality.clustering.cluster_stacks` pass compares
every pair of distinct stack traces — O(n²) edit distances, paid in full
at report time.  That is fine for a post-hoc report over a few hundred
results but cannot steer a long-running campaign: the §7.4 feedback loop
("fitness weighed by novelty") needs the cluster structure *while*
results stream in, and the quadratic tax grows with every round.

:class:`OnlineClusters` maintains the same partition incrementally.  As
each executed fault's injection-point stack arrives it is assigned to a
cluster immediately, using three prunes layered over an incremental
union-find:

* **exact-match fast path** — repeated stacks (the overwhelmingly common
  case: most faults fire at a handful of injection points) are resolved
  with one dict probe, zero edit distances;
* **length buckets** — the edit distance is bounded below by the length
  difference, so only stacks within ``max_distance`` frames of the new
  stack's depth are candidates at all;
* **representative triangle pruning** — candidates are visited cluster
  by cluster.  The new stack is first compared against the cluster's
  *representative* (its first-seen member) with a band of
  ``2·max_distance``; by the triangle inequality, a representative more
  than ``2·max_distance`` away rules out every member within
  ``max_distance`` of it, and an exact representative distance combines
  with each member's memoized representative distance to skip most of
  the rest.  A match short-circuits the whole cluster.

Every edit distance ever computed lands in a **memoized pairwise
distance cache**, so bridging inserts and repeated probes never pay for
the same pair twice.  The common-case cost of an insert is O(k)
comparisons against the k cluster representatives instead of O(n)
against all stacks.

The resulting partition is **provably identical** to the batch pass —
the prunes are sound distance bounds, never heuristics (see
``tests/test_online_quality.py`` for the property test) — which is why
:func:`~repro.quality.clustering.cluster_stacks` is now a thin wrapper
over this engine.

Each insert also yields a **novelty** signal in [0, 1] — the complement
of the similarity to the closest cluster-mate discovered — which
:class:`~repro.core.search.FitnessGuidedSearch` and
:class:`~repro.core.search.genetic.GeneticSearch` can consume as the
live §7.4 feedback loop (``use_novelty=True``).  Unlike the batch
:class:`~repro.quality.feedback.RedundancyFeedback` (which scans *all*
previous stacks per result), novelty here is measured against the
redundancy-cluster structure: an exact repeat scores 0.0, a stack that
joined an existing cluster scores ``1 - similarity`` to the member that
admitted it, and a brand-new cluster scores 1.0.  Similarities below
``similarity_threshold`` do not discount at all.
"""

from __future__ import annotations

import hashlib
import json

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.quality.levenshtein import levenshtein

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (clustering -> online)
    from repro.quality.clustering import RedundancyClusters, Stack
else:
    Stack = tuple

__all__ = [
    "QUALITY_STATE_VERSION",
    "NOVELTY_BUCKETS",
    "OnlineClusters",
    "QualityUpdate",
    "QualityDelta",
    "stack_digest",
]

#: bump on any incompatible change to the persisted cluster-state schema.
QUALITY_STATE_VERSION = 1

#: histogram boundaries for the per-test novelty signal (a fraction).
NOVELTY_BUCKETS: tuple[float, ...] = (
    0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0,
)


def stack_digest(stack: "Stack | None") -> str | None:
    """A stable content digest of one injection-point stack trace.

    Computed worker-side so the explorer's exact-match fast path is one
    dict probe on a short string (``hash()`` is salted per process, so
    it cannot serve as a cross-process key).  ``None`` stacks (no fault
    fired) have no digest.
    """
    if stack is None:
        return None
    payload = "\x1e".join(stack).encode()
    return f"{len(stack)}:{hashlib.blake2b(payload, digest_size=16).hexdigest()}"


@dataclass(frozen=True)
class QualityUpdate:
    """What one :meth:`OnlineClusters.add` did."""

    #: item index of the added result (dense, 0-based).
    index: int
    #: ``exact`` (repeated stack), ``joined`` (entered an existing
    #: cluster), ``new`` (opened a cluster), ``bridged`` (merged two or
    #: more existing clusters), or ``none`` (no injection point).
    kind: str
    #: novelty in [0, 1]: 1.0 = nothing similar seen before.
    novelty: float
    #: pre-existing clusters merged away by this insert (only ``bridged``).
    merges: int = 0


@dataclass(frozen=True)
class QualityDelta:
    """Per-round cluster movement, published by the exploration layers."""

    round: int
    #: results fed to the engine this round.
    items: int
    #: clusters opened this round.
    new_clusters: int
    #: pre-existing cluster pairs merged by bridging stacks this round.
    merges: int
    #: total clusters after the round.
    clusters: int

    def as_dict(self) -> dict[str, int]:
        return {
            "round": self.round,
            "items": self.items,
            "new_clusters": self.new_clusters,
            "merges": self.merges,
            "clusters": self.clusters,
        }


class OnlineClusters:
    """Incremental redundancy clustering with a live novelty signal."""

    def __init__(
        self,
        max_distance: int = 1,
        similarity_threshold: float = 0.0,
    ) -> None:
        if max_distance < 0:
            raise ValueError(f"max_distance must be >= 0, got {max_distance}")
        if not 0.0 <= similarity_threshold <= 1.0:
            raise ValueError(
                f"similarity_threshold must be in [0, 1], "
                f"got {similarity_threshold}"
            )
        self.max_distance = max_distance
        self.similarity_threshold = similarity_threshold
        #: distinct stacks in first-seen order (the union-find universe).
        self._keys: list[Stack] = []
        self._key_index: dict[Stack, int] = {}
        self._digest_index: dict[str, int] = {}
        #: per item: the distinct-key index, or None for a no-injection item.
        self._item_keys: list[int | None] = []
        self._parent: list[int] = []
        #: stack length per key (lengths drive every cheap prune).
        self._lengths: list[int] = []
        #: members per cluster root (merged on union; absorbed roots are
        #: popped, so this also enumerates the live clusters).
        self._members_of: dict[int, list[int]] = {}
        #: (min, max) member length per cluster root — a whole cluster
        #: is skipped with two int compares when the new stack's length
        #: is outside [min - max_distance, max + max_distance].
        self._length_range: dict[int, tuple[int, int]] = {}
        #: memoized pairwise distances between distinct keys, keyed
        #: (min, max) -> (value, band).  A value is exact when
        #: ``value <= band``; otherwise it only proves "> band".
        self._dist: dict[tuple[int, int], tuple[int, int]] = {}
        #: exact distance from a member to its cluster's representative,
        #: when known (dropped for the absorbed side of a merge).
        self._rep_distance: dict[int, int] = {}
        # counters (exposed via stats() and the bound metrics):
        self._comparisons = 0
        self._avoided = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._exact_matches = 0
        self._unions = 0
        self._merges = 0
        self._new_clusters = 0
        self._none_items = 0
        self._metrics: object | None = None

    # -- metrics ------------------------------------------------------------

    def bind_metrics(self, registry) -> None:
        """Report ``quality.*`` series into an
        :class:`~repro.obs.metrics.MetricsRegistry` (series resolved
        once; the per-result path must stay cheap)."""
        self._metrics = registry
        self._m_comparisons = registry.counter("quality.comparisons")
        self._m_avoided = registry.counter("quality.comparisons_avoided")
        self._m_cache_hits = registry.counter("quality.distance_cache_hits")
        self._m_cache_misses = registry.counter("quality.distance_cache_misses")
        self._m_exact = registry.counter("quality.exact_matches")
        self._m_clusters = registry.gauge("quality.clusters")
        self._m_hit_ratio = registry.gauge("quality.distance_cache_hit_ratio")
        self._m_novelty = registry.histogram(
            "quality.novelty", boundaries=NOVELTY_BUCKETS
        )

    # -- union-find ---------------------------------------------------------

    def _find(self, x: int) -> int:
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def _union(self, cluster_root: int, key: int) -> None:
        ra, rb = self._find(cluster_root), self._find(key)
        if ra == rb:
            return
        # The earlier key stays the root, so a cluster's representative
        # — its first-seen member, §6.4 step 8 — survives merges.
        if rb < ra:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._unions += 1
        absorbed = self._members_of.pop(rb)
        for member in absorbed:
            # These memos measured the distance to the *old*
            # representative; drop them rather than mix frames.
            self._rep_distance.pop(member, None)
        self._members_of[ra].extend(absorbed)
        lo_a, hi_a = self._length_range[ra]
        lo_b, hi_b = self._length_range.pop(rb)
        self._length_range[ra] = (min(lo_a, lo_b), max(hi_a, hi_b))

    # -- distances ----------------------------------------------------------

    def _distance(self, a: int, b: int, band: int) -> int:
        """Banded distance between two distinct keys, through the cache.

        Exact when ``<= band``, otherwise any value ``> band``.  A
        cached entry is reused when it is exact, or when its band was at
        least as wide as the one requested (then it still proves
        "> band")."""
        pair = (a, b) if a < b else (b, a)
        cached = self._dist.get(pair)
        if cached is not None:
            value, cached_band = cached
            if value <= cached_band or cached_band >= band:
                self._cache_hits += 1
                if self._metrics is not None:
                    self._m_cache_hits.inc()
                return value
        self._cache_misses += 1
        self._comparisons += 1
        if self._metrics is not None:
            self._m_cache_misses.inc()
            self._m_comparisons.inc()
        value = levenshtein(self._keys[a], self._keys[b], upper_bound=band)
        self._dist[pair] = (value, band)
        return value

    def _skip(self, count: int = 1) -> None:
        self._avoided += count
        if self._metrics is not None:
            self._m_avoided.inc(count)

    # -- the streaming insert ----------------------------------------------

    def add(
        self, stack: "Stack | None", digest: str | None = None
    ) -> QualityUpdate:
        """Assign one newly executed result to a cluster, as it arrives.

        ``digest`` is an optional precomputed :func:`stack_digest` (the
        cluster fabric ships it in
        :class:`~repro.cluster.messages.TestReport` so the explorer
        never rebuilds it).
        """
        index = len(self._item_keys)
        if stack is None:
            self._item_keys.append(None)
            self._none_items += 1
            self._publish_gauges()
            return QualityUpdate(index=index, kind="none", novelty=1.0)

        stack = tuple(stack)
        key = None
        if digest is not None:
            key = self._digest_index.get(digest)
        if key is None:
            key = self._key_index.get(stack)
        if key is not None:
            # Exact-match fast path: zero edit distances.
            if digest is not None:
                # Replayed histories carry no wire digests; register
                # late-arriving ones so future probes stay O(1).
                self._digest_index.setdefault(digest, key)
            self._item_keys.append(key)
            self._exact_matches += 1
            self._skip(len(self._keys) - 1)
            if self._metrics is not None:
                self._m_exact.inc()
            novelty = self._discounted(1.0)
            self._finish_add(novelty)
            return QualityUpdate(index=index, kind="exact", novelty=novelty)

        key = len(self._keys)
        self._keys.append(stack)
        self._key_index[stack] = key
        if digest is not None:
            self._digest_index[digest] = key
        self._parent.append(key)
        self._lengths.append(len(stack))
        self._members_of[key] = [key]
        self._length_range[key] = (len(stack), len(stack))
        self._item_keys.append(key)
        unions_before = self._unions
        best_similarity = self._link(key, stack)
        unions = self._unions - unions_before
        merges = max(0, unions - 1)
        self._merges += merges
        if unions == 0:
            kind = "new"
            self._new_clusters += 1
        elif merges == 0:
            kind = "joined"
        else:
            kind = "bridged"
        novelty = self._discounted(best_similarity)
        self._finish_add(novelty)
        return QualityUpdate(
            index=index, kind=kind, novelty=novelty, merges=merges,
        )

    #: clusters at least this big get the wide-band representative probe
    #: (one band-2B comparison buying triangle prunes over the members);
    #: below it, direct band-B member comparisons are cheaper.
    _REP_PROBE_MIN_MEMBERS = 4

    def _link(self, key: int, stack: "Stack") -> float:
        """Union ``key`` with every cluster holding a member within
        ``max_distance``; returns the best similarity discovered.

        Iterates live *clusters*, not stacks: most are dismissed by the
        two-int length-range check, so the common-case cost is O(k) in
        the number of clusters, with edit distances only for the few
        whose representatives are within reach.
        """
        bound = self.max_distance
        length = len(stack)
        comparisons_before = self._comparisons
        # Naive online clustering compares the new stack against every
        # distinct stack seen so far; everything below that is pruning.
        naive = len(self._keys) - 1
        best_distance: int | None = None
        best_length = 0
        # Snapshot: _union pops absorbed roots while we iterate.
        for root, members in list(self._members_of.items()):
            if root == key:
                continue
            lo, hi = self._length_range[root]
            if length < lo - bound or length > hi + bound:
                # No member length within reach -> no member distance
                # within the bound (distance >= length difference).
                continue
            matched, distance, matched_length = self._probe_cluster(
                key, stack, root, members
            )
            if matched:
                self._union(root, key)
                if best_distance is None or distance < best_distance:
                    best_distance, best_length = distance, matched_length
        self._skip(naive - (self._comparisons - comparisons_before))
        final_root = self._find(key)
        if final_root != key:
            # Memoize the distance to the surviving representative when
            # it was measured exactly — fuel for future triangle prunes.
            cached = self._dist.get((final_root, key))
            if cached is not None and cached[0] <= cached[1]:
                self._rep_distance[key] = cached[0]
        if best_distance is None:
            return 0.0
        longest = max(length, best_length)
        if longest == 0:
            return 1.0
        return 1.0 - best_distance / longest

    def _probe_cluster(
        self,
        key: int,
        stack: "Stack",
        root: int,
        members: list[int],
    ) -> tuple[bool, int, int]:
        """Is any member of ``root``'s cluster within ``max_distance``?

        Returns ``(matched, distance, matched_member_length)``.  For
        large clusters the representative (the root itself — roots are
        always the first-seen member) is probed first with a band of
        ``2·bound``: by the triangle inequality, its exact distance
        combines with each member's memoized representative distance to
        rule members out without new edit distances.  A match
        short-circuits the whole cluster.
        """
        bound = self.max_distance
        lengths = self._lengths
        length = len(stack)
        if bound > 0 and len(members) >= self._REP_PROBE_MIN_MEMBERS:
            # The representative probe uses a band of 4·bound: wide
            # enough that a truncated probe (distance > 4·bound) rules
            # out every member within 3·bound of the representative,
            # and an exact value feeds the two-sided triangle bound.
            wide = 4 * bound
            rep_distance: int | None = None
            rep_gap = abs(lengths[root] - length)
            if rep_gap <= wide:
                probed = self._distance(key, root, wide)
                if probed <= bound:
                    return True, probed, lengths[root]
                if probed <= wide:
                    rep_distance = probed
                    rep_lower = probed
                else:
                    rep_lower = wide + 1
            else:
                # Never probed: the length gap alone bounds the
                # distance from below.
                rep_lower = rep_gap
            rep_memos = self._rep_distance
            for member in members:
                if member == root:
                    continue
                if abs(lengths[member] - length) > bound:
                    continue
                member_rep = rep_memos.get(member)
                if member_rep is None and abs(
                    lengths[member] - lengths[root]
                ) <= wide:
                    # Backfill a memo lost to a merge (or never taken):
                    # one member->representative distance now, through
                    # the cache, prunes this member on every later
                    # probe of the cluster.
                    probed_member = self._distance(member, root, wide)
                    if probed_member <= wide:
                        member_rep = rep_memos[member] = probed_member
                if member_rep is not None:
                    if rep_distance is not None:
                        if abs(rep_distance - member_rep) > bound:
                            # Triangle lower bound: out of range.
                            continue
                    elif rep_lower - member_rep > bound:
                        # d(key, root) >= rep_lower (truncated probe or
                        # length gap), so by the triangle inequality
                        # d(key, member) >= rep_lower - member_rep.
                        continue
                distance = self._distance(key, member, bound)
                if distance <= bound:
                    return True, distance, lengths[member]
            return False, 0, 0
        # Small cluster (or bound == 0): direct banded comparisons beat
        # the wide-band representative probe.
        for member in members:
            if abs(lengths[member] - length) > bound:
                continue
            distance = self._distance(key, member, bound)
            if distance <= bound:
                return True, distance, lengths[member]
        return False, 0, 0

    def _discounted(self, similarity: float) -> float:
        if similarity < self.similarity_threshold:
            return 1.0
        return max(0.0, min(1.0, 1.0 - similarity))

    def _finish_add(self, novelty: float) -> None:
        if self._metrics is not None:
            self._m_novelty.observe(novelty)
        self._publish_gauges()

    def _publish_gauges(self) -> None:
        if self._metrics is not None:
            self._m_clusters.set(self.cluster_count)
            probes = self._cache_hits + self._cache_misses
            if probes:
                self._m_hit_ratio.set(self._cache_hits / probes)

    # -- views --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._item_keys)

    @property
    def cluster_count(self) -> int:
        """Clusters so far (None items are singletons, as in the batch
        pass)."""
        return len(self._members_of) + self._none_items

    def novelty_ratio(self) -> float:
        """Fraction of results that were *not* exact repeats — the live
        non-redundancy figure surfaced on campaign scorecards."""
        if not self._item_keys:
            return 1.0
        return 1.0 - self._exact_matches / len(self._item_keys)

    def partition(self) -> "RedundancyClusters":
        """The current partition, identical to what the batch
        :func:`~repro.quality.clustering.cluster_stacks` produces over
        the same inputs in the same order."""
        from repro.quality.clustering import RedundancyClusters

        root_to_cluster: dict[int, int] = {}
        for key in range(len(self._keys)):
            root_to_cluster.setdefault(self._find(key), len(root_to_cluster))
        assignment: list[int] = [-1] * len(self._item_keys)
        next_id = len(root_to_cluster)
        for item, key in enumerate(self._item_keys):
            if key is None:
                assignment[item] = next_id
                next_id += 1
            else:
                assignment[item] = root_to_cluster[self._find(key)]
        members: dict[int, list[int]] = {}
        for item, cluster_id in enumerate(assignment):
            members.setdefault(cluster_id, []).append(item)
        clusters = tuple(
            tuple(sorted(members[cid])) for cid in range(next_id)
        )
        return RedundancyClusters(tuple(assignment), clusters)

    def stats(self) -> dict[str, object]:
        """Counters for round deltas, scorecards, and ``--profile``.

        ``comparisons_avoided`` counts candidate distinct stacks ruled
        out without an edit distance — by the exact-match fast path,
        length buckets, cluster short-circuits, or triangle bounds —
        relative to the naive online scan that compares every result
        against every distinct stack seen so far.
        """
        probes = self._cache_hits + self._cache_misses
        return {
            "items": len(self._item_keys),
            "distinct_stacks": len(self._keys),
            "clusters": self.cluster_count,
            "exact_matches": self._exact_matches,
            "comparisons": self._comparisons,
            "comparisons_avoided": self._avoided,
            "cache_hits": self._cache_hits,
            "cache_misses": self._cache_misses,
            "cache_hit_ratio": (self._cache_hits / probes) if probes else 0.0,
            "new_clusters": self._new_clusters,
            "merges": self._merges,
            "novelty_ratio": round(self.novelty_ratio(), 4),
        }

    def delta(self, round_number: int, previous: dict | None) -> QualityDelta:
        """The movement since a previous :meth:`stats` snapshot."""
        before = previous or {}
        current = self.stats()
        return QualityDelta(
            round=round_number,
            items=int(current["items"]) - int(before.get("items", 0)),
            new_clusters=(
                int(current["new_clusters"])
                - int(before.get("new_clusters", 0))
            ),
            merges=int(current["merges"]) - int(before.get("merges", 0)),
            clusters=int(current["clusters"]),
        )

    # -- checkpoint persistence ----------------------------------------------

    def state_digest(self) -> str:
        """Content digest of the partition (order-sensitive, like the
        checkpoint's ``history_digest``)."""
        payload = json.dumps(
            list(self.partition().assignment), separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def state_payload(self) -> dict[str, object]:
        """The versioned cluster-state summary persisted in checkpoint
        metadata.  The pairwise cache is *not* serialized — replay
        rebuilds it from the recorded stacks — so the payload stays
        small and the history digest untouched (digest-safe)."""
        return {
            "version": QUALITY_STATE_VERSION,
            "max_distance": self.max_distance,
            "similarity_threshold": self.similarity_threshold,
            "items": len(self._item_keys),
            "clusters": self.cluster_count,
            "digest": self.state_digest(),
        }

    def verify_state(self, persisted: dict[str, object]) -> None:
        """Check a replay-rebuilt engine against a persisted payload.

        Raises :class:`ValueError` on any mismatch — a resumed run
        whose rebuilt clusters differ from the recorded ones means the
        clustering code (or the checkpoint) drifted.
        """
        version = persisted.get("version")
        if version != QUALITY_STATE_VERSION:
            raise ValueError(
                f"cluster state version {version!r} is not readable by "
                f"this build (expects {QUALITY_STATE_VERSION})"
            )
        current: dict[str, object] = {
            "max_distance": self.max_distance,
            "similarity_threshold": self.similarity_threshold,
            "items": len(self._item_keys),
        }
        for field_name, value in current.items():
            recorded = persisted.get(field_name)
            if recorded != value:
                raise ValueError(
                    f"cluster state {field_name} mismatch: checkpoint "
                    f"recorded {recorded!r}, replay produced {value!r}"
                )
        if persisted.get("digest") != self.state_digest():
            raise ValueError(
                "cluster partition after replay does not match the "
                "checkpointed digest; the clustering code drifted"
            )
