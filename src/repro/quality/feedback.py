"""The §7.4 online redundancy feedback loop.

"When evaluating the fitness of a candidate injection scenario, AFEX
computes the edit distance between that scenario and all previous tests,
and uses this value to weigh the fitness on a linear scale (100%
similarity ends up zero-ing the fitness, while 0% similarity leaves the
fitness unmodified)."

:class:`RedundancyFeedback` is plugged into
:class:`~repro.core.search.FitnessGuidedSearch` as its
``fitness_weight`` hook.  It remembers the injection-point stack trace
of every observed test and scales each new test's fitness by
``1 - max_similarity`` to anything seen before.
"""

from __future__ import annotations

from repro.quality.clustering import Stack, stack_similarity
from repro.sim.process import RunResult

__all__ = ["RedundancyFeedback"]


class RedundancyFeedback:
    """Similarity-weighted fitness: novel stack traces keep full fitness."""

    def __init__(self) -> None:
        self._seen: list[Stack] = []
        self._seen_exact: set[Stack] = set()

    def __call__(self, fault, result: RunResult, impact: float) -> float:
        stack = result.injection_stack
        if stack is None:
            # No injection point — nothing to be redundant with.
            return impact
        stack = tuple(stack)
        if stack in self._seen_exact:
            return 0.0
        best = 0.0
        for previous in self._seen:
            similarity = stack_similarity(stack, previous)
            if similarity > best:
                best = similarity
                if best >= 1.0:
                    break
        self._seen.append(stack)
        self._seen_exact.add(stack)
        return impact * (1.0 - best)

    @property
    def distinct_traces(self) -> int:
        return len(self._seen)
