"""Result-quality metrics (§5): redundancy, precision, relevance.

* :mod:`~repro.quality.levenshtein` — the edit distance underlying
  redundancy detection;
* :mod:`~repro.quality.clustering` — equivalence classes of faults whose
  injection-point stack traces are near-identical;
* :mod:`~repro.quality.online` — the streaming clustering engine: each
  result is assigned to a cluster as it arrives (incremental union-find
  with memoized, pruned distance probes), yielding the live novelty
  signal sessions feed back into search;
* :mod:`~repro.quality.feedback` — the batch §7.4 loop: similarity to
  already-seen stack traces down-weights a candidate's fitness;
* :mod:`~repro.quality.precision` — impact precision = 1/Var across
  repeated trials of the same fault;
* :mod:`~repro.quality.relevance` — statistical environment models that
  weight faults by their probability of occurring in production (§7.5).
"""

from repro.quality.clustering import (
    RedundancyClusters,
    cluster_stacks,
    cluster_stacks_reference,
    stack_similarity,
)
from repro.quality.feedback import RedundancyFeedback
from repro.quality.levenshtein import levenshtein
from repro.quality.online import (
    OnlineClusters,
    QualityDelta,
    QualityUpdate,
    stack_digest,
)
from repro.quality.precision import ImpactPrecision, measure_precision
from repro.quality.relevance import EnvironmentModel
from repro.quality.report import ExplorationReport, ReportedFault, build_report

__all__ = [
    "EnvironmentModel",
    "ExplorationReport",
    "ImpactPrecision",
    "OnlineClusters",
    "QualityDelta",
    "QualityUpdate",
    "ReportedFault",
    "build_report",
    "RedundancyClusters",
    "RedundancyFeedback",
    "cluster_stacks",
    "cluster_stacks_reference",
    "levenshtein",
    "measure_precision",
    "stack_digest",
    "stack_similarity",
]
