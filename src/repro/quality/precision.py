"""Impact precision: how reproducible is a fault's impact (§5)?

"AFEX runs the same test n times ... and computes the variance
Var(I_S(φ)) of φ's impact across the n trials.  The impact precision is
1/Var(I_S(φ))."  Deterministic faults have infinite precision, reported
here as ``math.inf`` — developers are told these are the easy-to-debug,
fully reproducible failures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.sim.process import RunResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.fault import Fault

__all__ = ["ImpactPrecision", "measure_precision"]


@dataclass(frozen=True)
class ImpactPrecision:
    """Precision report for one fault across n trials."""

    trials: int
    impacts: tuple[float, ...]
    mean: float
    variance: float
    precision: float  # 1/variance; inf when deterministic

    @property
    def deterministic(self) -> bool:
        return math.isinf(self.precision)


def measure_precision(
    execute: Callable[["Fault", int], RunResult],
    fault: "Fault",
    metric: Callable[[RunResult], float],
    trials: int = 5,
) -> ImpactPrecision:
    """Re-run ``fault`` ``trials`` times and compute 1/Var of its impact.

    ``execute(fault, trial)`` must run the fault's test with the given
    trial number (which seeds the target's per-run RNG — see
    :func:`repro.sim.process.run_test`); ``metric`` should be *stateless*
    here (a stateful coverage component would make later trials look
    spuriously different).
    """
    if trials < 2:
        raise ValueError(f"precision needs >= 2 trials, got {trials}")
    impacts = tuple(metric(execute(fault, trial)) for trial in range(trials))
    mean = sum(impacts) / trials
    variance = sum((x - mean) ** 2 for x in impacts) / trials
    precision = math.inf if variance == 0.0 else 1.0 / variance
    return ImpactPrecision(
        trials=trials,
        impacts=impacts,
        mean=mean,
        variance=variance,
        precision=precision,
    )
