"""Observability for the exploration fabric: metrics, traces, profiles.

See ``docs/OBSERVABILITY.md`` for the metric name catalogue, the trace
schema, and how to read ``--profile`` output.
"""

from repro.obs.export import (
    parse_prometheus,
    profile_payload,
    render_table,
    to_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    series_id,
)
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    JsonLinesSink,
    RingBufferSink,
    Span,
    Tracer,
    assemble,
    read_jsonl,
    worker_spans,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "series_id",
    "Tracer",
    "Span",
    "RingBufferSink",
    "JsonLinesSink",
    "TRACE_SCHEMA_VERSION",
    "assemble",
    "read_jsonl",
    "worker_spans",
    "render_table",
    "to_prometheus",
    "parse_prometheus",
    "profile_payload",
]
