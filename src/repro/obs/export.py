"""Rendering a :class:`~repro.obs.metrics.MetricsRegistry` for humans,
scrapers, and benchmark harnesses.

Three views of the same registry:

* :func:`render_table` — the operator view, a fixed-width
  :class:`~repro.util.tables.TextTable` like every other AFEX report;
* :func:`to_prometheus` — Prometheus text exposition (``# TYPE`` lines,
  ``_total`` counters, ``_bucket``/``_sum``/``_count`` histograms) so a
  real scraper — or the CI ``metrics-smoke`` job via
  :func:`parse_prometheus` — can consume a run's metrics;
* :func:`profile_payload` — the machine-readable ``--profile`` summary
  written to ``BENCH_obs.json``, same shape as the other ``BENCH_*.json``
  artifacts (histogram p50/p95/p99 digests, counters, gauges).
"""

from __future__ import annotations

import re

from repro.obs.metrics import MetricsRegistry
from repro.util.tables import TextTable

__all__ = [
    "render_table",
    "to_prometheus",
    "parse_prometheus",
    "profile_payload",
]

#: exported metric names get this prefix in Prometheus exposition.
PROMETHEUS_PREFIX = "afex_"

_SERIES = re.compile(r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
                     r"(?P<labels>\{[^}]*\})?$")


def _split_series(series: str) -> tuple[str, str]:
    """``'a.b{k="v"}'`` → ``('a.b', '{k="v"}')`` (labels may be '')."""
    brace = series.find("{")
    if brace < 0:
        return series, ""
    return series[:brace], series[brace:]


def _prom_name(dotted: str, suffix: str = "") -> str:
    return PROMETHEUS_PREFIX + dotted.replace(".", "_").replace("-", "_") + suffix


def render_table(registry: MetricsRegistry, title: str = "metrics") -> str:
    """The whole registry as one operator-facing text table."""
    snapshot = registry.snapshot()
    table = TextTable(["series", "kind", "value", "p50", "p95", "p99"],
                      title=title)
    for series, value in snapshot["counters"].items():
        table.add_row([series, "counter", value, "-", "-", "-"])
    for series, value in snapshot["gauges"].items():
        table.add_row([series, "gauge", f"{value:.4g}", "-", "-", "-"])
    for series, digest in snapshot["histograms"].items():
        if digest["count"] == 0:
            table.add_row([series, "histogram", "0 obs", "-", "-", "-"])
            continue
        table.add_row([
            series, "histogram", f"{digest['count']} obs",
            f"{digest['p50']:.4g}", f"{digest['p95']:.4g}",
            f"{digest['p99']:.4g}",
        ])
    return table.render()


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format (version 0.0.4).

    Dotted series names become underscore names under the ``afex_``
    prefix; counters gain the conventional ``_total`` suffix;
    histograms emit cumulative ``_bucket`` lines with the standard
    ``le`` label plus ``_sum`` and ``_count``.
    """
    snapshot = registry.snapshot()
    lines: list[str] = []
    typed: set[str] = set()

    def announce(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for series, value in snapshot["counters"].items():
        dotted, labels = _split_series(series)
        name = _prom_name(dotted, "_total")
        announce(name, "counter")
        lines.append(f"{name}{labels} {value}")
    for series, value in snapshot["gauges"].items():
        dotted, labels = _split_series(series)
        name = _prom_name(dotted)
        announce(name, "gauge")
        lines.append(f"{name}{labels} {_format_value(value)}")
    for series, digest in snapshot["histograms"].items():
        dotted, labels = _split_series(series)
        name = _prom_name(dotted)
        announce(name, "histogram")
        label_body = labels[1:-1] if labels else ""

        def with_le(bound: str, extra: str = label_body) -> str:
            le = f'le="{bound}"'
            return "{" + (f"{extra},{le}" if extra else le) + "}"

        cumulative = 0
        for bound, bucket_count in zip(
            digest["boundaries"], digest["bucket_counts"]
        ):
            cumulative += bucket_count
            lines.append(
                f"{name}_bucket{with_le(_format_value(bound))} {cumulative}"
            )
        cumulative += digest["bucket_counts"][-1]
        lines.append(f"{name}_bucket{with_le('+Inf')} {cumulative}")
        lines.append(f"{name}_sum{labels} {_format_value(digest['sum'])}")
        lines.append(f"{name}_count{labels} {digest['count']}")
    return "\n".join(lines) + "\n"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def parse_prometheus(text: str) -> dict[str, dict]:
    """Parse exposition text back into ``{name: {"type": ...,
    "samples": {series: value}}}``.

    Only the subset :func:`to_prometheus` emits is supported — enough
    for the CI smoke step to assert the export round-trips and the
    core series exist, without a client library dependency.
    """
    metrics: dict[str, dict] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            metrics.setdefault(name, {"type": kind, "samples": {}})
            continue
        if line.startswith("#"):
            continue
        series, _, raw = line.rpartition(" ")
        if not series:
            raise ValueError(f"unparseable exposition line: {line!r}")
        base, _ = _split_series(series)
        if not _SERIES.match(series):
            raise ValueError(f"malformed series name: {series!r}")
        # bucket/sum/count samples belong to their histogram family.
        family = base
        for suffix in ("_bucket", "_sum", "_count"):
            stripped = base.removesuffix(suffix)
            if stripped != base and stripped in metrics:
                family = stripped
                break
        metrics.setdefault(family, {"type": "untyped", "samples": {}})
        metrics[family]["samples"][series] = float(raw)
    return metrics


def profile_payload(
    registry: MetricsRegistry, meta: dict[str, object] | None = None
) -> dict[str, object]:
    """The ``--profile`` summary, ``BENCH_obs.json``-compatible.

    Histograms are reduced to their :meth:`~repro.obs.metrics.
    Histogram.summary` digests (count/sum/min/max/mean/p50/p95/p99);
    counters and gauges are carried whole.  ``meta`` is the run
    configuration (target, fabric, iterations) recorded alongside.
    """
    snapshot = registry.snapshot()
    return {
        "benchmark": "observability",
        "schema": 1,
        "meta": dict(meta or {}),
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "histograms": {
            series: {
                key: value for key, value in digest.items()
                if key not in ("boundaries", "bucket_counts")
            }
            for series, digest in snapshot["histograms"].items()
        },
    }
