"""Structured tracing: one exploration round, reconstructable end to end.

A trace is the story of one exploration: a ``round`` span per
generation, with ``propose`` / ``dispatch`` / ``verdict`` children on
the explorer side and ``execute`` / ``inject`` children on the worker
side — propose → cache lookup → dispatch → inject → verdict, the §6.1
pipeline made visible.  Span events are plain dicts (JSON lines on
disk, a bounded ring buffer in memory), so a recorded trace can be
replayed and checked: every span names its trace, its parent, and its
start/end, and :func:`assemble` rebuilds the tree.

Cross-process spans: the explorer threads its ``trace_id`` and the
dispatch span's id through :class:`~repro.cluster.messages.TestRequest`;
a worker (possibly in another process, with an unrelated clock) builds
its span payloads locally — deterministic ids derived from the request
id — and ships them back inside the
:class:`~repro.cluster.messages.TestReport`.  The explorer absorbs them
into its own sinks via :meth:`Tracer.emit`.  Worker timestamps are
worker-local (process clocks are not comparable); nesting across the
boundary is by parent id, not by time, and :func:`assemble` treats it so.

Ids are deterministic — a trace id is fixed per tracer, span ids count
up — so two identical runs produce structurally identical traces (only
timestamps differ).  ``TRACE_SCHEMA_VERSION`` is recorded on every
event and in checkpoint metadata next to the checkpoint schema version.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from collections.abc import Callable, Iterable
from pathlib import Path

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Span",
    "RingBufferSink",
    "JsonLinesSink",
    "Tracer",
    "assemble",
    "read_jsonl",
]

#: bump on any incompatible change to the span event schema (recorded
#: on every event and alongside CHECKPOINT_VERSION in checkpoint meta).
TRACE_SCHEMA_VERSION = 1


class RingBufferSink:
    """Bounded in-memory sink: always on, never grows without bound."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[dict] = deque(maxlen=capacity)
        #: total events ever emitted (>= len(events) once wrapped).
        self.emitted = 0

    def emit(self, event: dict) -> None:
        self._events.append(event)
        self.emitted += 1

    @property
    def events(self) -> list[dict]:
        return list(self._events)

    def close(self) -> None:  # sink protocol symmetry
        pass


class JsonLinesSink:
    """Appends one JSON object per line to a file (created lazily)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = None

    def emit(self, event: dict) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def read_jsonl(path: str | Path) -> list[dict]:
    """Load every span event a :class:`JsonLinesSink` wrote."""
    events = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


class Span:
    """One live span; emitted to the sinks when it closes."""

    __slots__ = ("tracer", "trace_id", "span_id", "parent_id", "name",
                 "attrs", "start", "end")

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        name: str,
        attrs: dict[str, object],
    ) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.end = 0.0

    def set(self, **attrs: object) -> None:
        """Attach attributes to a span that is already open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self.start = self.tracer.clock()
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        self.end = self.tracer.clock()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.tracer._pop(self)
        self.tracer.emit(self.as_event())

    def as_event(self) -> dict:
        event = {
            "v": TRACE_SCHEMA_VERSION,
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
        }
        if self.attrs:
            event["attrs"] = self.attrs
        return event


class Tracer:
    """Emits structured span events for one exploration.

    ``span()`` opens a child of the current thread's innermost open
    span (explicit ``parent=`` overrides, which is how worker-side
    spans attach to a dispatch that lives in another process).  Span
    ids are a simple shared counter — deterministic run to run — and
    the clock is injectable for exact tests.
    """

    def __init__(
        self,
        sinks: Iterable[object] | None = None,
        clock: Callable[[], float] = time.perf_counter,
        trace_id: str = "t0",
    ) -> None:
        self.sinks = list(sinks) if sinks is not None else [RingBufferSink()]
        self.clock = clock
        self.trace_id = trace_id
        # next(count) is a single C-level op — thread-safe under the GIL
        # without a lock, which matters at one id per span on hot paths.
        self._ids = itertools.count()
        self._stack = threading.local()

    # -- span lifecycle --------------------------------------------------------

    def span(
        self,
        name: str,
        parent: str | None = None,
        **attrs: object,
    ) -> Span:
        span_id = f"s{next(self._ids)}"
        if parent is None:
            stack = getattr(self._stack, "spans", None)
            parent = stack[-1].span_id if stack else None
        return Span(self, self.trace_id, span_id, parent, name, attrs)

    @property
    def current_span(self) -> Span | None:
        stack = getattr(self._stack, "spans", None)
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        stack = getattr(self._stack, "spans", None)
        if stack is None:
            stack = self._stack.spans = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._stack, "spans", [])
        if stack and stack[-1] is span:
            stack.pop()

    # -- event plumbing --------------------------------------------------------

    def emit(self, event: dict) -> None:
        """Forward a span event (local or foreign) to every sink."""
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


def worker_spans(
    trace_id: str,
    parent_id: str | None,
    request_id: int,
    manager: str,
    start: float,
    end: float,
    injected_function: str | None = None,
    injected_errno: str | None = None,
) -> tuple[dict, ...]:
    """Span payloads a node manager ships back inside a report.

    Workers cannot share the explorer's :class:`Tracer` (they may live
    in another process), so their span ids are derived from the request
    id — globally unique within a trace because request ids are — and
    their timestamps are worker-local.  The ``execute`` span is a child
    of the explorer's dispatch span; the ``inject`` span (present only
    when a fault actually fired) is a child of ``execute`` and is a
    point event at the worker's clock (the simulator does not timestamp
    the interception itself).
    """
    execute_id = f"w{request_id}"
    execute = {
        "v": TRACE_SCHEMA_VERSION,
        "trace": trace_id,
        "span": execute_id,
        "parent": parent_id,
        "name": "execute",
        "start": start,
        "end": end,
        "attrs": {"manager": manager, "request_id": request_id},
    }
    if injected_function is None:
        return (execute,)
    inject = {
        "v": TRACE_SCHEMA_VERSION,
        "trace": trace_id,
        "span": f"w{request_id}i",
        "parent": execute_id,
        "name": "inject",
        "start": end,
        "end": end,
        "attrs": {
            "function": injected_function,
            "errno": injected_errno,
            "request_id": request_id,
        },
    }
    return (execute, inject)


def assemble(events: Iterable[dict]) -> dict[str, dict]:
    """Rebuild span trees from recorded events.

    Returns ``{trace_id: {"roots": [node, ...], "spans": {span_id:
    node}}}`` where each node is ``{"event": ..., "children": [...]}``;
    children are ordered by start time (worker-local clocks order
    correctly *within* one worker; cross-parent order is by id).  An
    event whose parent never appears is treated as a root — a truncated
    ring buffer must still assemble.
    """
    traces: dict[str, dict] = {}
    for event in events:
        trace = traces.setdefault(
            event["trace"], {"roots": [], "spans": {}}
        )
        trace["spans"][event["span"]] = {"event": event, "children": []}
    for trace in traces.values():
        spans = trace["spans"]
        for node in spans.values():
            parent = node["event"].get("parent")
            if parent is not None and parent in spans:
                spans[parent]["children"].append(node)
            else:
                trace["roots"].append(node)
        for node in spans.values():
            node["children"].sort(
                key=lambda n: (n["event"]["start"], n["event"]["span"])
            )
        trace["roots"].sort(
            key=lambda n: (n["event"]["start"], n["event"]["span"])
        )
    return traces
