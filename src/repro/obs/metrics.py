"""Zero-dependency metrics primitives: counters, gauges, histograms.

AFEX's evaluation is all quantified search quality — per-round fitness,
machine utilization, cache effectiveness (§5, §7.7) — yet everything the
reproduction measured between "dispatch" and "final scorecard" used to
be thrown away.  A :class:`MetricsRegistry` is the single place every
layer reports into: the exploration session (fitness, proposals/s), the
execution fabrics (dispatch latency, queue depth, retries by cause),
the result cache (hits/misses/evictions), and the simulated libc
(injected calls by function and errno).

Design constraints, in order:

* **zero dependencies** — plain dicts and lists, no prometheus_client;
* **cheap on the hot path** — a counter increment is one dict lookup
  and one add; a histogram observation is a linear bucket scan over a
  dozen boundaries.  The ≤5 % instrumentation-overhead budget enforced
  by ``benchmarks/test_parallel_fabric.py`` is the contract;
* **exact under test** — the clock is injectable, so timer-based
  histograms observe precisely the values a test dictates and the
  percentile math (documented on :meth:`Histogram.percentile`) is
  checkable to the decimal.

Series are identified by a dotted name plus optional labels
(``registry.counter("sim.injected_calls", function="malloc",
errno="ENOMEM")``); the formatted identity is
``name{k="v",...}`` with labels sorted, so snapshots are stable.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from collections.abc import Callable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "series_id",
]

#: default histogram boundaries for latencies in seconds: 100 µs .. 30 s,
#: roughly geometric — wide enough for a whole dispatch round, fine
#: enough to separate a warm cache hit from a simulator execution.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def series_id(name: str, labels: dict[str, object] | None = None) -> str:
    """The canonical identity of one series: ``name{k="v",...}``.

    Labels are sorted by key so the same (name, labels) pair always
    formats identically — snapshot keys, Prometheus lines, and test
    expectations all agree.
    """
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, utilization)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """A fixed-bucket histogram with exact, documented percentile math.

    ``boundaries`` are the inclusive upper bounds of the first
    ``len(boundaries)`` buckets; one implicit overflow bucket catches
    everything above the last boundary.  Observations update a count, a
    sum, a min/max, and the matching bucket counter — O(log n) in the
    boundary count via bisection.

    :meth:`percentile` uses the standard exposition-format estimate:
    find the first bucket whose cumulative count reaches
    ``ceil(p/100 * count)`` and interpolate linearly inside it between
    its lower and upper bound by rank.  With an injected clock the
    observations are exact, so the estimate is a pure deterministic
    function tests can compute independently.
    """

    __slots__ = ("name", "boundaries", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(
        self,
        name: str,
        boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket boundary")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"bucket boundaries must strictly increase: {bounds}")
        self.name = name
        self.boundaries = bounds
        #: per-bucket observation counts; index len(boundaries) = overflow.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimate the p-th percentile (p in [0, 100]) from the buckets.

        The rank is ``ceil(p/100 * count)`` (1-based, clamped to at
        least 1); the answer lies in the first bucket whose cumulative
        count reaches that rank, linearly interpolated between the
        bucket's lower and upper bound by the rank's position among the
        bucket's own observations.  The overflow bucket reports the
        observed maximum (there is no upper bound to interpolate
        toward); an empty histogram reports 0.0.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            return 0.0
        rank = max(1, -(-int(p * self.count) // 100))  # ceil(p/100 * count)
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                if index == len(self.boundaries):
                    return self.max
                lower = self.boundaries[index - 1] if index else 0.0
                upper = self.boundaries[index]
                within = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * within
            cumulative += bucket_count
        return self.max  # pragma: no cover - unreachable when count > 0

    def summary(self) -> dict[str, float | int]:
        """The machine-readable digest ``BENCH_obs.json`` publishes."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class _Timer:
    """Context manager observing elapsed clock time into a histogram."""

    __slots__ = ("_histogram", "_clock", "_started")

    def __init__(self, histogram: Histogram, clock: Callable[[], float]) -> None:
        self._histogram = histogram
        self._clock = clock
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = self._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(self._clock() - self._started)


class MetricsRegistry:
    """Every layer's shared sink for counters, gauges, and histograms.

    Series are created on first use and live for the registry's
    lifetime.  ``clock`` feeds :meth:`timer` and is injectable so tests
    observe exact durations.  **Collectors** are callables invoked just
    before every :meth:`snapshot` — components whose state already
    lives elsewhere (a :class:`~repro.core.cache.ResultCache`'s hit
    counters, a fabric's :class:`~repro.cluster.fault_tolerance.
    FabricHealth`) register one and publish gauges lazily instead of
    paying per-operation increments.

    Thread-safe for series *creation*; increments on a live series are
    plain int/float ops (atomic enough under the GIL for counters whose
    consumers tolerate off-by-an-increment reads mid-run — snapshots
    are taken between rounds).
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []
        self._lock = threading.Lock()

    # -- series access ---------------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = series_id(name, labels)
        counter = self._counters.get(key)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(key, Counter(key))
        return counter

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = series_id(name, labels)
        gauge = self._gauges.get(key)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(key, Gauge(key))
        return gauge

    def histogram(
        self,
        name: str,
        boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: object,
    ) -> Histogram:
        key = series_id(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    key, Histogram(key, boundaries)
                )
        return histogram

    def timer(self, name: str, **labels: object) -> _Timer:
        """``with registry.timer("fabric.dispatch_seconds"): ...``"""
        return _Timer(self.histogram(name, **labels), self.clock)

    # -- collectors ------------------------------------------------------------

    def register_collector(
        self, collector: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Run ``collector(self)`` before every snapshot/export."""
        self._collectors.append(collector)

    def collect(self) -> None:
        for collector in self._collectors:
            collector(self)

    # -- snapshots -------------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """A JSON-able view of every series, with stable key order.

        Counter values and histogram bucket counts are deterministic
        for a deterministic workload; histogram sums of *timed*
        observations are wall-clock and therefore not.  Checkpoint
        metadata embeds this whole structure at round boundaries.
        """
        self.collect()
        return {
            "counters": {
                k: self._counters[k].value for k in sorted(self._counters)
            },
            "gauges": {
                k: self._gauges[k].value for k in sorted(self._gauges)
            },
            "histograms": {
                k: {
                    "boundaries": list(h.boundaries),
                    "bucket_counts": list(h.bucket_counts),
                    **h.summary(),
                }
                for k, h in sorted(self._histograms.items())
            },
        }

    def counters(self) -> dict[str, int]:
        """Counter values only — the fully deterministic slice."""
        return {k: self._counters[k].value for k in sorted(self._counters)}
