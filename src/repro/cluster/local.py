"""Execution fabrics: thread-pool and virtual-time clusters.

:class:`LocalCluster` runs a batch of requests across node managers with
a thread pool — one in-flight request per manager, round-robin
assignment, preserving the one-machine-one-manager model of §6.

:class:`VirtualCluster` executes the same work serially but accounts a
*virtual clock* per node: each test's measured (or modelled) cost is
added to the least-loaded node, exactly as an idle-node scheduler would
place it.  Because AFEX tests are independent ("embarrassing
parallelism", §6.1), the virtual makespan is a faithful model of real
cluster wall-clock — this substitutes for the paper's 1-14 node EC2
measurements (§7.7), which we cannot rent offline.
"""

from __future__ import annotations

import heapq
import random
import time
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor

from repro.cluster.fault_tolerance import FabricHealth, RetryPolicy
from repro.cluster.manager import NodeManager
from repro.cluster.messages import TestReport, TestRequest
from repro.errors import ClusterError

__all__ = ["LocalCluster", "VirtualCluster"]


class LocalCluster:
    """Thread-pool fabric: real concurrent execution of a request batch.

    With a :class:`~repro.cluster.fault_tolerance.RetryPolicy` attached,
    a manager that raises mid-request no longer poisons the whole batch:
    the request is retried — with backoff — on the next manager
    round-robin, the failure is tallied in :attr:`health`, and only
    after the policy's attempt bound does the error surface.  Without a
    policy the historical fail-fast behaviour is preserved exactly.
    """

    def __init__(
        self,
        managers: list[NodeManager],
        retry_policy: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if not managers:
            raise ClusterError("a cluster needs at least one node manager")
        names = [m.name for m in managers]
        if len(set(names)) != len(names):
            raise ClusterError(f"duplicate manager names: {names}")
        self.managers = list(managers)
        self.retry_policy = retry_policy
        self.health = FabricHealth()
        self._sleep = sleep
        self._retry_rng = random.Random(0)

    def __len__(self) -> int:
        return len(self.managers)

    def run_batch(self, requests: list[TestRequest]) -> list[TestReport]:
        """Execute a batch, one thread per manager, round-robin placement.

        Reports come back in request order regardless of completion
        order, so the explorer's bookkeeping stays deterministic.
        """
        if not requests:
            return []
        self.health.dispatches += 1
        self.health.requests += len(requests)
        assignments: list[list[TestRequest]] = [[] for _ in self.managers]
        for i, request in enumerate(requests):
            assignments[i % len(self.managers)].append(request)

        reports: dict[int, TestReport] = {}
        with ThreadPoolExecutor(max_workers=len(self.managers)) as pool:
            futures = [
                pool.submit(self._run_on, index, batch)
                for index, batch in enumerate(assignments)
                if batch
            ]
            for future in futures:
                for report in future.result():
                    reports[report.request_id] = report
        self.health.completed += len(reports)
        return [reports[r.request_id] for r in requests]

    def _run_on(self, index: int, batch: list[TestRequest]) -> list[TestReport]:
        return [self._execute_resiliently(index, request) for request in batch]

    def _execute_resiliently(
        self, index: int, request: TestRequest
    ) -> TestReport:
        """One request, retried across managers when a policy allows it."""
        if self.retry_policy is None:
            return self.managers[index].execute(request)
        attempt = 0
        while True:
            manager = self.managers[(index + attempt) % len(self.managers)]
            try:
                return manager.execute(request)
            except Exception as exc:
                attempt += 1
                self.health.worker_deaths += 1
                if attempt >= self.retry_policy.max_attempts:
                    raise ClusterError(
                        f"request #{request.request_id} failed on "
                        f"{attempt} managers, last was {manager.name!r}: "
                        f"{exc!r}"
                    ) from exc
                self.health.record_retry("error")
                delay = self.retry_policy.delay_for(attempt, self._retry_rng)
                if delay > 0:
                    self._sleep(delay)


class VirtualCluster:
    """Virtual-time fabric: deterministic model of an N-node cluster.

    Tests run serially in this process; their measured costs are
    assigned to the least-loaded virtual node.  :attr:`makespan` is the
    modelled wall-clock of the whole exploration, and
    :meth:`speedup_over_serial` is what the §7.7 scalability bench
    reports.
    """

    def __init__(self, managers: list[NodeManager]) -> None:
        if not managers:
            raise ClusterError("a cluster needs at least one node manager")
        self.managers = list(managers)
        #: virtual busy-time per node, seconds.
        self.node_clocks = [0.0] * len(managers)
        self.total_cost = 0.0
        # Least-loaded placement as a heap of (clock, node) instead of an
        # O(n) min() scan per request: ties break on the lower node index
        # in both, so placement — and therefore makespan/speedup — is
        # unchanged, but a 10k-test run on a wide cluster no longer pays
        # O(tests * nodes) in the scheduler.
        self._idle_heap = [(0.0, node) for node in range(len(managers))]

    def __len__(self) -> int:
        return len(self.managers)

    def run_batch(self, requests: list[TestRequest]) -> list[TestReport]:
        reports = []
        for request in requests:
            clock, node = heapq.heappop(self._idle_heap)
            report = self.managers[node].execute(request)
            clock += report.cost
            self.node_clocks[node] = clock
            self.total_cost += report.cost
            heapq.heappush(self._idle_heap, (clock, node))
            reports.append(report)
        return reports

    @property
    def makespan(self) -> float:
        """Modelled wall-clock: the busiest node's virtual clock."""
        return max(self.node_clocks)

    def speedup_over_serial(self) -> float:
        """How much faster than one node this cluster would have been."""
        if self.makespan == 0.0:
            return 1.0
        return self.total_cost / self.makespan
