"""Process-pool execution fabric: real multi-core fault exploration.

The simulated world is pure Python, so the thread-pool fabric
(:class:`~repro.cluster.local.LocalCluster`) serializes on the GIL and
buys essentially no wall-clock on CPU-bound targets.  AFEX's exploration
is embarrassingly parallel (§6.1) — every test is an independent,
hermetic execution — so the natural fabric is one *process* per node,
which is exactly how the paper's prototype ran on 1–14 EC2 machines
(§7.7).

:class:`ProcessPoolCluster` plays that role on one machine:

* worker processes are long-lived and **warm** — each builds its target
  (and the target's test suite) once, lazily, on its first request, and
  reuses it for every subsequent batch;
* requests are dispatched with a **chunked round-robin** scheduler: one
  future per worker per batch, so the per-test IPC cost is amortized
  over a whole chunk (simulated tests run in ~0.2 ms; per-request
  round-trips would drown the speedup in pickling);
* reports return **in request order** regardless of completion order,
  keeping explorer bookkeeping deterministic, same as the other fabrics;
* the pool is **fault-tolerant**: each chunk future is bounded by an
  optional ``dispatch_deadline``, a chunk lost to a dead or hung worker
  is retried with exponential backoff under the
  :class:`~repro.cluster.fault_tolerance.RetryPolicy`, dead workers are
  replaced by rebuilding the executor, and every recovery action is
  tallied in a :class:`~repro.cluster.fault_tolerance.FabricHealth`
  record;
* the dispatch path is **serialize-once**: the target factory is
  pickled a single time at construction (the picklability probe's
  bytes are cached per factory and shipped verbatim as the worker-init
  payload), and each batch's chunks are pickled once and submitted as
  bytes — reused unchanged when a chunk retries — so neither the
  factory nor a retried chunk is ever re-serialized;
* construction takes a zero-argument **target factory** (e.g.
  ``functools.partial(target_by_name, "minidb")``) because target
  instances themselves close over test bodies and cannot be pickled;
  when the factory itself is unpicklable (a lambda, a closure), or the
  retry budget is exhausted, the cluster degrades **gracefully to an
  in-process LocalCluster** — same results, no parallelism — warning
  exactly once when the degradation engages.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import random
import time
import warnings
import weakref
from collections.abc import Callable
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout

from repro.cluster.fault_tolerance import (
    FabricHealth,
    HeartbeatMonitor,
    RetryPolicy,
)
from repro.cluster.local import LocalCluster
from repro.cluster.manager import NodeManager
from repro.cluster.messages import TestReport, TestRequest
from repro.errors import ClusterError
from repro.sim.libc import DEFAULT_STEP_BUDGET
from repro.sim.testsuite import Target

__all__ = ["ProcessPoolCluster"]

TargetFactory = Callable[[], Target]

#: per-worker-process state: the factory and the lazily-built manager.
_WORKER_STATE: dict[str, object] = {}

#: cached picklability probes: factory → its encoded bytes.  The probe
#: doubles as the worker-initialization payload, so a factory shared by
#: many fabrics (a campaign constructs one pool per job) is serialized
#: exactly once per process lifetime.  Weak keys keep the cache from
#: pinning factories (and the targets they close over) alive.
_FACTORY_BYTES: "weakref.WeakKeyDictionary[object, bytes]" = (
    weakref.WeakKeyDictionary()
)


def _encode_factory(factory: TargetFactory) -> bytes:
    """The factory's pickled bytes, cached across constructions.

    Raises whatever :func:`pickle.dumps` raises for an unpicklable
    factory — the caller turns that into the graceful in-process
    fallback.
    """
    try:
        cached = _FACTORY_BYTES.get(factory)
    except TypeError:  # unhashable factory: probe without caching
        cached = None
    if cached is not None:
        return cached
    data = pickle.dumps(factory, protocol=pickle.HIGHEST_PROTOCOL)
    try:
        _FACTORY_BYTES[factory] = data
    except TypeError:  # not weak-referenceable (e.g. a plain function is;
        pass           # some callables are not) — probe still succeeded
    return data


def _worker_init(
    factory_bytes: bytes,
    step_budget: int,
    injector_bytes: bytes | None = None,
) -> None:
    """Runs once in each worker process; defers the expensive build.

    Receives the factory pre-pickled (the construction-time probe's
    bytes, shipped verbatim) so the parent never re-serializes it —
    neither per dispatch nor per pool rebuild.  ``injector_bytes``
    optionally carries a pickled zero-argument injector factory (e.g. a
    fault-model stack); ``None`` keeps the default libfi injector.
    """
    _WORKER_STATE["factory"] = pickle.loads(factory_bytes)
    _WORKER_STATE["step_budget"] = step_budget
    _WORKER_STATE["injector_factory"] = (
        pickle.loads(injector_bytes) if injector_bytes is not None else None
    )
    _WORKER_STATE["manager"] = None


def _worker_run_chunk(packed: bytes) -> bytes:
    """Execute one pre-packed chunk on this worker's warm node manager.

    Takes the chunk as pickled bytes (packed once by the parent and
    reused verbatim across retries) and returns the reports the same
    way, so the executor's own argument/result pickling degenerates to
    a byte-string copy.
    """
    requests: list[TestRequest] = pickle.loads(packed)
    manager = _WORKER_STATE.get("manager")
    if manager is None:
        factory: TargetFactory = _WORKER_STATE["factory"]  # type: ignore[assignment]
        injector_factory = _WORKER_STATE.get("injector_factory")
        manager = NodeManager(
            f"proc-{os.getpid()}",
            factory(),
            injector=injector_factory() if callable(injector_factory) else None,
            step_budget=int(_WORKER_STATE["step_budget"]),  # type: ignore[arg-type]
        )
        _WORKER_STATE["manager"] = manager
    return pickle.dumps(
        [manager.execute(request) for request in requests],
        protocol=pickle.HIGHEST_PROTOCOL,
    )


class ProcessPoolCluster:
    """Multi-process fabric: one warm worker process per virtual node."""

    def __init__(
        self,
        target_factory: TargetFactory,
        workers: int | None = None,
        step_budget: int = DEFAULT_STEP_BUDGET,
        name: str = "procpool",
        mp_context: str | None = None,
        retry_policy: RetryPolicy | None = None,
        dispatch_deadline: float | None = None,
        sleep: Callable[[float], None] = time.sleep,
        injector_factory: Callable[[], object] | None = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ClusterError(f"a process pool needs >= 1 worker, got {workers}")
        if dispatch_deadline is not None and dispatch_deadline <= 0:
            raise ClusterError(
                f"dispatch deadline must be positive, got {dispatch_deadline}"
            )
        self.target_factory = target_factory
        self.injector_factory = injector_factory
        self.workers = workers or (os.cpu_count() or 1)
        self.step_budget = step_budget
        self.name = name
        self.retry_policy = retry_policy or RetryPolicy()
        self.dispatch_deadline = dispatch_deadline
        self.health = FabricHealth()
        self.monitor = HeartbeatMonitor()
        self._sleep = sleep
        self._retry_rng = random.Random(0)
        self._mp_context = mp_context
        self._executor: ProcessPoolExecutor | None = None
        self._fallback: LocalCluster | None = None
        self._fallback_warned = False
        #: why the fallback engaged, for operator-facing diagnostics.
        self.fallback_reason: str | None = None
        #: cumulative seconds spent pickling dispatch chunks — the
        #: pool's serialization cost, exported via :meth:`bind_metrics`.
        self.encode_seconds = 0.0
        #: the factory's pickled bytes, probed once (and cached across
        #: constructions) — shipped to workers as the init payload.
        self._factory_bytes: bytes | None = None
        self._injector_bytes: bytes | None = None
        try:
            self._factory_bytes = _encode_factory(target_factory)
            if injector_factory is not None:
                self._injector_bytes = pickle.dumps(
                    injector_factory, protocol=pickle.HIGHEST_PROTOCOL
                )
        except Exception as exc:
            self.fallback_reason = (
                f"target factory is not picklable ({exc!r}); "
                "running in-process on a thread-pool fabric"
            )

    def __len__(self) -> int:
        return self.workers

    @property
    def is_degraded(self) -> bool:
        """True when the cluster fell back to in-process execution."""
        return self.fallback_reason is not None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            if self._mp_context is not None:
                context = multiprocessing.get_context(self._mp_context)
            elif "fork" in multiprocessing.get_all_start_methods():
                # fork inherits the imported simulator for free; spawn
                # pays a full re-import per worker.
                context = multiprocessing.get_context("fork")
            else:
                context = multiprocessing.get_context()
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=_worker_init,
                initargs=(self._factory_bytes, self.step_budget,
                          self._injector_bytes),
            )
        return self._executor

    def _replace_workers(self) -> None:
        """Tear the pool down and let the next dispatch rebuild it.

        A worker that died took its siblings' executor down with it
        (that is how :class:`ProcessPoolExecutor` reports a crash), and
        a worker that hangs holds its slot forever — either way the
        only safe recovery is fresh processes.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            self.health.worker_replacements += 1

    def _ensure_fallback(self) -> LocalCluster:
        if self._fallback is None:
            if not self._fallback_warned:
                self._fallback_warned = True
                self.health.fallbacks += 1
                warnings.warn(
                    f"{self.name}: degrading to in-process execution — "
                    f"{self.fallback_reason or 'process pool unavailable'}",
                    stacklevel=3,
                )
            self._fallback = LocalCluster([
                NodeManager(
                    f"{self.name}-fallback{i}",
                    self.target_factory(),
                    injector=(self.injector_factory()
                              if self.injector_factory is not None else None),
                    step_budget=self.step_budget,
                )
                for i in range(self.workers)
            ])
        return self._fallback

    def run_batch(self, requests: list[TestRequest]) -> list[TestReport]:
        """Execute a batch across the pool, chunked round-robin.

        Reports come back in request order regardless of worker
        completion order, so explorer bookkeeping stays deterministic.
        A chunk lost to a dead, hung, or lying worker is re-dispatched
        (with backoff) onto replacement workers; only when the retry
        budget is exhausted does the batch degrade to in-process
        execution.
        """
        if not requests:
            return []
        if self.fallback_reason is not None:
            return self._ensure_fallback().run_batch(requests)
        chunks: list[list[TestRequest]] = [[] for _ in range(self.workers)]
        for i, request in enumerate(requests):
            chunks[i % self.workers].append(request)
        reports: dict[int, TestReport] = {}
        # Each chunk is pickled exactly once per batch; the bytes are
        # what crosses the process boundary, reused verbatim when a
        # chunk must be re-dispatched after a worker failure.
        started = time.perf_counter()
        pending = [
            (chunk, pickle.dumps(chunk, protocol=pickle.HIGHEST_PROTOCOL))
            for chunk in chunks if chunk
        ]
        self.encode_seconds += time.perf_counter() - started
        attempt = 0
        while pending:
            self.health.dispatches += 1
            self.health.requests += sum(len(chunk) for chunk, _ in pending)
            failed = self._dispatch_round(pending, reports)
            if not failed:
                break
            attempt += 1
            if attempt >= self.retry_policy.max_attempts:
                # Retry budget exhausted: finish the survivors in
                # process rather than losing the exploration.
                self.fallback_reason = (
                    f"process pool still failing after {attempt} attempts "
                    f"({self.retry_policy.describe()})"
                )
                remaining = [r for (chunk, _), _ in failed for r in chunk]
                for report in self._ensure_fallback().run_batch(remaining):
                    reports[report.request_id] = report
                break
            for (chunk, _), cause in failed:
                self.health.record_retry(cause, len(chunk))
            delay = self.retry_policy.delay_for(attempt, self._retry_rng)
            if delay > 0:
                self._sleep(delay)
            pending = [entry for entry, _ in failed]
        return [reports[r.request_id] for r in requests]

    def _dispatch_round(
        self,
        pending: list[tuple[list[TestRequest], bytes]],
        reports: dict[int, TestReport],
    ) -> list[tuple[tuple[list[TestRequest], bytes], str]]:
        """One dispatch of every pending chunk; returns what must retry.

        ``pending`` pairs each chunk with its pre-pickled bytes, which
        are what actually gets submitted.  Each entry of the returned
        list is ``((requests, packed), cause)`` with ``cause`` one of
        ``timeout`` (deadline hit — a straggler), ``error`` (worker
        death / broken pool), or ``missing`` (the worker answered but
        dropped or corrupted reports).
        """
        failed: list[tuple[tuple[list[TestRequest], bytes], str]] = []
        try:
            executor = self._ensure_executor()
            futures = [
                (executor.submit(_worker_run_chunk, packed), chunk, packed)
                for chunk, packed in pending
            ]
        except Exception:
            self.health.worker_deaths += 1
            self._replace_workers()
            return [(entry, "error") for entry in pending]
        replaced_this_round = False
        for future, chunk, packed in futures:
            expected = {r.request_id for r in chunk}
            try:
                result = future.result(timeout=self.dispatch_deadline)
            except _FutureTimeout:
                self.health.timeouts += 1
                self.health.stragglers += len(chunk)
                future.cancel()
                if not replaced_this_round:
                    # The straggling worker keeps its slot until the
                    # pool is rebuilt; replacements take over.
                    self._replace_workers()
                    replaced_this_round = True
                failed.append(((chunk, packed), "timeout"))
                continue
            except Exception:
                self.health.worker_deaths += 1
                if not replaced_this_round:
                    self._replace_workers()
                    replaced_this_round = True
                failed.append(((chunk, packed), "error"))
                continue
            received = self._decode_reports(result)
            for report in received:
                request_id = getattr(report, "request_id", None)
                if (not isinstance(report, TestReport)
                        or request_id not in expected):
                    self.health.corrupt_reports += 1
                    continue
                reports[request_id] = report
                self.health.completed += 1
                self.monitor.observe(report)
            still = [r for r in chunk if r.request_id not in reports]
            if still:
                repacked = packed if len(still) == len(chunk) else \
                    pickle.dumps(still, protocol=pickle.HIGHEST_PROTOCOL)
                failed.append(((still, repacked), "missing"))
        return failed

    def _decode_reports(self, result: object) -> list:
        """Unpack a worker's reply; garbage is 'missing', never a crash.

        Workers answer with pickled report lists; a plain list is also
        accepted (chaos harnesses and older workers).  Undecodable
        bytes count as corrupt and yield nothing — the retry loop
        re-dispatches the chunk.
        """
        if isinstance(result, bytes):
            try:
                result = pickle.loads(result)
            except Exception:
                self.health.corrupt_reports += 1
                return []
        return result if isinstance(result, list) else []

    def bind_metrics(self, registry: "object") -> None:
        """Export the pool's dispatch-path cost gauges (idempotent per
        registry, same contract as :meth:`SocketFabric.bind_metrics
        <repro.cluster.socket_fabric.SocketFabric.bind_metrics>`)."""
        bound = getattr(self, "_bound_registries", None)
        if bound is None:
            bound = self._bound_registries = set()
        if id(registry) in bound:
            return
        bound.add(id(registry))

        def _collect(reg) -> None:
            reg.gauge("fabric.dispatch.encode_seconds").set(
                self.encode_seconds
            )

        registry.register_collector(_collect)  # type: ignore[attr-defined]

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "ProcessPoolCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def describe(self) -> str:
        mode = "degraded/in-process" if self.is_degraded else "multiprocess"
        return (
            f"{self.name}: {self.workers} workers ({mode}), "
            f"{self.retry_policy.describe()}"
        )
