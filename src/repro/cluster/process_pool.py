"""Process-pool execution fabric: real multi-core fault exploration.

The simulated world is pure Python, so the thread-pool fabric
(:class:`~repro.cluster.local.LocalCluster`) serializes on the GIL and
buys essentially no wall-clock on CPU-bound targets.  AFEX's exploration
is embarrassingly parallel (§6.1) — every test is an independent,
hermetic execution — so the natural fabric is one *process* per node,
which is exactly how the paper's prototype ran on 1–14 EC2 machines
(§7.7).

:class:`ProcessPoolCluster` plays that role on one machine:

* worker processes are long-lived and **warm** — each builds its target
  (and the target's test suite) once, lazily, on its first request, and
  reuses it for every subsequent batch;
* requests are dispatched with a **chunked round-robin** scheduler: one
  future per worker per batch, so the per-test IPC cost is amortized
  over a whole chunk (simulated tests run in ~0.2 ms; per-request
  round-trips would drown the speedup in pickling);
* reports return **in request order** regardless of completion order,
  keeping explorer bookkeeping deterministic, same as the other fabrics;
* construction takes a zero-argument **target factory** (e.g.
  ``functools.partial(target_by_name, "minidb")``) because target
  instances themselves close over test bodies and cannot be pickled;
  when the factory itself is unpicklable (a lambda, a closure), the
  cluster degrades **gracefully to an in-process LocalCluster** instead
  of failing — same results, no parallelism.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from collections.abc import Callable
from concurrent.futures import ProcessPoolExecutor

from repro.cluster.local import LocalCluster
from repro.cluster.manager import NodeManager
from repro.cluster.messages import TestReport, TestRequest
from repro.errors import ClusterError
from repro.sim.libc import DEFAULT_STEP_BUDGET
from repro.sim.testsuite import Target

__all__ = ["ProcessPoolCluster"]

TargetFactory = Callable[[], Target]

#: per-worker-process state: the factory and the lazily-built manager.
_WORKER_STATE: dict[str, object] = {}


def _worker_init(factory: TargetFactory, step_budget: int) -> None:
    """Runs once in each worker process; defers the expensive build."""
    _WORKER_STATE["factory"] = factory
    _WORKER_STATE["step_budget"] = step_budget
    _WORKER_STATE["manager"] = None


def _worker_run_chunk(requests: list[TestRequest]) -> list[TestReport]:
    """Execute one chunk on this worker's warm node manager."""
    manager = _WORKER_STATE.get("manager")
    if manager is None:
        factory: TargetFactory = _WORKER_STATE["factory"]  # type: ignore[assignment]
        manager = NodeManager(
            f"proc-{os.getpid()}",
            factory(),
            step_budget=int(_WORKER_STATE["step_budget"]),  # type: ignore[arg-type]
        )
        _WORKER_STATE["manager"] = manager
    return [manager.execute(request) for request in requests]


class ProcessPoolCluster:
    """Multi-process fabric: one warm worker process per virtual node."""

    def __init__(
        self,
        target_factory: TargetFactory,
        workers: int | None = None,
        step_budget: int = DEFAULT_STEP_BUDGET,
        name: str = "procpool",
        mp_context: str | None = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ClusterError(f"a process pool needs >= 1 worker, got {workers}")
        self.target_factory = target_factory
        self.workers = workers or (os.cpu_count() or 1)
        self.step_budget = step_budget
        self.name = name
        self._mp_context = mp_context
        self._executor: ProcessPoolExecutor | None = None
        self._fallback: LocalCluster | None = None
        #: why the fallback engaged, for operator-facing diagnostics.
        self.fallback_reason: str | None = None
        try:
            pickle.dumps(target_factory)
        except Exception as exc:
            self.fallback_reason = (
                f"target factory is not picklable ({exc!r}); "
                "running in-process on a thread-pool fabric"
            )

    def __len__(self) -> int:
        return self.workers

    @property
    def is_degraded(self) -> bool:
        """True when the cluster fell back to in-process execution."""
        return self.fallback_reason is not None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            if self._mp_context is not None:
                context = multiprocessing.get_context(self._mp_context)
            elif "fork" in multiprocessing.get_all_start_methods():
                # fork inherits the imported simulator for free; spawn
                # pays a full re-import per worker.
                context = multiprocessing.get_context("fork")
            else:
                context = multiprocessing.get_context()
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=_worker_init,
                initargs=(self.target_factory, self.step_budget),
            )
        return self._executor

    def _ensure_fallback(self) -> LocalCluster:
        if self._fallback is None:
            self._fallback = LocalCluster([
                NodeManager(
                    f"{self.name}-fallback{i}",
                    self.target_factory(),
                    step_budget=self.step_budget,
                )
                for i in range(self.workers)
            ])
        return self._fallback

    def run_batch(self, requests: list[TestRequest]) -> list[TestReport]:
        """Execute a batch across the pool, chunked round-robin.

        Reports come back in request order regardless of worker
        completion order, so explorer bookkeeping stays deterministic.
        """
        if not requests:
            return []
        if self.fallback_reason is not None:
            return self._ensure_fallback().run_batch(requests)
        chunks: list[list[TestRequest]] = [[] for _ in range(self.workers)]
        for i, request in enumerate(requests):
            chunks[i % self.workers].append(request)
        try:
            executor = self._ensure_executor()
            futures = [
                executor.submit(_worker_run_chunk, chunk)
                for chunk in chunks
                if chunk
            ]
            reports: dict[int, TestReport] = {}
            for future in futures:
                for report in future.result():
                    reports[report.request_id] = report
        except Exception as exc:
            # A broken pool (killed worker, unpicklable payload we did
            # not predict) degrades to in-process execution rather than
            # losing the exploration.
            self.fallback_reason = f"process pool failed ({exc!r})"
            self.close()
            return self._ensure_fallback().run_batch(requests)
        return [reports[r.request_id] for r in requests]

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "ProcessPoolCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def describe(self) -> str:
        mode = "degraded/in-process" if self.is_degraded else "multiprocess"
        return f"{self.name}: {self.workers} workers ({mode})"
