"""Fleet-wide result deduplication for the elastic socket fabric.

The paper's campaigns re-propose scenarios constantly — a fitness-guided
search revisits promising regions, and a restarted round re-dispatches
in-flight work — and per-node :class:`~repro.core.cache.ResultCache`
instances only ever shortcut duplicates *that same node* happened to
execute.  On a fleet that is almost useless: the partitioner deliberately
spreads the fault space, so the node proposing a duplicate is rarely the
node that executed the original (IBIR-style campaign reuse, PAPERS.md).

:class:`FleetResultCache` moves the dedup point to the manager, which is
the one process that sees every completed report.  Each completed test
is recorded under its **scenario digest** — a SHA-256 over the canonical
JSON of ``(subspace, scenario)``, the same tuple↔list / frozenset↔sorted
canonicalization the wire codecs and the checkpoint format use — and a
later request with the same digest is answered straight from the cache
without dispatching at all.  Because the simulated executions are
deterministic per fault, the synthesized report is *identical* (minus
request id, wall-clock cost, and trace spans, none of which enter the
result history) to what a node would have produced, so the campaign's
``history_digest`` is byte-identical to single-node execution — a
differential test in ``tests/test_fleet.py`` proves it.

The manager also **broadcasts** newly recorded digests to v3 nodes
(piggybacked on the credit/dispatch path as ``digests`` control frames);
nodes accumulate the fleet-known set so their own accounting can tell a
first execution from a fleet-wide duplicate.  The digest list is
append-only and cursor-addressed, so each connection only ever receives
each digest once, regardless of reconnects racing the broadcast.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading

from repro.cluster.messages import TestReport, TestRequest
from repro.cluster.wire import _canonical

__all__ = ["FleetResultCache", "scenario_digest"]


def scenario_digest(subspace: str, scenario: dict) -> str:
    """The fleet-wide identity of one test: sha256 of its canonical JSON.

    Request ids, placement, and trace context are deliberately excluded:
    two requests are duplicates exactly when they would execute the same
    fault against the same subspace.
    """
    payload = json.dumps(
        {
            "subspace": str(subspace),
            "scenario": {
                str(key): _canonical(value)
                for key, value in dict(scenario).items()
            },
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class FleetResultCache:
    """Manager-side map from scenario digest to its completed report.

    Thread-safe (the fabric records from connection threads and looks up
    from the dispatch path).  ``capacity`` bounds memory by evicting the
    oldest recorded entry; the append-only digest *log* used for
    broadcast is not rewound by eviction — a node's "fleet has seen
    this" set is monotone by design.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"fleet cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: dict[str, TestReport] = {}
        self._log: list[str] = []
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def record(self, request: TestRequest, report: TestReport) -> str | None:
        """Remember one completed test; returns its digest when new."""
        digest = scenario_digest(request.subspace, request.scenario)
        with self._lock:
            if digest in self._entries:
                return None
            while len(self._entries) >= self.capacity:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
                self.evictions += 1
            self._entries[digest] = report
            self._log.append(digest)
            return digest

    def synthesize(self, request: TestRequest) -> TestReport | None:
        """A completed report answering ``request``, or None on a miss.

        The cached report is re-addressed to the new request id; spans
        are dropped (nothing was traced — nothing executed) and the cost
        zeroed (a dedup hit is free).  Every surviving field is exactly
        what a deterministic re-execution would have produced, which is
        why dedup cannot move the campaign's history digest.
        """
        digest = scenario_digest(request.subspace, request.scenario)
        with self._lock:
            cached = self._entries.get(digest)
            if cached is None:
                self.misses += 1
                return None
            self.hits += 1
        return dataclasses.replace(
            cached, request_id=request.request_id, spans=(), cost=0.0
        )

    def digests_since(self, cursor: int) -> tuple[int, list[str]]:
        """Digests recorded after ``cursor``; returns (new cursor, batch).

        Cursors are indexes into the append-only log, so per-connection
        cursors make the broadcast exactly-once per connection.
        """
        with self._lock:
            if cursor < 0:
                cursor = 0
            batch = self._log[cursor:]
            return len(self._log), batch

    def stats(self) -> dict[str, int | float]:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }

    def describe(self) -> str:
        stats = self.stats()
        return (
            f"fleet cache: {stats['entries']} entries, "
            f"{stats['hits']} hits / {stats['misses']} misses "
            f"({stats['hit_rate']:.0%})"
        )
