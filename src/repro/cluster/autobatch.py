"""Adaptive batch sizing: amortize dispatch overhead, bound staleness.

Every fabric pays a fixed per-round cost — future scheduling and IPC on
the process pool, frame round-trips on the socket fabric — that is
independent of how many tests the round carries.  Profiling the
process-pool fabric put that cost near 10 ms per round against ~0.3 ms
per simulated test: at the explorer's default batch width the fixed
cost dwarfs the useful work, which is exactly why BENCH_parallel once
showed the pool at 0.26x of serial.  Growing the batch amortizes the
overhead away — but an unboundedly large batch starves the search of
feedback (fitness-guided proposal quality degrades when thousands of
candidates are proposed off one stale fitness snapshot) and unbalances
the work queue.

:class:`AdaptiveBatchController` walks that trade-off online instead of
asking the operator to guess.  It observes each round's wall-clock via
the same measurement the ``fabric.dispatch_seconds`` histogram sees,
maintains an EWMA of per-test latency, and sizes the next round to hit
a target round duration — long enough that the fixed cost is noise,
short enough that feedback stays fresh.  Moves are bounded to one
``growth`` factor per round (no oscillation on a noisy measurement) and
snapped to a multiple of the fabric width (no worker sits idle waiting
for a ragged tail chunk).

Exposed to operators as ``--batch-size auto``.  Adaptive sizing changes
the *trajectory* of the search (different batch boundaries → different
proposal order), so it is opt-in and refuses to combine with
checkpointing, whose replay contract requires a fixed batch size.
"""

from __future__ import annotations

from repro.errors import ClusterError

__all__ = ["AdaptiveBatchController", "NodeLatencyTracker"]


class AdaptiveBatchController:
    """Sizes each dispatch round from observed per-test latency.

    ``width`` is the fabric's parallel width (``len(cluster)``): batch
    sizes are multiples of it so chunked round-robin dispatch keeps
    every worker equally loaded.  ``target_round_seconds`` is the round
    duration to steer toward; the default 0.25 s makes a ~10 ms fixed
    dispatch cost a <5 % tax while still giving the strategy feedback
    several times a second on simulated targets.
    """

    def __init__(
        self,
        width: int,
        *,
        target_round_seconds: float = 0.25,
        min_batch: int | None = None,
        max_batch: int | None = None,
        growth: float = 2.0,
        smoothing: float = 0.5,
    ) -> None:
        if width < 1:
            raise ClusterError(f"fabric width must be >= 1, got {width}")
        if target_round_seconds <= 0:
            raise ClusterError(
                f"target round seconds must be positive, "
                f"got {target_round_seconds}"
            )
        if growth <= 1.0:
            raise ClusterError(f"growth factor must exceed 1, got {growth}")
        if not 0.0 < smoothing <= 1.0:
            raise ClusterError(
                f"smoothing must be in (0, 1], got {smoothing}"
            )
        self.width = int(width)
        self.target_round_seconds = float(target_round_seconds)
        self.min_batch = self.width if min_batch is None else int(min_batch)
        if self.min_batch < 1:
            raise ClusterError(
                f"min batch must be >= 1, got {self.min_batch}"
            )
        default_max = max(self.min_batch, 64 * self.width)
        self.max_batch = default_max if max_batch is None else int(max_batch)
        if self.max_batch < self.min_batch:
            raise ClusterError(
                f"max batch {self.max_batch} below min batch {self.min_batch}"
            )
        self.growth = float(growth)
        self.smoothing = float(smoothing)
        #: EWMA of seconds per test, None until the first observation.
        self.per_test_seconds: float | None = None
        #: rounds observed (not counting empty/zero-duration ones).
        self.rounds = 0
        # Start near the bottom: the first round doubles as the latency
        # probe, so it should be cheap even on a slow target.
        self._current = min(
            self.max_batch, max(self.min_batch, 2 * self.width)
        )

    def batch_size(self) -> int:
        """The size the next round should dispatch."""
        return self._current

    def observe(self, tests: int, elapsed_seconds: float) -> int:
        """Account one completed round; returns the next batch size.

        ``tests`` is how many requests the round dispatched and
        ``elapsed_seconds`` its dispatch wall-clock.  Degenerate
        observations (empty round, non-positive clock) leave the
        controller unchanged — a paused fabric must not distort the
        latency estimate.
        """
        if tests <= 0 or elapsed_seconds <= 0:
            return self._current
        self.rounds += 1
        sample = elapsed_seconds / tests
        if self.per_test_seconds is None:
            self.per_test_seconds = sample
        else:
            self.per_test_seconds = (
                self.smoothing * sample
                + (1.0 - self.smoothing) * self.per_test_seconds
            )
        ideal = self.target_round_seconds / self.per_test_seconds
        # Bounded move: at most one growth factor up or down per round.
        bounded = min(
            max(ideal, self._current / self.growth),
            self._current * self.growth,
        )
        # Snap down to a multiple of the fabric width so round-robin
        # chunks stay level, then clamp into the configured range.
        snapped = int(bounded // self.width) * self.width
        self._current = max(self.min_batch, min(self.max_batch, snapped))
        return self._current

    def bind_metrics(self, registry: "object") -> None:
        """Publish the controller's state as snapshot-time gauges."""
        bound = getattr(self, "_bound_registries", None)
        if bound is None:
            bound = self._bound_registries = set()
        if id(registry) in bound:
            return
        bound.add(id(registry))

        def _collect(reg) -> None:
            reg.gauge("fabric.batch.size").set(self._current)
            reg.gauge("fabric.batch.per_test_seconds").set(
                self.per_test_seconds or 0.0
            )

        registry.register_collector(_collect)  # type: ignore[attr-defined]

    def stats(self) -> dict[str, object]:
        """Controller state for benchmark payloads and debugging."""
        return {
            "batch_size": self._current,
            "min_batch": self.min_batch,
            "max_batch": self.max_batch,
            "width": self.width,
            "rounds": self.rounds,
            "per_test_seconds": self.per_test_seconds,
            "target_round_seconds": self.target_round_seconds,
        }

    def describe(self) -> str:
        latency = (
            "unmeasured" if self.per_test_seconds is None
            else f"{self.per_test_seconds * 1e3:.2f} ms/test"
        )
        return (
            f"autobatch: {self._current} "
            f"[{self.min_batch}..{self.max_batch}] x{self.width}, "
            f"{latency}, target {self.target_round_seconds:.2f}s/round"
        )


class NodeLatencyTracker:
    """Per-node EWMA of seconds-per-test, for steal-victim selection.

    The fabric-wide :class:`AdaptiveBatchController` EWMA answers "how
    big should the next round be"; an *elastic* fleet also needs to know
    which node is the slowest **right now** — the work-stealing
    scheduler reassigns backlog from the node whose estimated remaining
    time is longest, which on a heterogeneous fleet (the paper's EC2
    mix) is a per-node question.  Observations come from absorbed
    reports' ``cost`` (node-side execution wall-clock), so a node that
    has reported nothing yet has no estimate and ``estimate`` falls back
    to the fleet-wide mean of the known nodes.
    """

    def __init__(self, smoothing: float = 0.3) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ClusterError(
                f"smoothing must be in (0, 1], got {smoothing}"
            )
        self.smoothing = float(smoothing)
        self._per_test: dict[str, float] = {}

    def observe(self, node: str, tests: int, seconds: float) -> None:
        """Account ``tests`` completed by ``node`` in ``seconds``."""
        if tests <= 0 or seconds < 0:
            return
        sample = seconds / tests
        previous = self._per_test.get(node)
        self._per_test[node] = (
            sample if previous is None
            else self.smoothing * sample + (1.0 - self.smoothing) * previous
        )

    def per_test_seconds(self, node: str) -> float | None:
        """The node's EWMA seconds-per-test, None before any report."""
        return self._per_test.get(node)

    def estimate(self, node: str, backlog: int) -> float:
        """Estimated seconds for ``node`` to clear ``backlog`` tests.

        Unknown nodes borrow the fleet mean so a fresh joiner is
        neither an irresistible steal victim nor permanently immune;
        with no data at all every estimate is the bare backlog count,
        which still ranks victims by queue depth.
        """
        rate = self._per_test.get(node)
        if rate is None:
            rate = (
                sum(self._per_test.values()) / len(self._per_test)
                if self._per_test else 1.0
            )
        return backlog * rate

    def forget(self, node: str) -> None:
        """Drop a retired node's estimate (a rejoin re-measures)."""
        self._per_test.pop(node, None)

    def stats(self) -> dict[str, float]:
        """Per-node EWMA snapshot for benchmark payloads and gauges."""
        return dict(self._per_test)
