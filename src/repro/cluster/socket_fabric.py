"""The networked multi-node execution fabric (§4's actual deployment).

The paper runs its fitness-guided exploration on 10-node clusters and
EC2, dynamically partitioning the fault space among explorer nodes.
:class:`SocketFabric` is that shape for this reproduction: a manager
process serves the :mod:`repro.cluster.wire` protocol over TCP;
:class:`ExplorerNode` processes connect, advertise capacity, and *pull*
work with backpressure — a node is never sent more requests than the
free executor slots it has declared.

The manager implements the same
:class:`~repro.cluster.explorer_node.ExecutionFabric` interface as every
in-process fabric (``__len__`` + ``run_batch``), so the whole existing
stack — :class:`~repro.cluster.fault_tolerance.FaultTolerantFabric`
retries, checkpoints, metrics, tracing, online quality — wraps it
unchanged, and a campaign over the socket fabric produces a result
history **byte-identical** to the same campaign on
:class:`~repro.cluster.process_pool.ProcessPoolCluster` (execution is
deterministic per fault; only placement differs).

Failure semantics:

* a node that dies mid-batch (EOF, reset, poisoned frame) has its
  in-flight chunk **requeued** onto the surviving nodes within the same
  round — the explorer never observes the loss except through
  :class:`~repro.cluster.fault_tolerance.FabricHealth`;
* a truncated or garbage frame is a :class:`~repro.cluster.wire.
  WireError` — the connection is dropped and its work requeued, the
  manager never crashes;
* wire-level heartbeats feed a
  :class:`~repro.cluster.fault_tolerance.HeartbeatMonitor`; beats are
  **stamped with the manager-side clock on receipt**, because node
  clocks are ``time.monotonic()`` values from *other processes* and are
  not comparable to the manager's (see
  :meth:`HeartbeatMonitor.beat <repro.cluster.fault_tolerance.
  HeartbeatMonitor.beat>`); a registered node whose beats stop is
  expired and its work requeued;
* nodes reconnect with exponential backoff and **idempotent
  re-registration**: a returning node (same name) replaces its stale
  connection, whose in-flight work is requeued first;
* :meth:`SocketFabric.close` drains gracefully — every node receives a
  ``shutdown`` frame and exits its serve loop; a manager *crash* (no
  shutdown frame) instead sends nodes into their reconnect loop, which
  is how a restarted manager on the same endpoint gets its fleet back.

Dynamic fault-space partitioning (§4): a
:class:`SensitivityPartitioner` learns per-axis sensitivity from
completed reports (reusing :class:`~repro.core.sensitivity.
SensitivityTracker`) and orders each round's queue so that requests
sharing a value on the currently most-sensitive axis are contiguous —
nodes pulling chunks therefore receive coherent regions of the fault
space, and the partitioning axis shifts as the search discovers where
the structure is.  Placement never changes *what* is executed, so
history digests are unaffected.

Elastic fleet operations (protocol v3, docs/DISTRIBUTED.md "Fleet
operations"):

* **work-stealing** — when the round queue drains while a node still
  has free slots, the manager reassigns backlog from the most-loaded
  live node (estimated by per-node EWMA latency ×
  :class:`~repro.cluster.autobatch.NodeLatencyTracker`), revoking the
  stolen ids at the victim with a ``steal`` frame.  A victim that
  raced the revocation and executed anyway is resolved
  first-report-wins (``steal_duplicates`` counts the waste); stolen
  work lost with a dead *thief* is requeued at the front exactly like
  any other in-flight chunk;
* **dynamic membership** — a new node may register mid-campaign
  (``allow_join``); the manager re-arranges the remaining queue through
  the partitioner so the joiner receives a coherent slice.  A node
  leaves gracefully by sending ``drain``: it stops receiving work,
  finishes its backlog, and is deregistered with a ``shutdown`` frame —
  a *distinct* path from crash detection, which stays with the
  :class:`~repro.cluster.fault_tolerance.HeartbeatMonitor`;
* **fleet-shared dedup** — with a
  :class:`~repro.cluster.fleet.FleetResultCache` attached, duplicate
  scenarios completed *anywhere* in the fleet are answered from the
  manager's cache without dispatching, and newly recorded digests are
  broadcast to v3 nodes piggybacked on the credit/dispatch path.
  Executions are deterministic per fault, so dedup never moves the
  campaign's history digest.
"""

from __future__ import annotations

import os
import queue
import random
import select
import socket
import threading
import time
from collections import deque
from collections.abc import Callable

from repro.cluster.autobatch import NodeLatencyTracker
from repro.cluster.fault_tolerance import (
    FabricHealth,
    HeartbeatMonitor,
    RetryPolicy,
)
from repro.cluster.fleet import FleetResultCache, scenario_digest
from repro.cluster.manager import NodeManager
from repro.cluster.messages import TestReport, TestRequest
from repro.cluster.wire import (
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    WireError,
    encode_frame,
    encode_report_frame,
    encode_work_frame,
    negotiate_version,
    parse_endpoint,
    recv_frame,
    report_from_wire,
    report_to_wire,
    request_from_wire,
    request_to_wire,
    send_frame,
)
from repro.core.cache import ResultCache
from repro.core.sensitivity import SensitivityTracker
from repro.errors import ClusterError
from repro.sim.libc import DEFAULT_STEP_BUDGET
from repro.sim.testsuite import Target

__all__ = ["SocketFabric", "ExplorerNode", "SensitivityPartitioner"]

TargetFactory = Callable[[], Target]

#: sentinel closing a node connection's outbound queue.
_CLOSE = object()

#: upper bound on a node's advertised capacity (a corrupted hello must
#: not convince the manager to funnel the whole campaign to one peer).
_MAX_CAPACITY = 256


class SensitivityPartitioner:
    """Orders a round's work queue by learned fault-space sensitivity.

    Implements the paper's §4 dynamic partitioning signal: each
    completed report yields a fitness proxy (crash > hang > test
    failure > clean, plus a bonus when the fault actually fired), and
    each axis of the originating scenario is credited with how strongly
    its *value* predicts that fitness — the deviation of the value's
    running mean from the global mean, accumulated through a
    sliding-window :class:`~repro.core.sensitivity.SensitivityTracker`.
    An axis whose values discriminate outcomes (``function=malloc``
    crashes, ``function=read`` doesn't) builds sensitivity; an axis
    whose values all behave alike stays flat.  ``arrange`` then sorts
    the pending queue so requests sharing a value on the most-sensitive
    axis sit together — nodes pulling chunks off the front receive
    contiguous regions of the currently-most-informative axis, sized by
    their capacity.  Before any feedback the queue is left in proposal
    order (uniform partitioning).
    """

    def __init__(self, window: int = 50, floor: float = 0.05) -> None:
        self.window = window
        self.floor = floor
        self._tracker: SensitivityTracker | None = None
        #: per-axis, per-value running (count, fitness sum).
        self._value_stats: dict[str, dict[str, list[float]]] = {}
        self._global_count = 0
        self._global_sum = 0.0

    @staticmethod
    def fitness_of(report: TestReport) -> float:
        """The partitioning fitness proxy for one completed test."""
        if report.crashed:
            fitness = 3.0
        elif report.hung:
            fitness = 2.0
        elif report.failed:
            fitness = 1.0
        else:
            fitness = 0.0
        if report.injected:
            fitness += 0.5
        return fitness

    def observe(self, request: TestRequest, report: TestReport) -> None:
        """Account one completed scenario's outcome."""
        axes = tuple(sorted(request.scenario))
        if not axes:
            return
        if self._tracker is None or set(axes) - set(self._tracker.axis_names):
            # First observation, or a subspace introduced new axes:
            # (re)build the tracker over the union (window history
            # restarts, which only costs a few rounds of re-learning;
            # the per-value means survive the rebuild).
            known = () if self._tracker is None else self._tracker.axis_names
            self._tracker = SensitivityTracker(
                sorted(set(known) | set(axes)),
                window=self.window, floor=self.floor,
            )
        fitness = self.fitness_of(report)
        self._global_count += 1
        self._global_sum += fitness
        global_mean = self._global_sum / self._global_count
        for axis in axes:
            bucket = self._value_stats.setdefault(axis, {})
            stats = bucket.setdefault(repr(request.scenario[axis]), [0, 0.0])
            stats[0] += 1
            stats[1] += fitness
            value_mean = stats[1] / stats[0]
            self._tracker.record(axis, abs(value_mean - global_mean))

    def partition_axis(self) -> str | None:
        """The axis the fault space is currently partitioned along."""
        if self._tracker is None:
            return None
        probabilities = self._tracker.probabilities()
        return max(sorted(probabilities), key=lambda k: probabilities[k])

    def arrange(self, requests: list[TestRequest]) -> list[TestRequest]:
        """Stable-sort ``requests`` into contiguous partitions."""
        axis = self.partition_axis()
        if axis is None or len(requests) < 2:
            return list(requests)
        return sorted(requests, key=lambda r: repr(r.scenario.get(axis)))


class _NodeConnection:
    """Manager-side state for one registered explorer node."""

    def __init__(
        self, name: str, sock: socket.socket, capacity: int,
        version: int = PROTOCOL_VERSION,
    ) -> None:
        self.name = name
        self.sock = sock
        self.capacity = capacity
        #: the protocol version negotiated at handshake — per
        #: connection, so v1 and v2 nodes coexist in one fleet.
        self.version = version
        #: free executor slots the node has declared and not yet been
        #: sent work for (the backpressure credit).
        self.slots = 0
        #: in-flight requests, by id.
        self.assigned: dict[int, TestRequest] = {}
        #: ids reassigned (stolen) to another node but possibly still
        #: executing here — a report for one of these is a steal race,
        #: not corruption, and is resolved first-report-wins.
        self.stolen_away: set[int] = set()
        #: graceful-leave state: a draining node receives no new work
        #: and is deregistered (``drained``) once its backlog empties.
        self.draining = False
        self.drained = False
        #: cursor into the fleet cache's append-only digest log — how
        #: far this connection's dedup broadcast has caught up.
        self.digest_cursor = 0
        #: load accounting from the node's heartbeats.
        self.executed = 0
        self.busy_seconds = 0.0
        self.retired = False
        self.outbox: "queue.Queue[object]" = queue.Queue()

    def enqueue(self, message: dict) -> int:
        """Queue a JSON frame for the writer thread; returns its size."""
        data = encode_frame(message)
        self.outbox.put(data)
        return len(data)

    def enqueue_raw(self, data: bytes) -> int:
        """Queue an already-encoded frame (the v2 binary data plane)."""
        self.outbox.put(data)
        return len(data)


class SocketFabric:
    """TCP manager fabric: serves the wire protocol to explorer nodes.

    Construct, optionally :meth:`wait_for_nodes`, then hand to a
    :class:`~repro.cluster.explorer_node.ClusterExplorer` (ideally
    wrapped in a :class:`~repro.cluster.fault_tolerance.
    FaultTolerantFabric` for bounded retries on top of the fabric's own
    intra-round requeue).  ``listen`` is ``"host:port"``; port 0 binds
    an ephemeral port, readable afterwards from :attr:`port`.

    ``heartbeat_timeout`` bounds how stale a registered node's last
    beat may grow before the manager declares it dead and requeues its
    work; it must comfortably exceed the nodes' heartbeat interval.
    ``ready_timeout`` bounds how long a dispatch will wait with *zero*
    live nodes before failing the round.

    ``allow_join=False`` seals the fleet at first dispatch: a *new*
    node name registering mid-campaign is refused with an ``error``
    frame (a returning node — same name — may always re-register;
    reconnects are not joins).  ``fleet_cache`` attaches a
    :class:`~repro.cluster.fleet.FleetResultCache` enabling
    manager-side dedup of duplicate scenarios plus the digest
    broadcast to v3 nodes; it is opt-in because it changes *load*
    accounting (dedup hits execute nowhere), never results.
    """

    def __init__(
        self,
        listen: str = "127.0.0.1:0",
        expected_nodes: int = 1,
        *,
        name: str = "socket",
        ready_timeout: float = 30.0,
        heartbeat_timeout: float = 10.0,
        handshake_timeout: float = 5.0,
        partitioner: SensitivityPartitioner | None = None,
        allow_join: bool = True,
        fleet_cache: FleetResultCache | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if expected_nodes < 1:
            raise ClusterError(
                f"a socket fabric needs >= 1 expected node, got {expected_nodes}"
            )
        if ready_timeout <= 0 or heartbeat_timeout <= 0:
            raise ClusterError("socket fabric timeouts must be positive")
        self.name = name
        self.expected_nodes = expected_nodes
        self.ready_timeout = ready_timeout
        self.handshake_timeout = handshake_timeout
        self.health = FabricHealth()
        self.monitor = HeartbeatMonitor(
            liveness_timeout=heartbeat_timeout, clock=clock
        )
        self.partitioner = partitioner or SensitivityPartitioner()
        self.allow_join = allow_join
        self.fleet_cache = fleet_cache
        #: per-node seconds-per-test EWMA, fed from absorbed reports'
        #: ``cost`` — ranks work-stealing victims by estimated
        #: remaining time, not just queue depth.
        self.latency = NodeLatencyTracker()
        self._clock = clock
        self._cond = threading.Condition()
        self._nodes: dict[str, _NodeConnection] = {}
        self._pending: dict[int, TestRequest] = {}
        self._unassigned: deque[TestRequest] = deque()
        self._reports: dict[int, TestReport] = {}
        self._round: "_Round | None" = None
        self._closed = False
        self._dispatched = False
        #: every node name that ever registered — distinguishes a
        #: returning node (reconnect) from a genuine mid-campaign join.
        self._seen_names: set[str] = set()
        #: ids stolen once already — never re-stolen (no ping-pong; a
        #: chunk is reassigned at most once per requeue, mirroring the
        #: requeue-to-front rule).
        self._stolen_once: set[int] = set()
        #: wire accounting (exported by :meth:`bind_metrics`).
        self.bytes_in = 0
        self.bytes_out = 0
        self.frames_in = 0
        self.frames_out = 0
        #: cumulative seconds spent encoding outbound work frames — the
        #: dispatch path's serialization cost, exported as the
        #: ``fabric.dispatch.encode_seconds`` gauge.
        self.encode_seconds = 0.0
        #: requests requeued off dead or replaced connections.
        self.requeued = 0
        #: well-formed reports that arrived after their round moved on.
        self.late_reports = 0
        #: total registrations, counting every re-registration.
        self.registrations = 0
        #: requests reassigned from a loaded node to an idle one.
        self.stolen = 0
        #: stolen requests the victim executed anyway (revocation race);
        #: resolved first-report-wins, so this counts wasted work only.
        self.steal_duplicates = 0
        #: nodes that drained and deregistered gracefully (not deaths).
        self.graceful_leaves = 0
        #: new node names registered after the first dispatch.
        self.mid_campaign_joins = 0
        #: requests answered from the fleet cache without dispatching.
        self.fleet_dedup_hits = 0

        host, port = parse_endpoint(listen)
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._server.bind((host, port))
            self._server.listen(16)
        except OSError:
            self._server.close()
            raise
        self.host, self.port = self._server.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"{name}-accept", daemon=True
        )
        self._accept_thread.start()

    # -- fabric interface ------------------------------------------------------

    def __len__(self) -> int:
        """Total declared capacity of the live fleet (min 1).

        This is what sizes the explorer's default speculative batch: a
        round should be wide enough to keep every advertised executor
        slot busy.
        """
        with self._cond:
            return max(
                1,
                sum(n.capacity for n in self._nodes.values() if not n.retired),
            )

    def run_batch(self, requests: list[TestRequest]) -> list[TestReport]:
        """Dispatch a batch across the fleet; reports in request order.

        Work is handed out against each node's declared free slots
        (backpressure); a node lost mid-round has its chunk requeued to
        the survivors.  The call fails with :class:`~repro.errors.
        ClusterError` only when the fleet is empty for ``ready_timeout``
        seconds — at which point an enclosing
        :class:`~repro.cluster.fault_tolerance.FaultTolerantFabric`
        backs off and retries the round.
        """
        if not requests:
            return []
        with self._cond:
            if self._closed:
                raise ClusterError(f"{self.name}: fabric is closed")
            if self._round is not None:
                # A newer dispatch supersedes an abandoned one (the
                # fault-tolerance wrapper re-dispatches the same ids
                # after a deadline): wake the stale waiter so its
                # worker thread exits instead of waiting forever.
                self._round.abandoned = True
                self._cond.notify_all()
            round_ = self._round = _Round({r.request_id for r in requests})
            self._dispatched = True
            self.health.dispatches += 1
            self.health.requests += len(requests)
            # Requests already in flight from a superseded round keep
            # their place — execution is deterministic, so their
            # reports satisfy this round too.  Stale queue entries the
            # new round does not want are dropped.
            self._pending = {
                rid: r for rid, r in self._pending.items()
                if rid in round_.ids
            }
            self._stolen_once &= set(self._pending)
            for n in self._nodes.values():
                n.stolen_away &= set(self._pending)
            # A request is fresh unless a superseded round left it in
            # flight (still in ``_pending``).  An id sitting in a
            # node's ``assigned`` dict but *not* in ``_pending`` is a
            # zombie: its round already completed through the other
            # side of a steal race, nobody is waiting for the node's
            # eventual late report, and trusting it here would leave
            # this round waiting forever.
            fresh = [
                r for r in requests
                if r.request_id not in self._pending
                and r.request_id not in self._reports
            ]
            if self.fleet_cache is not None:
                # Fleet-wide dedup: a scenario completed anywhere in
                # the fleet is answered from the manager's cache and
                # never dispatched.  The synthesized report is what a
                # deterministic re-execution would produce, so the
                # history digest cannot move.
                executable: list[TestRequest] = []
                for r in fresh:
                    synthesized = self.fleet_cache.synthesize(r)
                    if synthesized is None:
                        executable.append(r)
                        continue
                    self.fleet_dedup_hits += 1
                    self.partitioner.observe(r, synthesized)
                    self._reports[r.request_id] = synthesized
                    self.health.completed += 1
                fresh = executable
            self._pending.update({r.request_id: r for r in fresh})
            wanted = deque(
                r for r in self._unassigned if r.request_id in round_.ids
            )
            queued = {r.request_id for r in wanted}
            wanted.extend(r for r in fresh if r.request_id not in queued)
            self._unassigned = deque(
                self.partitioner.arrange(list(wanted))
            )
            self._fill_nodes_locked()
            absent_since: float | None = None
            while True:
                if round_.abandoned:
                    raise ClusterError(
                        f"{self.name}: dispatch round superseded by a "
                        "newer dispatch"
                    )
                if self._closed:
                    raise ClusterError(f"{self.name}: fabric is closed")
                if all(rid in self._reports for rid in round_.ids):
                    break
                self._expire_stale_nodes_locked()
                live = [n for n in self._nodes.values() if not n.retired]
                if live:
                    absent_since = None
                else:
                    now = self._clock()
                    if absent_since is None:
                        absent_since = now
                    elif now - absent_since >= self.ready_timeout:
                        self._round = None
                        raise ClusterError(
                            f"{self.name}: no live nodes for "
                            f"{self.ready_timeout:.1f}s with "
                            f"{len(round_.ids - set(self._reports))} "
                            "requests outstanding"
                        )
                self._fill_nodes_locked()
                self._cond.wait(timeout=0.1)
            ordered = [self._reports.pop(r.request_id) for r in requests]
            for r in requests:
                self._pending.pop(r.request_id, None)
            self._round = None
            return ordered

    # -- lifecycle -------------------------------------------------------------

    def wait_for_nodes(
        self, count: int | None = None, timeout: float = 60.0
    ) -> int:
        """Block until ``count`` nodes are registered (default:
        ``expected_nodes``); returns the live node count."""
        wanted = self.expected_nodes if count is None else count
        deadline = self._clock() + timeout
        with self._cond:
            while True:
                live = sum(
                    1 for n in self._nodes.values() if not n.retired
                )
                if live >= wanted:
                    return live
                remaining = deadline - self._clock()
                if remaining <= 0:
                    raise ClusterError(
                        f"{self.name}: {live}/{wanted} nodes registered "
                        f"after {timeout:.1f}s"
                    )
                self._cond.wait(timeout=min(remaining, 0.2))

    def close(self, drain: bool = True) -> None:
        """Stop the fabric (idempotent).

        ``drain=True`` (the default) sends every node a ``shutdown``
        frame first, so nodes exit their serve loop gracefully;
        ``drain=False`` models a manager crash — connections just
        drop, and nodes enter their reconnect loop instead.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            nodes = list(self._nodes.values())
            if self._round is not None:
                self._round.abandoned = True
            self._cond.notify_all()
        for node in nodes:
            if drain:
                try:
                    node.enqueue({"type": "shutdown", "reason": "drain"})
                except WireError:  # pragma: no cover - shutdown always fits
                    pass
            node.outbox.put(_CLOSE)
            if not drain:
                _close_socket(node.sock)
        try:
            self._server.close()
        except OSError:  # pragma: no cover
            pass
        self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "SocketFabric":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection ---------------------------------------------------------

    def node_stats(self) -> list[dict[str, object]]:
        """Per-node load accounting (from heartbeats), for obs export."""
        with self._cond:
            return [
                {
                    "node": n.name,
                    "capacity": n.capacity,
                    "in_flight": len(n.assigned),
                    "executed": n.executed,
                    "busy_seconds": n.busy_seconds,
                    "draining": n.draining or n.drained,
                    "per_test_seconds":
                        self.latency.per_test_seconds(n.name),
                }
                for n in self._nodes.values() if not n.retired
            ]

    def fleet_stats(self) -> dict[str, object]:
        """Elastic-fleet accounting: stealing, membership, dedup."""
        with self._cond:
            stats: dict[str, object] = {
                "nodes": sum(
                    1 for n in self._nodes.values() if not n.retired
                ),
                "stolen": self.stolen,
                "steal_duplicates": self.steal_duplicates,
                "requeued": self.requeued,
                "graceful_leaves": self.graceful_leaves,
                "mid_campaign_joins": self.mid_campaign_joins,
                "fleet_dedup_hits": self.fleet_dedup_hits,
                "per_test_seconds": self.latency.stats(),
            }
        if self.fleet_cache is not None:
            stats["dedup"] = self.fleet_cache.stats()
        return stats

    def bind_metrics(self, registry: "object") -> None:
        """Export wire/fleet gauges into a metrics registry snapshot.

        Idempotent per registry (the explorer binds any fabric that
        offers this hook; a fabric reused across explorers must not
        register duplicate collectors).
        """
        bound = getattr(self, "_bound_registries", None)
        if bound is None:
            bound = self._bound_registries = set()
        if id(registry) in bound:
            return
        bound.add(id(registry))

        def _collect(reg) -> None:
            stats = self.node_stats()
            reg.gauge("fabric.net.nodes").set(len(stats))
            reg.gauge("fabric.net.capacity").set(
                sum(int(s["capacity"]) for s in stats)
            )
            with self._cond:
                reg.gauge("fabric.net.bytes_in").set(self.bytes_in)
                reg.gauge("fabric.net.bytes_out").set(self.bytes_out)
                reg.gauge("fabric.net.frames_in").set(self.frames_in)
                reg.gauge("fabric.net.frames_out").set(self.frames_out)
                reg.gauge("fabric.net.requeued").set(self.requeued)
                reg.gauge("fabric.net.late_reports").set(self.late_reports)
                reg.gauge("fabric.net.registrations").set(self.registrations)
                reg.gauge("fabric.net.stolen").set(self.stolen)
                reg.gauge("fabric.net.steal_duplicates").set(
                    self.steal_duplicates
                )
                reg.gauge("fabric.net.graceful_leaves").set(
                    self.graceful_leaves
                )
                reg.gauge("fabric.net.mid_campaign_joins").set(
                    self.mid_campaign_joins
                )
                reg.gauge("fabric.net.dedup_hits").set(self.fleet_dedup_hits)
                reg.gauge("fabric.dispatch.encode_seconds").set(
                    self.encode_seconds
                )
                completed = self.health.completed
                reg.gauge("fabric.net.bytes_per_test").set(
                    (self.bytes_in + self.bytes_out) / completed
                    if completed else 0.0
                )
            for s in stats:
                reg.gauge(
                    "fabric.worker_busy_seconds", worker=str(s["node"])
                ).set(float(s["busy_seconds"]))
                reg.gauge(
                    "fabric.worker_executed", worker=str(s["node"])
                ).set(int(s["executed"]))
                per_test = s["per_test_seconds"]
                if per_test is not None:
                    reg.gauge(
                        "fabric.node.per_test_seconds",
                        worker=str(s["node"]),
                    ).set(float(per_test))  # type: ignore[arg-type]

        registry.register_collector(_collect)  # type: ignore[attr-defined]

    def describe(self) -> str:
        with self._cond:
            live = sum(1 for n in self._nodes.values() if not n.retired)
        return (
            f"{self.name}: {self.host}:{self.port}, {live} nodes "
            f"(protocol v{PROTOCOL_VERSION})"
        )

    # -- internals: accept / per-connection service ----------------------------

    def _count_bytes_in(self, count: int) -> None:
        with self._cond:
            self.bytes_in += count

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _addr = self._server.accept()
            except OSError:
                return  # server socket closed: fabric shut down
            try:
                # Frames are small and latency-critical (a round blocks
                # on the last report); never let Nagle batch them.
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - non-TCP test sockets
                pass
            threading.Thread(
                target=self._serve_connection, args=(sock,),
                name=f"{self.name}-conn", daemon=True,
            ).start()

    def _serve_connection(self, sock: socket.socket) -> None:
        """One node's session: handshake, then frame dispatch until EOF."""
        node: _NodeConnection | None = None
        try:
            node = self._handshake(sock)
            if node is None:
                return
            writer = threading.Thread(
                target=self._writer_loop, args=(node,),
                name=f"{self.name}-write-{node.name}", daemon=True,
            )
            writer.start()
            node.enqueue({
                "type": "welcome",
                "version": node.version,
                "node": node.name,
                "manager": self.name,
            })
            sock.settimeout(None)
            while True:
                try:
                    message = recv_frame(sock, counter=self._count_bytes_in)
                except WireError:
                    # Poisoned framing: count it, drop the connection,
                    # requeue — the manager survives garbage by design.
                    with self._cond:
                        self.health.corrupt_reports += 1
                    break
                if message is None:
                    break
                with self._cond:
                    self.frames_in += 1
                    self.monitor.beat(node.name)
                if not self._handle_frame(node, message):
                    break
        except OSError:
            pass
        finally:
            if node is not None:
                node.outbox.put(_CLOSE)
                with self._cond:
                    self._retire_locked(node)
                    self._fill_nodes_locked()
                    self._cond.notify_all()
            _close_socket(sock)

    def _handshake(self, sock: socket.socket) -> _NodeConnection | None:
        """Validate the hello frame; register (or re-register) the node."""
        sock.settimeout(self.handshake_timeout)
        try:
            hello = recv_frame(sock)
        except (WireError, OSError, TimeoutError):
            with self._cond:
                self.health.corrupt_reports += 1
            _close_socket(sock)
            return None
        if hello is None:
            _close_socket(sock)
            return None
        refusal: str | None = None
        version: int | None = None
        if hello.get("type") != "hello":
            refusal = f"expected hello, got {hello.get('type')!r}"
        else:
            version = negotiate_version(hello)
            if version is None:
                refusal = (
                    f"protocol version mismatch: manager speaks "
                    f"v{MIN_PROTOCOL_VERSION}..v{PROTOCOL_VERSION}, node "
                    f"sent {hello.get('version')!r} (min "
                    f"{hello.get('min_version', hello.get('version'))!r})"
                )
        name = hello.get("node")
        capacity = hello.get("capacity")
        if refusal is None and (not isinstance(name, str) or not name):
            refusal = "hello carries no node name"
        if refusal is None and (
            not isinstance(capacity, int)
            or not 1 <= capacity <= _MAX_CAPACITY
        ):
            refusal = f"capacity must be 1..{_MAX_CAPACITY}, got {capacity!r}"
        if refusal is not None:
            with self._cond:
                self.health.corrupt_reports += 1
            try:
                send_frame(sock, {"type": "error", "reason": refusal})
            except OSError:
                pass
            _close_socket(sock)
            return None
        node = _NodeConnection(
            str(name), sock, int(capacity),  # type: ignore[arg-type]
            version=int(version),  # type: ignore[arg-type]
        )
        with self._cond:
            if self._closed:
                node.retired = True
                _close_socket(sock)
                return None
            returning = node.name in self._seen_names
            if self._dispatched and not returning and not self.allow_join:
                # The fleet is sealed: a *new* name mid-campaign is a
                # join, and joins were not allowed.  A returning node
                # (same name) is a reconnect and always welcome.
                refusal = (
                    f"fleet is sealed: node {node.name!r} is a "
                    "mid-campaign join and the manager was started "
                    "without --allow-join"
                )
                node.retired = True
                try:
                    send_frame(sock, {"type": "error", "reason": refusal})
                except OSError:
                    pass
                _close_socket(sock)
                return None
            stale = self._nodes.get(node.name)
            if stale is not None:
                # Idempotent re-registration: the node came back before
                # its old connection was noticed dead.  Retire the stale
                # state (requeueing its in-flight chunk) and replace it.
                self._retire_locked(stale)
                stale.outbox.put(_CLOSE)
                _close_socket(stale.sock)
            if self._dispatched and not returning:
                # A genuine mid-campaign join: re-slice the remaining
                # queue so the joiner pulls a coherent region of the
                # fault space instead of the old plan's leftovers.
                self.mid_campaign_joins += 1
                if self._unassigned:
                    self._unassigned = deque(
                        self.partitioner.arrange(list(self._unassigned))
                    )
            self._seen_names.add(node.name)
            self._nodes[node.name] = node
            self.registrations += 1
            # Manager-side stamp: node clocks are not comparable here.
            self.monitor.beat(node.name)
            self._cond.notify_all()
        return node

    def _handle_frame(self, node: _NodeConnection, message: dict) -> bool:
        """Dispatch one validated frame; False ends the session."""
        kind = message["type"]
        if kind == "ready":
            slots = message.get("slots")
            if not isinstance(slots, int) or slots < 0:
                with self._cond:
                    self.health.corrupt_reports += 1
                return False
            with self._cond:
                node.slots = min(slots, node.capacity)
                self._flush_digests_locked(node)
                assigned = self._fill_nodes_locked()
                if not assigned:
                    node.enqueue({"type": "idle"})
            return True
        if kind == "drain":
            # Graceful leave (v3): stop feeding this node; deregister
            # it once its backlog empties.  Deliberately distinct from
            # crash detection — no requeue, no worker_death, and the
            # HeartbeatMonitor plays no part.
            with self._cond:
                if not node.drained:
                    node.draining = True
                    self._maybe_finish_drain_locked(node)
            return True
        if kind == "report":
            try:
                report = report_from_wire(message.get("report", {}))
            except WireError:
                with self._cond:
                    self.health.corrupt_reports += 1
                return False
            self._absorb_report(node, report)
            return True
        if kind == "report_batch":
            reports = message.get("reports")
            slots = message.get("slots")
            if not isinstance(reports, list) or not all(
                isinstance(r, TestReport) for r in reports
            ):
                with self._cond:
                    self.health.corrupt_reports += 1
                return False
            self._absorb_report_batch(
                node, reports, slots if isinstance(slots, int) else None
            )
            return True
        if kind == "heartbeat":
            with self._cond:
                executed = message.get("executed")
                busy = message.get("busy_seconds")
                if isinstance(executed, int):
                    # max(): reports absorbed since the last beat may
                    # already have advanced the manager-side count.
                    node.executed = max(node.executed, executed)
                if isinstance(busy, (int, float)):
                    node.busy_seconds = max(node.busy_seconds, float(busy))
            return True
        if kind == "bye":
            return False
        # Unknown-but-well-framed types are ignored for forward
        # compatibility within a protocol version.
        return True

    def _absorb_one_locked(
        self, node: _NodeConnection, report: TestReport
    ) -> None:
        """Classify and absorb one report (first-report-wins on steals)."""
        rid = report.request_id
        request = node.assigned.pop(rid, None)
        if request is None:
            if rid not in node.stolen_away:
                # Not addressed to in-flight work from this node:
                # either a stale duplicate or a fabricated id.
                self.health.corrupt_reports += 1
                return
            # The victim raced the steal frame and executed anyway.
            # Its report is as good as the thief's (determinism), so
            # the first to arrive wins; the loser is counted as pure
            # waste, never double-absorbed.
            node.stolen_away.discard(rid)
            request = self._pending.get(rid)
            if request is None:
                self.late_reports += 1
                return
        elif rid not in self._pending:
            # Legitimate but late: its round moved on and dropped
            # the request.  Discard — late reports never
            # double-account (same rule as FaultTolerantFabric).
            self.late_reports += 1
            return
        elif self._pending[rid] != request:
            # A zombie from an earlier round: the id was reused for a
            # *different* request after this node's round completed
            # behind its back (steal race, first report won).  The
            # node executed the old request — absorbing its report
            # for the new one would record the wrong result.
            self.late_reports += 1
            return
        if rid in self._reports:
            self.steal_duplicates += 1
            return
        self.partitioner.observe(request, report)
        if self.fleet_cache is not None:
            self.fleet_cache.record(request, report)
        self._reports[rid] = report
        node.executed += 1
        node.busy_seconds += report.cost
        self.latency.observe(node.name, 1, report.cost)
        self.health.completed += 1

    def _absorb_report(self, node: _NodeConnection, report: TestReport) -> None:
        with self._cond:
            self._absorb_one_locked(node, report)
            self._maybe_finish_drain_locked(node)
            self._cond.notify_all()

    def _absorb_report_batch(
        self,
        node: _NodeConnection,
        reports: list[TestReport],
        slots: int | None,
    ) -> None:
        """Absorb one coalesced v2 report frame under a single lock.

        The frame's piggybacked ``slots`` is the node's post-chunk
        backpressure credit (what v1 sent as a separate ``ready``), so
        refilling happens here too — one lock round-trip per chunk
        instead of one per test.
        """
        with self._cond:
            for report in reports:
                self._absorb_one_locked(node, report)
            if slots is not None and not node.retired:
                node.slots = min(slots, node.capacity)
                self._flush_digests_locked(node)
                self._fill_nodes_locked()
            self._maybe_finish_drain_locked(node)
            self._cond.notify_all()

    def _writer_loop(self, node: _NodeConnection) -> None:
        while True:
            item = node.outbox.get()
            if item is _CLOSE:
                return
            try:
                node.sock.sendall(item)  # type: ignore[arg-type]
                with self._cond:
                    self.bytes_out += len(item)  # type: ignore[arg-type]
                    self.frames_out += 1
            except OSError:
                # Reader notices the dead socket and retires the node.
                _close_socket(node.sock)
                return

    # -- internals: scheduling (all called with self._cond held) ---------------

    def _send_chunk_locked(
        self, node: _NodeConnection, chunk: list[TestRequest]
    ) -> None:
        """Assign ``chunk`` to ``node`` and enqueue the work frame."""
        node.slots -= len(chunk)
        node.assigned.update({r.request_id: r for r in chunk})
        self._flush_digests_locked(node)
        started = time.perf_counter()
        if node.version >= 2:
            # The whole chunk is packed once, into one binary frame.
            data = encode_work_frame(chunk)
        else:
            data = encode_frame({
                "type": "work",
                "requests": [request_to_wire(r) for r in chunk],
            })
        self.encode_seconds += time.perf_counter() - started
        node.enqueue_raw(data)

    def _fill_nodes_locked(self) -> int:
        """Hand queued work to nodes with free slots; returns count sent.

        When the queue drains while credit is still outstanding, the
        leftover slots turn into work-stealing: backlog is reassigned
        from the most-loaded node instead of idling the fleet's tail.
        """
        sent = 0
        live = sorted(
            (
                n for n in self._nodes.values()
                if not n.retired and not n.draining and n.slots > 0
            ),
            key=lambda n: n.name,
        )
        for node in live:
            if not self._unassigned:
                break
            chunk: list[TestRequest] = []
            while self._unassigned and len(chunk) < node.slots:
                chunk.append(self._unassigned.popleft())
            if not chunk:
                continue
            self._send_chunk_locked(node, chunk)
            sent += len(chunk)
        if not self._unassigned and self._round is not None:
            sent += self._steal_locked()
        return sent

    def _steal_locked(self) -> int:
        """Reassign backlog from loaded nodes to idle slots.

        The victim is the live node with the longest *estimated
        remaining time* (backlog × per-node EWMA latency) among those
        with at least two stealable requests — the head of its queue is
        left alone because it is most likely already executing.  Only
        v3 victims qualify: the steal is announced with a ``steal``
        frame so the victim skips the revoked ids, and an older node
        cannot be relied on to honor one.  Each id is stolen at most
        once (no ping-pong between a fast pair of nodes).
        """
        moved = 0
        thieves = sorted(
            (
                n for n in self._nodes.values()
                if not n.retired and not n.draining and n.slots > 0
            ),
            key=lambda n: n.name,
        )
        for thief in thieves:
            while thief.slots > 0:
                victim = self._steal_victim_locked(thief)
                if victim is None:
                    break
                stealable = [
                    rid for rid in victim.assigned
                    if rid in self._pending and rid not in self._stolen_once
                ]
                take = min(thief.slots, len(stealable) - 1)
                if take <= 0:
                    break
                ids = stealable[-take:]
                chunk = [victim.assigned.pop(rid) for rid in ids]
                victim.stolen_away.update(ids)
                self._stolen_once.update(ids)
                # Revoke at the victim *before* the thief's work frame
                # is even queued: the victim is grinding serially, so
                # every skipped id is a whole execution saved.
                victim.enqueue({"type": "steal", "ids": ids})
                self._send_chunk_locked(thief, chunk)
                self.stolen += len(chunk)
                moved += len(chunk)
        return moved

    def _steal_victim_locked(
        self, thief: _NodeConnection
    ) -> _NodeConnection | None:
        """The node worth stealing from, by estimated remaining time."""
        best: _NodeConnection | None = None
        best_estimate = 0.0
        for node in self._nodes.values():
            if node.retired or node is thief or node.version < 3:
                continue
            backlog = sum(
                1 for rid in node.assigned
                if rid in self._pending and rid not in self._stolen_once
            )
            if backlog < 2:
                continue
            estimate = self.latency.estimate(node.name, backlog)
            if best is None or estimate > best_estimate:
                best, best_estimate = node, estimate
        return best

    def _flush_digests_locked(self, node: _NodeConnection) -> None:
        """Piggyback newly recorded dedup digests onto this credit."""
        if self.fleet_cache is None or node.version < 3 or node.retired:
            return
        cursor, batch = self.fleet_cache.digests_since(node.digest_cursor)
        node.digest_cursor = cursor
        for start in range(0, len(batch), 512):
            node.enqueue({
                "type": "digests",
                "digests": batch[start:start + 512],
            })

    def _maybe_finish_drain_locked(self, node: _NodeConnection) -> None:
        """Deregister a draining node whose backlog has emptied."""
        if not node.draining or node.drained or node.retired:
            return
        if node.assigned:
            return
        node.drained = True
        node.enqueue({"type": "shutdown", "reason": "drained"})
        self.graceful_leaves += 1
        self.health.graceful_exits += 1

    def _retire_locked(self, node: _NodeConnection) -> None:
        """Drop a connection; requeue its in-flight work (idempotent)."""
        if node.retired:
            return
        node.retired = True
        if self._nodes.get(node.name) is node:
            del self._nodes[node.name]
            self.latency.forget(node.name)
        stranded = [
            r for rid, r in node.assigned.items() if rid in self._pending
        ]
        node.assigned.clear()
        # Stolen-away ids belong to their thief now; losing the victim
        # must not requeue them (that would be the double-dispatch the
        # first-report-wins rule exists to prevent).
        node.stolen_away.clear()
        if stranded:
            # Requeue at the front: stranded work is the round's
            # critical path.
            self._unassigned.extendleft(reversed(stranded))
            self.requeued += len(stranded)
            self.health.record_retry("error", len(stranded))

    def _expire_stale_nodes_locked(self) -> None:
        """Declare silent nodes dead (heartbeat liveness enforcement)."""
        now = self._clock()
        for node in list(self._nodes.values()):
            if node.retired:
                continue
            last = self.monitor.last_beat(node.name)
            if last is not None and \
                    now - last >= self.monitor.liveness_timeout:
                # Closing the socket wakes the node's reader thread,
                # which performs the actual retire + requeue.
                self.health.worker_deaths += 1
                _close_socket(node.sock)
                node.outbox.put(_CLOSE)
                self._retire_locked(node)


class _Round:
    """One run_batch invocation's bookkeeping."""

    __slots__ = ("ids", "abandoned")

    def __init__(self, ids: set[int]) -> None:
        self.ids = ids
        self.abandoned = False


def _close_socket(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:  # pragma: no cover - close is best-effort
        pass


class ExplorerNode:
    """Node-side client: executes pulled work against a local target.

    Connects to a :class:`SocketFabric` manager, registers with its
    declared ``capacity`` and wire-version range, then loops: announce
    free slots (``ready``), execute the pulled chunk on a warm local
    :class:`~repro.cluster.manager.NodeManager`, and report results —
    one coalesced binary ``report_batch`` frame per chunk on the
    negotiated v2 data plane, or one JSON ``report`` frame per test
    plus a trailing ``ready`` when the manager only speaks v1.  A
    background thread emits ``heartbeat`` frames every
    ``heartbeat_interval`` seconds so a node grinding through a slow
    chunk is still visibly alive.

    A dropped connection (manager crash, network fault) sends the node
    into a reconnect loop with exponential backoff under
    ``reconnect_policy``; re-registration is idempotent manager-side.
    A ``shutdown`` frame ends :meth:`run` gracefully.  The attempt
    counter resets after every successful registration, so a bounded
    policy limits *consecutive* failures, not lifetime reconnects.

    Elastic-fleet behaviour on a v3 connection: the node honors
    ``steal`` frames by *skipping* revoked requests (polled between
    tests, so a steal lands mid-chunk), accumulates the fleet's dedup
    digests from ``digests`` broadcasts, and leaves gracefully via
    :meth:`request_drain` — or automatically after ``drain_after``
    executed tests — by sending a ``drain`` frame and waiting for the
    manager's ``shutdown``.  ``cache`` attaches a node-local
    :class:`~repro.core.cache.ResultCache` so re-executions (manager
    restart, requeue races) replay for free.
    """

    def __init__(
        self,
        connect: str | tuple[str, int],
        target_factory: TargetFactory,
        *,
        name: str | None = None,
        capacity: int = 4,
        step_budget: int = DEFAULT_STEP_BUDGET,
        reconnect_policy: RetryPolicy | None = None,
        heartbeat_interval: float = 1.0,
        connect_timeout: float = 5.0,
        wire_version: int = PROTOCOL_VERSION,
        cache: ResultCache | None = None,
        drain_after: int | None = None,
        sleep: Callable[[float], None] = time.sleep,
        injector_factory: Callable[[], object] | None = None,
    ) -> None:
        if capacity < 1 or capacity > _MAX_CAPACITY:
            raise ClusterError(
                f"node capacity must be 1..{_MAX_CAPACITY}, got {capacity}"
            )
        if not MIN_PROTOCOL_VERSION <= wire_version <= PROTOCOL_VERSION:
            raise ClusterError(
                f"wire version must be {MIN_PROTOCOL_VERSION}.."
                f"{PROTOCOL_VERSION}, got {wire_version}"
            )
        if heartbeat_interval <= 0:
            raise ClusterError(
                f"heartbeat interval must be positive, got {heartbeat_interval}"
            )
        self.endpoint = (
            parse_endpoint(connect) if isinstance(connect, str)
            else (str(connect[0]), int(connect[1]))
        )
        self.target_factory = target_factory
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.capacity = capacity
        self.step_budget = step_budget
        self.reconnect_policy = reconnect_policy or RetryPolicy(
            max_attempts=30, base_delay=0.05, max_delay=2.0
        )
        self.heartbeat_interval = heartbeat_interval
        self.connect_timeout = connect_timeout
        #: the highest protocol version this node offers; pin to 1 to
        #: emulate a legacy JSON node against a v2 manager.
        self.wire_version = wire_version
        #: the version actually agreed with the current manager.
        self._negotiated = MIN_PROTOCOL_VERSION
        if drain_after is not None and drain_after < 1:
            raise ClusterError(
                f"drain_after must be >= 1 tests, got {drain_after}"
            )
        self.cache = cache
        self.drain_after = drain_after
        #: optional zero-argument injector factory (e.g. a fault-model
        #: stack); None keeps the node manager's default libfi injector.
        self.injector_factory = injector_factory
        self._sleep = sleep
        self._rng = random.Random(0)
        self._stop = threading.Event()
        self._drain = threading.Event()
        self._drain_sent = False
        self._sock: socket.socket | None = None
        self._sock_lock = threading.Lock()
        self._manager: NodeManager | None = None
        #: ids revoked by ``steal`` frames — skipped, not executed.
        self._revoked: set[int] = set()
        #: fleet-wide dedup digests learned from ``digests`` broadcasts.
        self.known_digests: set[str] = set()
        #: lifetime counters, surfaced by the CLI banner.
        self.executed = 0
        self.connections = 0
        #: revoked requests this node skipped (work saved by a steal).
        self.stolen_skipped = 0
        #: executed requests whose digest the fleet had already seen.
        self.dedup_known = 0

    # -- lifecycle -------------------------------------------------------------

    def run(self) -> None:
        """Serve until the manager drains us (or the retry budget dies).

        Raises :class:`~repro.errors.ClusterError` when
        ``reconnect_policy.max_attempts`` *consecutive* connection
        attempts fail; returns normally after a ``shutdown`` frame or
        :meth:`stop`.
        """
        attempt = 0
        while not self._stop.is_set():
            try:
                sock = socket.create_connection(
                    self.endpoint, timeout=self.connect_timeout
                )
            except OSError as exc:
                attempt += 1
                if attempt >= self.reconnect_policy.max_attempts:
                    raise ClusterError(
                        f"node {self.name!r}: manager at "
                        f"{self.endpoint[0]}:{self.endpoint[1]} unreachable "
                        f"after {attempt} attempts: {exc!r}"
                    ) from exc
                self._sleep(
                    self.reconnect_policy.delay_for(attempt, self._rng)
                )
                continue
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - non-TCP test sockets
                pass
            with self._sock_lock:
                self._sock = sock
            try:
                registered, finished = self._serve(sock)
            except (OSError, WireError):
                registered, finished = False, False
            finally:
                with self._sock_lock:
                    self._sock = None
                _close_socket(sock)
            if finished or self._stop.is_set():
                return
            if registered:
                attempt = 0  # consecutive-failure budget, not lifetime
            attempt += 1
            if attempt >= self.reconnect_policy.max_attempts:
                raise ClusterError(
                    f"node {self.name!r}: {attempt} consecutive failed "
                    "sessions; giving up"
                )
            self._sleep(self.reconnect_policy.delay_for(attempt, self._rng))

    def run_in_thread(self) -> threading.Thread:
        """Serve from a daemon thread (in-process tests, embedding)."""
        thread = threading.Thread(
            target=self._run_quietly, name=f"explorer-node-{self.name}",
            daemon=True,
        )
        thread.start()
        return thread

    def _run_quietly(self) -> None:
        try:
            self.run()
        except ClusterError:
            pass  # retry budget exhausted; thread just ends

    def stop(self) -> None:
        """Abort the serve/reconnect loop from another thread."""
        self._stop.set()
        with self._sock_lock:
            if self._sock is not None:
                _close_socket(self._sock)

    def request_drain(self) -> None:
        """Leave the fleet gracefully: finish the backlog, then exit.

        Sends a ``drain`` frame (on the next serve-loop or heartbeat
        tick) telling the manager to stop feeding this node and to
        deregister it once its in-flight work is absorbed; the manager
        answers with a ``shutdown`` frame and :meth:`run` returns.
        Unlike :meth:`stop`, nothing is abandoned and nothing gets
        requeued — the distinction between *leaving* and *dying*.
        Requires a v3 manager; on an older negotiated connection the
        request stays pending until the node next talks to one.
        """
        self._drain.set()

    # -- one connected session -------------------------------------------------

    def _serve(self, sock: socket.socket) -> tuple[bool, bool]:
        """One session; returns (registered, finished-for-good)."""
        # Revocations are scoped to the manager session that issued
        # them: a connection that died mid-chunk skipped the usual
        # end-of-chunk reset, and honoring its leftovers against a
        # restarted manager (which reuses request ids) would silently
        # swallow fresh work.
        self._revoked.clear()
        write_lock = threading.Lock()

        def _send(message: dict) -> None:
            with write_lock:
                send_frame(sock, message)

        def _send_raw(data: bytes) -> None:
            with write_lock:
                sock.sendall(data)

        sock.settimeout(self.connect_timeout)
        _send({
            "type": "hello",
            "version": self.wire_version,
            "min_version": MIN_PROTOCOL_VERSION,
            "node": self.name,
            "capacity": self.capacity,
        })
        welcome = recv_frame(sock)
        if welcome is None:
            return False, False
        if welcome.get("type") == "error":
            reason = str(welcome.get("reason"))
            if self.wire_version > MIN_PROTOCOL_VERSION \
                    and "version" in reason:
                # A pre-negotiation manager refuses anything above its
                # own version outright: drop to the floor and reconnect
                # speaking v1 instead of giving up.
                self.wire_version = MIN_PROTOCOL_VERSION
                return False, False
            raise ClusterError(
                f"node {self.name!r} refused by manager: "
                f"{welcome.get('reason')}"
            )
        agreed = welcome.get("version")
        if welcome.get("type") != "welcome" or not isinstance(agreed, int) \
                or not MIN_PROTOCOL_VERSION <= agreed <= self.wire_version:
            raise ClusterError(
                f"node {self.name!r}: bad welcome frame {welcome!r}"
            )
        self._negotiated = agreed
        self.connections += 1
        self._drain_sent = False
        sock.settimeout(None)
        hb_stop = threading.Event()
        hb_thread = threading.Thread(
            target=self._heartbeat_loop, args=(_send, hb_stop),
            name=f"{self.name}-heartbeat", daemon=True,
        )
        hb_thread.start()
        #: frames drained off the socket mid-chunk (while polling for
        #: steal revocations) that the main loop must still handle.
        inbox: deque[dict] = deque()
        try:
            _send({"type": "ready", "slots": self.capacity})
            self._maybe_send_drain(_send)
            while True:
                message = inbox.popleft() if inbox else recv_frame(sock)
                if message is None:
                    return True, False  # manager dropped: reconnect
                kind = message.get("type")
                if kind == "work":
                    self._execute_chunk(message, _send, _send_raw,
                                        sock, inbox)
                    if self._stop.is_set():
                        return True, True
                    if self._negotiated < 2:
                        # v2 piggybacks the slot credit on the report
                        # batch; only the v1 data plane needs the
                        # separate ready frame.
                        _send({"type": "ready", "slots": self.capacity})
                    self._maybe_send_drain(_send)
                elif kind == "steal":
                    # Between chunks a revocation is usually stale (the
                    # chunk already reported), but a queued work frame
                    # may still be behind it in the socket buffer.
                    self._absorb_steal(message)
                elif kind == "digests":
                    self._absorb_digests(message)
                elif kind == "shutdown":
                    try:
                        _send({"type": "bye"})
                    except OSError:  # pragma: no cover - manager gone
                        pass
                    return True, True
                elif kind == "idle":
                    self._maybe_send_drain(_send)
                else:
                    continue  # forward compatibility
        finally:
            hb_stop.set()
            hb_thread.join(timeout=1.0)

    def _maybe_send_drain(self, send: Callable[[dict], None]) -> None:
        """Emit the graceful-leave frame once per drained session."""
        if not self._drain.is_set() or self._drain_sent:
            return
        if self._negotiated < 3:
            return  # an older manager has no drain path; stay pending
        self._drain_sent = True
        send({"type": "drain", "node": self.name})

    def _absorb_steal(self, message: dict) -> None:
        ids = message.get("ids")
        if isinstance(ids, list):
            self._revoked.update(
                i for i in ids
                if isinstance(i, int) and not isinstance(i, bool)
            )

    def _absorb_digests(self, message: dict) -> None:
        digests = message.get("digests")
        if isinstance(digests, list):
            self.known_digests.update(
                d for d in digests if isinstance(d, str)
            )

    def _poll_control(self, sock: socket.socket, inbox: deque) -> None:
        """Drain control frames already buffered on the socket.

        Called between tests inside a chunk so a ``steal`` revocation
        can still save the remaining stolen executions; any other frame
        is stashed for the main serve loop.  Zero-timeout select: this
        never blocks the executor.
        """
        if self._negotiated < 3:
            return
        while True:
            try:
                readable, _, _ = select.select([sock], [], [], 0)
            except (OSError, ValueError):  # pragma: no cover - closing
                return
            if not readable:
                return
            message = recv_frame(sock)
            if message is None:
                raise OSError("manager closed mid-chunk")
            kind = message.get("type")
            if kind == "steal":
                self._absorb_steal(message)
            elif kind == "digests":
                self._absorb_digests(message)
            else:
                inbox.append(message)

    def _execute_chunk(
        self,
        message: dict,
        send: Callable[[dict], None],
        send_raw: Callable[[bytes], None],
        sock: socket.socket | None = None,
        inbox: deque | None = None,
    ) -> None:
        """Run every request in a work frame and report the results.

        Over the v1 data plane each report streams back as its own JSON
        frame; over v2 the whole chunk's reports coalesce into a single
        binary ``report_batch`` frame that also carries the node's
        refreshed slot count.  On a v3 connection the socket is polled
        between tests so a ``steal`` revocation arriving mid-chunk
        skips the remaining stolen executions instead of duplicating
        them on the thief.
        """
        payloads = message.get("requests")
        if not isinstance(payloads, list):
            raise WireError(f"work frame without request list: {message!r}")
        manager = self._node_manager()
        if self._negotiated >= 2:
            reports: list[TestReport] = []
            for payload in payloads:
                request = (
                    payload if isinstance(payload, TestRequest)
                    else request_from_wire(payload)
                )
                if sock is not None and inbox is not None:
                    self._poll_control(sock, inbox)
                if request.request_id in self._revoked:
                    self._revoked.discard(request.request_id)
                    self.stolen_skipped += 1
                    continue
                if self.known_digests and scenario_digest(
                    request.subspace, request.scenario
                ) in self.known_digests:
                    self.dedup_known += 1
                reports.append(manager.execute(request))
                self.executed += 1
                if self.drain_after is not None \
                        and self.executed >= self.drain_after:
                    self._drain.set()
                if self._stop.is_set():
                    break
            self._revoked.clear()  # nothing outstanding past this chunk
            send_raw(encode_report_frame(reports, slots=self.capacity))
            return
        for payload in payloads:
            request = (
                payload if isinstance(payload, TestRequest)
                else request_from_wire(payload)
            )
            report = manager.execute(request)
            self.executed += 1
            if self.drain_after is not None \
                    and self.executed >= self.drain_after:
                self._drain.set()
            send({"type": "report", "report": report_to_wire(report)})
            if self._stop.is_set():
                return

    def _heartbeat_loop(
        self, send: Callable[[dict], None], stop: threading.Event
    ) -> None:
        while not stop.wait(self.heartbeat_interval):
            manager = self._manager
            try:
                # The serve loop usually sends the drain frame itself;
                # this covers request_drain() from another thread while
                # the node sits idle in recv_frame.
                self._maybe_send_drain(send)
                send({
                    "type": "heartbeat",
                    "node": self.name,
                    "executed": 0 if manager is None else manager.executed,
                    "busy_seconds":
                        0.0 if manager is None else manager.busy_seconds,
                    # Node-local monotonic time: NOT comparable to the
                    # manager's clock; carried for debugging only.  The
                    # manager stamps liveness with its own clock on
                    # receipt.
                    "sent_at": time.monotonic(),
                })
            except OSError:
                return

    def _node_manager(self) -> NodeManager:
        """The warm local executor (built on first work, then reused)."""
        if self._manager is None:
            self._manager = NodeManager(
                self.name, self.target_factory(),
                injector=(self.injector_factory()
                          if self.injector_factory is not None else None),
                step_budget=self.step_budget,
                cache=self.cache,
            )
        return self._manager

    def describe(self) -> str:
        return (
            f"explorer node {self.name!r} -> "
            f"{self.endpoint[0]}:{self.endpoint[1]}, "
            f"capacity {self.capacity}, {self.executed} tests executed"
        )
