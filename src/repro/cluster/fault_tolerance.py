"""Fault tolerance for execution fabrics: retries, deadlines, heartbeats.

AFEX's premise is that recovery code is where systems break — and a
fault-exploration harness is itself a system whose recovery code runs
constantly: workers die under the very faults they inject, dispatches
hang, and wire payloads get corrupted.  This module makes crashed,
timed-out, and garbled dispatches *first-class outcomes* instead of
campaign-ending events (the ZOFI lesson: fault-coverage campaigns only
scale when the harness tolerates its own failures).

Three cooperating pieces:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  deterministic jitter; pure arithmetic, shared by every fabric;
* :class:`FabricHealth` — an auditable counter record (retries by
  cause, timeouts, worker deaths, requeues) surfaced through reports,
  with the invariant that every retry is attributed to exactly one
  cause;
* :class:`HeartbeatMonitor` — per-worker last-liveness tracking fed by
  completed reports and explicit :class:`~repro.cluster.messages.
  WorkerHeartbeat` probes.

:class:`FaultTolerantFabric` composes them around *any* execution
fabric (thread pool, process pool, virtual, or a chaos-injecting test
double): it enforces a per-dispatch deadline, validates every report
against the requests it sent, requeues what is missing or corrupt, and
gives up only after the policy's attempt bound — at which point the
failure is a :class:`~repro.errors.ClusterError` with the full health
record attached.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, fields

from repro.cluster.messages import TestReport, TestRequest
from repro.errors import ClusterError

__all__ = [
    "RetryPolicy",
    "FabricHealth",
    "HeartbeatMonitor",
    "FaultTolerantFabric",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and jitter.

    ``max_attempts`` counts *dispatch* attempts, so ``3`` means one
    initial dispatch plus at most two retries.  The delay before retry
    ``n`` (1-based) is ``base_delay * multiplier**(n-1)``, capped at
    ``max_delay``, plus a uniform jitter of up to ``jitter`` times the
    capped delay — the standard decorrelation trick so requeued work
    from many explorers does not stampede a recovering fabric.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ClusterError(
                f"retry policy needs >= 1 attempt, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ClusterError("retry delays must be >= 0")
        if self.multiplier < 1.0:
            raise ClusterError(
                f"backoff multiplier must be >= 1, got {self.multiplier}"
            )
        if self.jitter < 0:
            raise ClusterError(f"jitter must be >= 0, got {self.jitter}")

    def delay_for(self, attempt: int, rng: random.Random | None = None) -> float:
        """Seconds to back off before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ClusterError(f"retry attempts are 1-based, got {attempt}")
        delay = min(self.base_delay * self.multiplier ** (attempt - 1),
                    self.max_delay)
        if self.jitter and rng is not None:
            delay += delay * self.jitter * rng.random()
        return delay

    def describe(self) -> str:
        return (
            f"{self.max_attempts} attempts, backoff "
            f"{self.base_delay}s x{self.multiplier} (cap {self.max_delay}s)"
        )


@dataclass
class FabricHealth:
    """Auditable counters for a fabric's fault-tolerance machinery.

    Invariant (checked by :meth:`accounted`): every requeued request is
    attributed to exactly one cause, so ``retries`` always equals the
    sum of the per-cause ``retried_after_*`` counters — "FabricHealth
    counters account for every retry".
    """

    #: dispatch rounds handed to the underlying fabric (incl. retries).
    dispatches: int = 0
    #: individual test requests sent, counting each re-dispatch.
    requests: int = 0
    #: requests that came back with a valid report.
    completed: int = 0
    #: requests requeued after a failed round (== sum of causes below).
    retries: int = 0
    retried_after_timeout: int = 0
    retried_after_error: int = 0
    retried_missing: int = 0
    retried_corrupt: int = 0
    #: dispatch rounds that hit the per-dispatch deadline.
    timeouts: int = 0
    #: dispatch rounds killed by a raised exception (dead worker).
    worker_deaths: int = 0
    #: worker pools torn down and rebuilt after a death or hang.
    worker_replacements: int = 0
    #: nodes that left gracefully (drain-then-deregister) — counted
    #: apart from ``worker_deaths`` because a drained node finished its
    #: backlog first: nothing was requeued and nothing was lost.
    graceful_exits: int = 0
    #: requests re-dispatched because their round outlived the deadline.
    stragglers: int = 0
    #: malformed or misaddressed reports discarded by validation.
    corrupt_reports: int = 0
    #: times a fabric degraded to its in-process fallback.
    fallbacks: int = 0

    _CAUSES = ("timeout", "error", "missing", "corrupt")

    def record_retry(self, cause: str, count: int = 1) -> None:
        """Attribute ``count`` requeued requests to one failure cause."""
        if cause not in self._CAUSES:
            raise ClusterError(f"unknown retry cause {cause!r}")
        self.retries += count
        name = f"retried_after_{cause}" if cause in ("timeout", "error") \
            else f"retried_{cause}"
        setattr(self, name, getattr(self, name) + count)

    def accounted(self) -> bool:
        """True iff every retry is attributed to exactly one cause."""
        return self.retries == (
            self.retried_after_timeout + self.retried_after_error
            + self.retried_missing + self.retried_corrupt
        )

    #: counters that describe *distinct failure events* rather than
    #: request flow.  When two layers observe the same traffic (a
    #: wrapper and the fabric it wraps), flow counters (``dispatches``,
    #: ``requests``, ``completed``) describe the *same* logical requests
    #: twice, but each retry/timeout/death is a distinct event seen by
    #: exactly one layer — so only these may be summed across layers.
    _LAYER_COUNTERS = (
        "retries", "retried_after_timeout", "retried_after_error",
        "retried_missing", "retried_corrupt", "timeouts", "worker_deaths",
        "worker_replacements", "graceful_exits", "stragglers",
        "corrupt_reports", "fallbacks",
    )

    def merge(self, other: "FabricHealth") -> "FabricHealth":
        """Fold another record's counters into this one.

        Sums *every* field — correct only when the two records describe
        disjoint traffic (e.g. two side-by-side fabrics).  For stacked
        layers observing the same requests, use :meth:`merge_layer`.
        """
        for spec in fields(self):
            setattr(self, spec.name,
                    getattr(self, spec.name) + getattr(other, spec.name))
        return self

    def merge_layer(self, other: "FabricHealth") -> "FabricHealth":
        """Fold an *inner layer's* record into this one without
        double-counting request flow.

        Only failure/recovery event counters are summed (each such
        event happens at exactly one layer); ``dispatches`` /
        ``requests`` / ``completed`` keep this record's values, since
        the inner layer saw the same logical requests this one did.
        Preserves the :meth:`accounted` invariant: both records satisfy
        it individually and the cause counters sum alongside
        ``retries``.
        """
        for name in self._LAYER_COUNTERS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def as_dict(self) -> dict[str, int]:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    def describe(self) -> str:
        return (
            f"{self.completed}/{self.requests} ok, {self.retries} retried "
            f"({self.retried_after_timeout} timeout, "
            f"{self.retried_after_error} error, "
            f"{self.retried_missing} missing, "
            f"{self.retried_corrupt} corrupt), "
            f"{self.worker_deaths} worker deaths, "
            f"{self.worker_replacements} replaced, "
            f"{self.fallbacks} fallbacks"
        )


class HeartbeatMonitor:
    """Tracks per-worker liveness from reports and heartbeat probes.

    Every valid report (and every explicit
    :class:`~repro.cluster.messages.WorkerHeartbeat`) counts as a beat
    from its worker.  A worker whose last beat is older than
    ``liveness_timeout`` is considered missing; fabrics use that to
    decide when a straggler should be re-dispatched and a worker
    replaced.  The clock is injectable so tests can advance time
    deterministically.
    """

    def __init__(
        self,
        liveness_timeout: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if liveness_timeout <= 0:
            raise ClusterError(
                f"liveness timeout must be positive, got {liveness_timeout}"
            )
        self.liveness_timeout = liveness_timeout
        self._clock = clock
        self._last_beat: dict[str, float] = {}
        #: total beats observed (reports + explicit heartbeats).
        self.beats = 0

    def beat(self, worker: str, at: float | None = None) -> None:
        """Record a liveness signal from ``worker``.

        **Clock contract:** ``at`` must be a value of *this monitor's
        own clock* (``time.monotonic()`` of the observing process, by
        default).  ``time.monotonic()`` values from *other processes*
        are not comparable — each process picks its own arbitrary
        epoch — so a caller must never forward a worker-supplied
        timestamp (e.g. :attr:`~repro.cluster.messages.WorkerHeartbeat.
        sent_at` received over a wire) as ``at``: a skewed node clock
        would make a live worker look hours dead, or a dead one immortal.
        Remote fabrics stamp beats on *receipt* instead — the socket
        fabric calls ``beat(worker)`` with no ``at`` the moment a frame
        arrives, so liveness is always judged against the manager-side
        clock.  Passing ``at`` is for same-process callers (and tests)
        that already hold a reading of this monitor's clock.
        """
        self._last_beat[worker] = self._clock() if at is None else at
        self.beats += 1

    def observe(self, message: object) -> None:
        """Beat from any message carrying a ``manager`` field."""
        manager = getattr(message, "manager", None)
        if manager:
            self.beat(str(manager))

    def last_beat(self, worker: str) -> float | None:
        return self._last_beat.get(worker)

    def workers(self) -> tuple[str, ...]:
        return tuple(sorted(self._last_beat))

    def alive(self, now: float | None = None) -> tuple[str, ...]:
        now = self._clock() if now is None else now
        return tuple(sorted(
            w for w, t in self._last_beat.items()
            if now - t < self.liveness_timeout
        ))

    def missing(self, now: float | None = None) -> tuple[str, ...]:
        """Workers whose last beat is older than the liveness timeout."""
        now = self._clock() if now is None else now
        return tuple(sorted(
            w for w, t in self._last_beat.items()
            if now - t >= self.liveness_timeout
        ))


class FaultTolerantFabric:
    """Wraps any execution fabric with deadlines, validation, and retry.

    The wrapper owns the whole recovery loop so inner fabrics stay
    simple: it dispatches the pending requests, validates every report
    that comes back (right type, right request id), requeues whatever
    is missing — because a worker died, the round outlived its
    deadline, or a report was corrupt — backs off per the
    :class:`RetryPolicy`, and re-dispatches.  Requests succeed
    independently: one poisoned request cannot lose its round-mates'
    results.

    ``dispatch_deadline`` bounds one round of ``inner.run_batch``; a
    round that outlives it is abandoned (its late reports are
    discarded, so a straggling worker cannot double-account) and its
    requests are re-dispatched.  ``sleep`` is injectable so tests can
    assert backoff schedules without waiting them out.
    """

    def __init__(
        self,
        inner: object,
        policy: RetryPolicy | None = None,
        dispatch_deadline: float | None = None,
        health: FabricHealth | None = None,
        monitor: HeartbeatMonitor | None = None,
        rng: random.Random | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if dispatch_deadline is not None and dispatch_deadline <= 0:
            raise ClusterError(
                f"dispatch deadline must be positive, got {dispatch_deadline}"
            )
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.dispatch_deadline = dispatch_deadline
        self.health = health or FabricHealth()
        self.monitor = monitor or HeartbeatMonitor()
        # Jitter only affects how long we sleep, never what we execute,
        # so a fixed default seed keeps whole runs reproducible.
        self._rng = rng or random.Random(0)
        self._sleep = sleep

    def __len__(self) -> int:
        return len(self.inner)  # type: ignore[arg-type]

    def run_batch(self, requests: list[TestRequest]) -> list[TestReport]:
        """Execute a batch, recovering lost work until the policy gives up.

        Reports return in request order, exactly like the raw fabrics,
        so explorer bookkeeping cannot tell recovery happened — except
        through :attr:`health`.
        """
        if not requests:
            return []
        reports: dict[int, TestReport] = {}
        pending = list(requests)
        attempt = 0
        while True:
            self.health.dispatches += 1
            self.health.requests += len(pending)
            received, round_cause = self._dispatch_once(pending)
            expected = {r.request_id for r in pending}
            corrupt_ids = self._absorb(received, expected, reports)
            pending = [r for r in pending if r.request_id not in reports]
            if not pending:
                break
            attempt += 1
            if attempt >= self.policy.max_attempts:
                raise ClusterError(
                    f"{len(pending)} dispatches still failing after "
                    f"{attempt} attempts ({self.policy.describe()}); "
                    f"fabric health: {self.health.describe()}"
                )
            for request in pending:
                if round_cause is not None:
                    self.health.record_retry(round_cause)
                elif request.request_id in corrupt_ids:
                    self.health.record_retry("corrupt")
                else:
                    self.health.record_retry("missing")
            delay = self.policy.delay_for(attempt, self._rng)
            if delay > 0:
                self._sleep(delay)
        return [reports[r.request_id] for r in requests]

    # -- internals -------------------------------------------------------------

    def _dispatch_once(
        self, pending: list[TestRequest]
    ) -> tuple[list[object], str | None]:
        """One round against the inner fabric.

        Returns the raw reports plus the round-level failure cause:
        ``"timeout"`` (deadline exceeded), ``"error"`` (the fabric
        raised — a dead worker), or ``None`` (the round returned;
        individual requests may still be missing or corrupt).
        """
        batch = list(pending)
        if self.dispatch_deadline is None:
            try:
                return list(self.inner.run_batch(batch)), None  # type: ignore[attr-defined]
            except Exception:
                self.health.worker_deaths += 1
                return [], "error"
        executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="ft-dispatch"
        )
        future = executor.submit(self.inner.run_batch, batch)  # type: ignore[attr-defined]
        try:
            return list(future.result(timeout=self.dispatch_deadline)), None
        except _FutureTimeout:
            # The round is abandoned: even if the straggling worker
            # finishes later, its future is dropped here, so its late
            # reports can never reach the explorer twice.
            self.health.timeouts += 1
            self.health.stragglers += len(batch)
            future.cancel()
            return [], "timeout"
        except Exception:
            self.health.worker_deaths += 1
            return [], "error"
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

    def _absorb(
        self,
        received: list[object],
        expected: set[int],
        reports: dict[int, TestReport],
    ) -> set[int]:
        """Validate a round's reports; returns ids with corrupt payloads."""
        corrupt_ids: set[int] = set()
        for report in received:
            request_id = getattr(report, "request_id", None)
            if (not isinstance(report, TestReport)
                    or request_id not in expected):
                self.health.corrupt_reports += 1
                if request_id in expected:
                    corrupt_ids.add(request_id)  # type: ignore[arg-type]
                continue
            reports[request_id] = report
            self.health.completed += 1
            self.monitor.observe(report)
        return corrupt_ids

    def combined_health(self) -> FabricHealth:
        """This layer's record folded with the inner fabric's own.

        A wrapped :class:`~repro.cluster.process_pool.ProcessPoolCluster`
        retries failed *chunks* internally before the wrapper ever sees
        a problem; those retries live in the pool's own health record.
        The combined view layers them in via
        :meth:`FabricHealth.merge_layer`, so every retry appears exactly
        once and request flow is not double-counted.  Returns a copy —
        neither layer's live record is mutated.
        """
        combined = FabricHealth(**self.health.as_dict())
        inner_health = getattr(self.inner, "health", None)
        if isinstance(inner_health, FabricHealth):
            combined.merge_layer(inner_health)
        return combined

    def poll_heartbeats(self) -> int:
        """Actively probe the inner fabric's managers for liveness.

        Fabrics that expose their managers (thread/virtual clusters)
        answer with :class:`~repro.cluster.messages.WorkerHeartbeat`
        messages; the count of beats observed is returned.  Fabrics
        without reachable managers (process pools) are passively
        monitored through report arrivals instead.
        """
        managers = getattr(self.inner, "managers", None)
        if not managers:
            return 0
        count = 0
        for manager in managers:
            self.monitor.observe(manager.heartbeat())
            count += 1
        return count

    def describe(self) -> str:
        inner = getattr(self.inner, "describe", lambda: type(self.inner).__name__)
        return (
            f"fault-tolerant[{inner()}]: {self.policy.describe()}, "
            f"deadline "
            f"{self.dispatch_deadline if self.dispatch_deadline else 'none'}"
        )
