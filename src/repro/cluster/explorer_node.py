"""The cluster explorer: batch-parallel exploration (§6.1).

Drives a search strategy exactly like
:class:`~repro.core.session.ExplorationSession`, but proposes a *batch*
of candidates per round and ships them to a cluster fabric.  Batched
proposal is sound for every bundled strategy: Algorithm 1 is "parallel
hill-climbing with a common pool of candidate states" (stochastic beam
search, §3), so generating several offspring before observing their
fitness is exactly the parallelism the paper's prototype exploits on
EC2.

Impact scoring stays explorer-side (unlike the prototype, whose managers
aggregate a local impact value) because the standard metric's
newly-covered-block component needs the *global* set of blocks seen —
a deliberate, documented deviation that only moves where a sum is
computed, not what is measured.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from pathlib import Path
from typing import Protocol

from repro.cluster.fault_tolerance import FabricHealth
from repro.cluster.messages import TestReport, TestRequest
from repro.core.checkpoint import Checkpoint, CheckpointWriter, replay_history
from repro.core.fault import Fault
from repro.core.faultspace import FaultSpace
from repro.core.impact import ImpactMetric
from repro.core.results import ExecutedTest, ResultSet
from repro.core.search.base import SearchStrategy
from repro.core.targets import SearchTarget
from repro.errors import ClusterError
from repro.injection.plan import InjectionPlan
from repro.quality.relevance import EnvironmentModel
from repro.sim.process import RunResult
from repro.util.rng import ensure_rng

__all__ = ["ClusterExplorer", "ExecutionFabric"]


class ExecutionFabric(Protocol):
    """What the explorer needs from a fabric: width and batch execution.

    Satisfied by :class:`~repro.cluster.local.LocalCluster` (threads),
    :class:`~repro.cluster.local.VirtualCluster` (virtual time), and
    :class:`~repro.cluster.process_pool.ProcessPoolCluster` (real
    cores).
    """

    def __len__(self) -> int: ...

    def run_batch(self, requests: list[TestRequest]) -> list[TestReport]: ...


class ClusterExplorer:
    """Explores a fault space by dispatching batches to node managers."""

    def __init__(
        self,
        cluster: ExecutionFabric,
        space: FaultSpace,
        metric: ImpactMetric,
        strategy: SearchStrategy,
        target: SearchTarget,
        rng: random.Random | int | None = None,
        batch_size: int | None = None,
        environment: EnvironmentModel | None = None,
        on_test: Callable[[ExecutedTest], None] | None = None,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 0,
        checkpoint_meta: dict[str, object] | None = None,
        resume_from: Checkpoint | None = None,
    ) -> None:
        self.cluster = cluster
        self.space = space
        self.metric = metric
        self.strategy = strategy
        self.target = target
        self.rng = ensure_rng(rng)
        self.environment = environment
        self.on_test = on_test
        self.batch_size = len(cluster) if batch_size is None else batch_size
        if self.batch_size < 1:
            raise ClusterError(f"batch size must be >= 1, got {self.batch_size}")
        self.resume_from = resume_from
        self.checkpointer = (
            CheckpointWriter(
                checkpoint_path, checkpoint_every, space, self.batch_size,
                meta=checkpoint_meta,
                meta_provider=self._health_meta,
            )
            if checkpoint_path is not None else None
        )
        self.executed: list[ExecutedTest] = []
        self._next_request_id = 0

    @property
    def health(self) -> FabricHealth | None:
        """The fabric's fault-tolerance record, when it keeps one."""
        return getattr(self.cluster, "health", None)

    def _health_meta(self) -> dict[str, object]:
        health = self.health
        return {"fabric_health": health.as_dict()} if health else {}

    def run(self) -> ResultSet:
        self.strategy.bind(self.space, self.rng)
        if self.resume_from is not None:
            replayed = replay_history(
                self.resume_from, self.strategy, self.batch_size,
                self.space, self._account_result, rng=self.rng,
            )
            # Replayed tests were dispatched by the original run;
            # request ids continue where it left off.
            self._next_request_id = replayed
        while not self.target.done(self.executed):
            batch = self._propose_batch()
            if not batch:
                break
            requests = [self._request_for(fault) for fault in batch]
            reports = self.cluster.run_batch(requests)
            for fault, report in zip(batch, reports):
                self._account(fault, report)
            if self.checkpointer is not None:
                self.checkpointer.maybe_write(self.executed, self.rng)
        if self.checkpointer is not None:
            self.checkpointer.maybe_write(self.executed, self.rng, force=True)
        return ResultSet(self.executed)

    def _propose_batch(self) -> list[Fault]:
        return self.strategy.propose_batch(self.batch_size)

    def _request_for(self, fault: Fault) -> TestRequest:
        request_id = self._next_request_id
        self._next_request_id += 1
        return TestRequest(
            request_id=request_id,
            subspace=fault.subspace,
            scenario=fault.as_dict(),
        )

    def _account(self, fault: Fault, report: TestReport) -> ExecutedTest:
        return self._account_result(fault, _report_to_result(fault, report))

    def _account_result(self, fault: Fault, result: RunResult) -> ExecutedTest:
        """Score, feed back, and record one result (live or replayed)."""
        impact = self.metric.score(result)
        if self.environment is not None:
            impact = self.environment.weight_impact(fault, impact)
        self.strategy.observe(fault, impact, result)
        executed = ExecutedTest(
            index=len(self.executed),
            fault=fault,
            result=result,
            impact=impact,
            fitness=impact,
        )
        self.executed.append(executed)
        if self.on_test is not None:
            self.on_test(executed)
        return executed


def _report_to_result(fault: Fault, report: TestReport) -> RunResult:
    """Reconstitute a RunResult view from a wire report.

    Fields the wire format does not carry (stdout, crash message) are
    empty; impact metrics and result-set analyses only consume the
    fields present.
    """
    return RunResult(
        test_id=int(fault.get("test", 0) or 0),
        test_name="",
        plan=InjectionPlan.none(),
        exit_code=report.exit_code,
        crash_kind=report.crash_kind,
        crash_message=None,
        crash_stack=None,
        injection_stack=report.injection_stack,
        injected=report.injected,
        coverage=report.coverage,
        steps=report.steps,
        measurements=dict(report.measurements),
        invariant_violations=report.invariant_violations,
    )
