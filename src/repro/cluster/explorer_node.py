"""The cluster explorer: batch-parallel exploration (§6.1).

Drives a search strategy exactly like
:class:`~repro.core.session.ExplorationSession`, but proposes a *batch*
of candidates per round and ships them to a cluster fabric.  Batched
proposal is sound for every bundled strategy: Algorithm 1 is "parallel
hill-climbing with a common pool of candidate states" (stochastic beam
search, §3), so generating several offspring before observing their
fitness is exactly the parallelism the paper's prototype exploits on
EC2.

Impact scoring stays explorer-side (unlike the prototype, whose managers
aggregate a local impact value) because the standard metric's
newly-covered-block component needs the *global* set of blocks seen —
a deliberate, documented deviation that only moves where a sum is
computed, not what is measured.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable
from pathlib import Path
from typing import Protocol

from repro.cluster.autobatch import AdaptiveBatchController
from repro.cluster.fault_tolerance import FabricHealth
from repro.cluster.messages import TestReport, TestRequest
from repro.core.checkpoint import Checkpoint, CheckpointWriter, replay_history
from repro.core.fault import Fault
from repro.core.faultspace import FaultSpace
from repro.core.impact import ImpactMetric
from repro.core.results import ExecutedTest, ResultSet
from repro.core.search.base import SearchStrategy
from repro.core.targets import SearchTarget
from repro.errors import CheckpointError, ClusterError
from repro.injection.plan import InjectionPlan
from repro.quality.online import OnlineClusters, QualityDelta
from repro.quality.relevance import EnvironmentModel
from repro.sim.process import RunResult
from repro.util.rng import ensure_rng

__all__ = ["ClusterExplorer", "ExecutionFabric"]


class ExecutionFabric(Protocol):
    """What the explorer needs from a fabric: width and batch execution.

    Satisfied by :class:`~repro.cluster.local.LocalCluster` (threads),
    :class:`~repro.cluster.local.VirtualCluster` (virtual time), and
    :class:`~repro.cluster.process_pool.ProcessPoolCluster` (real
    cores).
    """

    def __len__(self) -> int: ...

    def run_batch(self, requests: list[TestRequest]) -> list[TestReport]: ...


class ClusterExplorer:
    """Explores a fault space by dispatching batches to node managers."""

    def __init__(
        self,
        cluster: ExecutionFabric,
        space: FaultSpace,
        metric: ImpactMetric,
        strategy: SearchStrategy,
        target: SearchTarget,
        rng: random.Random | int | None = None,
        batch_size: "int | str | None" = None,
        environment: EnvironmentModel | None = None,
        on_test: Callable[[ExecutedTest], None] | None = None,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 0,
        checkpoint_meta: dict[str, object] | None = None,
        resume_from: Checkpoint | None = None,
        metrics: "object | None" = None,
        tracer: "object | None" = None,
        online_quality: bool = False,
        cluster_distance: int = 1,
        similarity_threshold: float = 0.0,
    ) -> None:
        self.cluster = cluster
        self.space = space
        self.metric = metric
        self.strategy = strategy
        self.target = target
        self.rng = ensure_rng(rng)
        self.environment = environment
        self.on_test = on_test
        #: the ``--batch-size auto`` controller; None for a fixed size.
        self.autobatch: AdaptiveBatchController | None = None
        if batch_size == "auto":
            if checkpoint_path is not None or resume_from is not None:
                raise ClusterError(
                    "adaptive batch sizing ('auto') cannot be combined "
                    "with checkpointing: replay requires a fixed batch "
                    "size to reproduce round boundaries"
                )
            self.autobatch = AdaptiveBatchController(len(cluster))
            self.batch_size = self.autobatch.batch_size()
        elif isinstance(batch_size, str):
            raise ClusterError(
                f"batch size must be a positive int or 'auto', "
                f"got {batch_size!r}"
            )
        else:
            self.batch_size = (
                len(cluster) if batch_size is None else batch_size
            )
        if self.batch_size < 1:
            raise ClusterError(f"batch size must be >= 1, got {self.batch_size}")
        self.resume_from = resume_from
        #: optional :class:`~repro.obs.metrics.MetricsRegistry` — the
        #: explorer reports dispatch latency, queue depth, per-round
        #: fitness, and (via collectors) fabric health and worker
        #: utilization into it.
        self.metrics = metrics
        #: optional :class:`~repro.obs.trace.Tracer` — rounds emit
        #: round/propose/dispatch/verdict spans, and worker-side
        #: execute/inject spans shipped back in reports are absorbed.
        self.tracer = tracer
        #: the streaming §5 quality stage; reports carry worker-computed
        #: stack digests so exact repeats cost one dict probe here.
        self.quality: OnlineClusters | None = (
            OnlineClusters(
                max_distance=cluster_distance,
                similarity_threshold=similarity_threshold,
            )
            if online_quality else None
        )
        #: per-round cluster movement (online quality only).
        self.quality_deltas: list[QualityDelta] = []
        self._quality_prev: dict[str, object] | None = None
        if self.quality is not None and metrics is not None:
            self.quality.bind_metrics(metrics)
        if metrics is not None:
            from repro.core.session import FITNESS_BUCKETS

            metrics.register_collector(self._collect_fabric)
            # Fabrics with their own export surface (the socket fabric's
            # wire/fleet gauges) hook into the same registry; the bind is
            # idempotent fabric-side.
            bind = getattr(cluster, "bind_metrics", None)
            if bind is None:
                bind = getattr(
                    getattr(cluster, "inner", None), "bind_metrics", None
                )
            if bind is not None:
                bind(metrics)
            if self.autobatch is not None:
                self.autobatch.bind_metrics(metrics)
            # Resolved once — series lookup is too costly per test.
            self._tests_counter = metrics.counter("session.tests")
            self._fitness_hist = metrics.histogram(
                "session.fitness", boundaries=FITNESS_BUCKETS
            )
        self.checkpointer = (
            CheckpointWriter(
                checkpoint_path, checkpoint_every, space, self.batch_size,
                meta=checkpoint_meta,
                meta_provider=self._health_meta,
            )
            if checkpoint_path is not None else None
        )
        self.executed: list[ExecutedTest] = []
        self._next_request_id = 0

    @property
    def health(self) -> FabricHealth | None:
        """The fabric's fault-tolerance record, when it keeps one.

        A :class:`~repro.cluster.fault_tolerance.FaultTolerantFabric`
        answers with its *combined* record — its own counters folded
        with the wrapped fabric's internal ones (e.g. a process pool's
        chunk retries) — so no retry disappears between the layers.
        """
        combined = getattr(self.cluster, "combined_health", None)
        if combined is not None:
            return combined()
        return getattr(self.cluster, "health", None)

    def fleet_stats(self) -> dict[str, object] | None:
        """Elastic-fleet accounting (stealing, membership, dedup) when
        the fabric keeps it — the socket fabric does; in-process
        fabrics answer None.  Reaches through a fault-tolerance
        wrapper the same way the metrics bind does."""
        stats = getattr(self.cluster, "fleet_stats", None)
        if stats is None:
            stats = getattr(
                getattr(self.cluster, "inner", None), "fleet_stats", None
            )
        return stats() if callable(stats) else None

    def _health_meta(self) -> dict[str, object]:
        health = self.health
        meta: dict[str, object] = (
            {"fabric_health": health.as_dict()} if health else {}
        )
        fleet = self.fleet_stats()
        if fleet is not None:
            meta["fleet"] = fleet
        if self.metrics is not None:
            from repro.obs.trace import TRACE_SCHEMA_VERSION

            meta["trace_schema"] = TRACE_SCHEMA_VERSION
            meta["metrics"] = self.metrics.snapshot()
        if self.quality is not None:
            meta["quality"] = self.quality.state_payload()
        return meta

    def _collect_fabric(self, registry) -> None:
        """Snapshot-time gauges: fabric health and worker utilization."""
        health = self.health
        if health is not None:
            for name, value in health.as_dict().items():
                registry.gauge(f"fabric.health.{name}").set(value)
        managers = getattr(self.cluster, "managers", None)
        inner = getattr(self.cluster, "inner", None)
        if managers is None and inner is not None:
            managers = getattr(inner, "managers", None)
        for manager in managers or []:
            registry.gauge(
                "fabric.worker_busy_seconds", worker=manager.name
            ).set(manager.busy_seconds)
            registry.gauge(
                "fabric.worker_executed", worker=manager.name
            ).set(manager.executed)

    def run(self) -> ResultSet:
        self.strategy.bind(self.space, self.rng)
        if self.resume_from is not None:
            replayed = replay_history(
                self.resume_from, self.strategy, self.batch_size,
                self.space, self._account_result, rng=self.rng,
            )
            # Replayed tests were dispatched by the original run;
            # request ids continue where it left off.
            self._next_request_id = replayed
            self._verify_quality_resume()
        round_number = 0
        while not self.target.done(self.executed):
            round_number += 1
            if self.tracer is None and self.metrics is None:
                batch = self._propose_batch()
                if not batch:
                    break
                requests = [self._request_for(fault) for fault in batch]
                dispatch_started = time.perf_counter()
                reports = self.cluster.run_batch(requests)
                self._observe_dispatch(
                    len(requests), time.perf_counter() - dispatch_started
                )
                for fault, report in zip(batch, reports):
                    self._account(fault, report)
                self._publish_quality_delta()
            elif not self._observed_round(round_number):
                break
            if self.checkpointer is not None:
                self.checkpointer.maybe_write(self.executed, self.rng)
        if self.checkpointer is not None:
            self.checkpointer.maybe_write(self.executed, self.rng, force=True)
        return ResultSet(self.executed)

    def _observed_round(self, round_number: int) -> bool:
        """One instrumented round; returns False when the space is dry.

        The dispatch span's id rides inside every request so worker-side
        ``execute``/``inject`` spans — possibly produced in another
        process — nest under it; the spans they ship back in reports
        are absorbed into this tracer's sinks.
        """
        from repro.obs.trace import Tracer

        tracer = self.tracer or Tracer(sinks=[])
        clock = self.metrics.clock if self.metrics is not None else None
        started = clock() if clock is not None else 0.0
        with tracer.span("round", round=round_number,
                         batch_size=self.batch_size):
            with tracer.span("propose"):
                batch = self._propose_batch()
            if not batch:
                return False
            dispatch = tracer.span("dispatch", requests=len(batch))
            with dispatch:
                trace_id = self.tracer.trace_id if self.tracer else None
                parent = dispatch.span_id if self.tracer else None
                requests = [
                    self._request_for(fault, trace_id, parent)
                    for fault in batch
                ]
                if self.metrics is not None:
                    self.metrics.gauge("fabric.queue_depth").set(len(requests))
                    self.metrics.gauge("fabric.batch.size").set(len(requests))
                    dispatch_started = time.perf_counter()
                    with self.metrics.timer("fabric.dispatch_seconds"):
                        reports = self.cluster.run_batch(requests)
                else:
                    dispatch_started = time.perf_counter()
                    reports = self.cluster.run_batch(requests)
                self._observe_dispatch(
                    len(requests), time.perf_counter() - dispatch_started
                )
            for report in reports:
                for span_event in getattr(report, "spans", ()):
                    tracer.emit(span_event)
            for fault, report in zip(batch, reports):
                executed = self._account(fault, report)
                with tracer.span("verdict", index=executed.index) as span:
                    span.set(impact=executed.impact,
                             failed=executed.result.failed)
            if self.quality is not None:
                with tracer.span("quality") as span:
                    delta = self._publish_quality_delta()
                    if delta is not None:
                        span.set(**delta.as_dict())
        if self.metrics is not None and clock is not None:
            elapsed = clock() - started
            self.metrics.counter("session.rounds").inc()
            self.metrics.histogram("session.round_seconds").observe(elapsed)
            if elapsed > 0:
                self.metrics.gauge("session.proposals_per_s").set(
                    len(batch) / elapsed
                )
        return True

    def _propose_batch(self) -> list[Fault]:
        return self.strategy.propose_batch(self.batch_size)

    def _observe_dispatch(self, tests: int, elapsed: float) -> None:
        """Feed one round's dispatch wall-clock to the batch controller."""
        if self.autobatch is not None:
            self.batch_size = self.autobatch.observe(tests, elapsed)

    def _request_for(
        self,
        fault: Fault,
        trace_id: str | None = None,
        parent_span: str | None = None,
    ) -> TestRequest:
        request_id = self._next_request_id
        self._next_request_id += 1
        return TestRequest(
            request_id=request_id,
            subspace=fault.subspace,
            scenario=fault.as_dict(),
            trace_id=trace_id,
            parent_span=parent_span,
        )

    def _account(self, fault: Fault, report: TestReport) -> ExecutedTest:
        return self._account_result(
            fault, _report_to_result(fault, report),
            stack_digest=getattr(report, "stack_digest", None),
        )

    def _account_result(
        self,
        fault: Fault,
        result: RunResult,
        stack_digest: str | None = None,
    ) -> ExecutedTest:
        """Score, feed back, and record one result (live or replayed).

        Checkpoint replay drives this path too (without the wire
        digest), so a resumed explorer rebuilds its cluster engine in
        exactly the recorded state.
        """
        impact = self.metric.score(result)
        if self.environment is not None:
            impact = self.environment.weight_impact(fault, impact)
        if self.metrics is not None:
            self._tests_counter.inc()
            self._fitness_hist.observe(impact)
        if self.quality is not None:
            update = self.quality.add(
                result.injection_stack, digest=stack_digest
            )
            self.strategy.observe(fault, impact, result,
                                  novelty=update.novelty)
        else:
            self.strategy.observe(fault, impact, result)
        executed = ExecutedTest(
            index=len(self.executed),
            fault=fault,
            result=result,
            impact=impact,
            fitness=impact,
        )
        self.executed.append(executed)
        if self.on_test is not None:
            self.on_test(executed)
        return executed

    def _publish_quality_delta(self) -> QualityDelta | None:
        """Record the round's cluster movement (online quality only)."""
        if self.quality is None:
            return None
        delta = self.quality.delta(
            len(self.quality_deltas) + 1, self._quality_prev
        )
        self._quality_prev = self.quality.stats()
        self.quality_deltas.append(delta)
        return delta

    def _verify_quality_resume(self) -> None:
        """Cross-check the replay-rebuilt cluster state against the
        checkpoint's recorded summary."""
        if self.quality is None or self.resume_from is None:
            return
        persisted = self.resume_from.meta.get("quality")
        if not isinstance(persisted, dict):
            return  # checkpoint predates online quality (or it was off)
        try:
            self.quality.verify_state(persisted)
        except ValueError as exc:
            raise CheckpointError(str(exc)) from None


def _report_to_result(fault: Fault, report: TestReport) -> RunResult:
    """Reconstitute a RunResult view from a wire report.

    Fields the wire format does not carry (stdout, crash message) are
    empty; impact metrics and result-set analyses only consume the
    fields present.
    """
    from repro.sim.libc import ProvenanceRecord

    return RunResult(
        test_id=int(fault.get("test", 0) or 0),
        test_name="",
        plan=InjectionPlan.none(),
        exit_code=report.exit_code,
        crash_kind=report.crash_kind,
        crash_message=None,
        crash_stack=None,
        injection_stack=report.injection_stack,
        injected=report.injected,
        coverage=report.coverage,
        steps=report.steps,
        measurements=dict(report.measurements),
        invariant_violations=report.invariant_violations,
        provenance=tuple(
            ProvenanceRecord.from_raw(row)
            for row in getattr(report, "provenance", ())
        ),
    )
