"""Explorer ↔ node-manager protocol messages.

Messages are plain frozen dataclasses whose payloads are all built-in
types, so they could be serialized onto a real wire unchanged.  The
scenario inside a :class:`TestRequest` is the AFEX-internal fault
representation (named attribute dict); the manager's plugins translate
it for the concrete injectors (§6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TestRequest", "TestReport", "WorkerHeartbeat"]


@dataclass(frozen=True)
class TestRequest:
    """Explorer → manager: please run this fault-injection scenario."""

    request_id: int
    #: subspace label of the fault (round-trips back into a Fault).
    subspace: str
    #: named fault attributes, e.g. {"test": 7, "function": "read", "call": 3}.
    scenario: dict[str, object]
    #: observability context (None when tracing is off): the explorer's
    #: trace id and the dispatch span the worker's spans should nest
    #: under.  Plain strings so the wire format stays picklable.
    trace_id: str | None = None
    parent_span: str | None = None

    def describe(self) -> str:
        attrs = " ".join(f"{k}={v}" for k, v in self.scenario.items())
        return f"request #{self.request_id}: {attrs}"


@dataclass(frozen=True)
class TestReport:
    """Manager → explorer: what happened when the scenario ran."""

    request_id: int
    manager: str
    #: did the target's test fail (crash, hang, or bad exit)?
    failed: bool
    crash_kind: str | None
    exit_code: int
    #: basic blocks covered during the run.
    coverage: frozenset[str]
    #: simulated stack at the injection point (None if nothing fired).
    injection_stack: tuple[str, ...] | None
    injected: bool
    steps: int
    #: aggregated sensor measurements.
    measurements: dict[str, float] = field(default_factory=dict)
    #: manager-side wall-clock (or virtual) execution cost in seconds.
    cost: float = 0.0
    #: violated always-true properties, if the target defines invariants.
    invariant_violations: tuple[str, ...] = ()
    #: worker-side span events (see :func:`repro.obs.trace.worker_spans`),
    #: shipped back across the process boundary for the explorer's
    #: tracer to absorb; empty when the request carried no trace id.
    spans: tuple = ()
    #: content digest of ``injection_stack`` (see
    #: :func:`repro.quality.online.stack_digest`), computed worker-side
    #: so the explorer's online clustering resolves exact repeats with
    #: one dict probe instead of re-hashing the whole stack on its hot
    #: path.  None when nothing fired.
    stack_digest: str | None = None
    #: call-level provenance log as plain row tuples (see
    #: :class:`repro.sim.libc.ProvenanceRecord`); empty unless the run
    #: was executed with provenance enabled (the replay path).
    provenance: tuple = ()

    @property
    def crashed(self) -> bool:
        return self.crash_kind in ("segfault", "abort")

    @property
    def hung(self) -> bool:
        return self.crash_kind == "hang"


@dataclass(frozen=True)
class WorkerHeartbeat:
    """Manager → explorer: liveness signal with load accounting.

    Emitted on demand by :meth:`~repro.cluster.manager.NodeManager.
    heartbeat` and consumed by the fault-tolerance layer's
    :class:`~repro.cluster.fault_tolerance.HeartbeatMonitor`; a worker
    whose beats stop arriving is declared dead and its in-flight work
    is re-dispatched.
    """

    manager: str
    #: tests executed so far (monotonic; a reset implies a restart).
    executed: int
    #: cumulative busy time in seconds.
    busy_seconds: float
    #: sender-side monotonic send time.  Only meaningful to the process
    #: that produced it: ``time.monotonic()`` epochs differ across
    #: processes, so a receiver on the far side of a wire must stamp
    #: liveness with its *own* clock on receipt, never with this value
    #: (see :meth:`repro.cluster.fault_tolerance.HeartbeatMonitor.beat`).
    sent_at: float
