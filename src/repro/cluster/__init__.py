"""The parallel testing substrate (§6, Fig. 2).

An :class:`~repro.cluster.explorer_node.ClusterExplorer` coordinates a
set of :class:`~repro.cluster.manager.NodeManager` instances.  The
explorer turns faults into :class:`~repro.cluster.messages.TestRequest`
messages; each manager converts the scenario to injector configuration
via its plugins, runs the startup/test/cleanup scripts, lets its sensors
measure the run, and replies with a
:class:`~repro.cluster.messages.TestReport`.

Three execution fabrics are provided:

* :class:`~repro.cluster.local.LocalCluster` — concurrency over a
  thread pool (this process plays every node; GIL-bound for the pure
  Python simulator);
* :class:`~repro.cluster.process_pool.ProcessPoolCluster` — real
  multi-core execution over warm worker processes with chunked
  round-robin dispatch (the closest analogue to the paper's one-manager
  -per-machine EC2 deployment);
* :class:`~repro.cluster.local.VirtualCluster` — deterministic
  *virtual-time* execution used by the §7.7 scalability experiment: the
  paper measured wall-clock scaling on 1-14 EC2 nodes, which we
  substitute with an explicit accounting of per-node busy time (valid
  because tests are independent — the "embarrassing parallelism" the
  paper leans on).

* :class:`~repro.cluster.socket_fabric.SocketFabric` — the *networked
  multi-node* fabric: a manager serves the length-prefixed wire
  protocol of :mod:`~repro.cluster.wire` over TCP (negotiated per
  connection: the batched binary v2 data plane, or v1 JSON for legacy
  nodes) while :class:`~repro.cluster.socket_fabric.ExplorerNode`
  processes connect, advertise capacity, and pull work with
  backpressure — the paper's actual 10-node/EC2 deployment shape (§4;
  see docs/DISTRIBUTED.md and docs/PERFORMANCE.md).  The fleet is
  *elastic* (protocol v3): idle slots steal backlog from the most
  loaded node, nodes join mid-campaign and leave gracefully
  (drain-then-deregister), and a
  :class:`~repro.cluster.fleet.FleetResultCache` dedups duplicate
  scenarios fleet-wide without moving the history digest.

Batch width per round is either fixed or steered online by
:class:`~repro.cluster.autobatch.AdaptiveBatchController`
(``--batch-size auto``), which grows batches until the fabric's fixed
per-round dispatch cost is amortized and shrinks them when feedback
staleness would hurt the search.

Every fabric can be hardened with the
:mod:`~repro.cluster.fault_tolerance` layer —
:class:`~repro.cluster.fault_tolerance.FaultTolerantFabric` adds
per-dispatch deadlines, report validation, retry with exponential
backoff, and heartbeat-based liveness tracking around any of them, and
the process pool replaces dead workers on its own.  The
:class:`~repro.cluster.chaos.ChaosCluster` test double sabotages
dispatches on purpose (kills, hangs, corrupt and dropped reports) to
prove the recovery machinery actually recovers.
"""

from repro.cluster.autobatch import AdaptiveBatchController, NodeLatencyTracker
from repro.cluster.chaos import ChaosCluster
from repro.cluster.explorer_node import ClusterExplorer, ExecutionFabric
from repro.cluster.fault_tolerance import (
    FabricHealth,
    FaultTolerantFabric,
    HeartbeatMonitor,
    RetryPolicy,
)
from repro.cluster.fleet import FleetResultCache, scenario_digest
from repro.cluster.local import LocalCluster, VirtualCluster
from repro.cluster.manager import NodeManager
from repro.cluster.messages import TestReport, TestRequest, WorkerHeartbeat
from repro.cluster.process_pool import ProcessPoolCluster
from repro.cluster.scripts import ScriptTarget, UserScripts
from repro.cluster.socket_fabric import (
    ExplorerNode,
    SensitivityPartitioner,
    SocketFabric,
)
from repro.cluster.wire import (
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    WireError,
)
from repro.cluster.sensors import (
    CoverageSensor,
    CrashSensor,
    ExitCodeSensor,
    Sensor,
    StepSensor,
)

__all__ = [
    "AdaptiveBatchController",
    "ChaosCluster",
    "ClusterExplorer",
    "CoverageSensor",
    "CrashSensor",
    "ExecutionFabric",
    "ExitCodeSensor",
    "ExplorerNode",
    "FabricHealth",
    "FaultTolerantFabric",
    "FleetResultCache",
    "HeartbeatMonitor",
    "LocalCluster",
    "MIN_PROTOCOL_VERSION",
    "NodeLatencyTracker",
    "NodeManager",
    "PROTOCOL_VERSION",
    "ProcessPoolCluster",
    "RetryPolicy",
    "ScriptTarget",
    "SensitivityPartitioner",
    "Sensor",
    "SocketFabric",
    "StepSensor",
    "WireError",
    "TestReport",
    "TestRequest",
    "UserScripts",
    "VirtualCluster",
    "WorkerHeartbeat",
    "scenario_digest",
]
