"""The explorer ↔ node wire protocol: framing and message codecs.

The networked fabric (:mod:`repro.cluster.socket_fabric`) speaks
**length-prefixed JSON** over TCP: every frame is a 4-byte big-endian
unsigned length followed by exactly that many bytes of UTF-8 JSON
encoding one message object.  JSON (rather than pickle) keeps the
protocol language-agnostic, auditable on the wire, and — critically for
a fault-injection harness — *safe to parse from a hostile or corrupted
peer*: a garbage frame is a :class:`WireError`, never remote code
execution and never a crashed manager.

Every message is a JSON object with a ``type`` field.  The protocol is
**versioned**: the first frame on a connection is the node's ``hello``
carrying :data:`PROTOCOL_VERSION`; the manager answers ``welcome`` (or
``error`` and a close, on a mismatch), so incompatible builds refuse to
pair instead of mis-parsing each other mid-campaign.

Message types (direction, purpose):

===============  ==============  ===============================================
``hello``        node → manager  register: version, node name, capacity
``welcome``      manager → node  registration accepted (echoes version)
``error``        manager → node  registration refused; connection closes
``ready``        node → manager  pull: node has ``slots`` free executors
``work``         manager → node  a chunk of :class:`TestRequest` payloads
``idle``         manager → node  no work right now; re-``ready`` after a beat
``report``       node → manager  one completed :class:`TestReport`
``heartbeat``    node → manager  liveness + load accounting
``shutdown``     manager → node  campaign over: drain in-flight work and exit
``bye``          node → manager  graceful disconnect
===============  ==============  ===============================================

:class:`TestRequest` and :class:`TestReport` are dataclasses of
built-in types, so they serialize naturally; the only impedance is that
JSON cannot represent tuples or frozensets.  Encoding canonicalizes
(tuple → list, frozenset → sorted list) and decoding reverses it, the
same convention :mod:`repro.core.checkpoint` uses, so a fault scenario
or an injection stack round-trips the wire bit-exactly.
"""

from __future__ import annotations

import json
import socket
import struct

from repro.cluster.messages import TestReport, TestRequest
from repro.errors import ClusterError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "WireError",
    "encode_frame",
    "send_frame",
    "recv_frame",
    "request_to_wire",
    "request_from_wire",
    "report_to_wire",
    "report_from_wire",
    "parse_endpoint",
]

#: bump on any incompatible change to framing or message schemas.
PROTOCOL_VERSION = 1

#: upper bound on one frame's payload.  A report for the largest
#: simulated run is a few tens of kilobytes; anything near this bound
#: is a corrupted or malicious length prefix, not a real message.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class WireError(ClusterError):
    """A frame was truncated, oversized, or not valid protocol JSON."""


def encode_frame(message: dict) -> bytes:
    """One message as bytes: 4-byte big-endian length + UTF-8 JSON."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(limit {MAX_FRAME_BYTES})"
        )
    return _LENGTH.pack(len(payload)) + payload


def send_frame(sock: socket.socket, message: dict) -> int:
    """Write one framed message; returns the bytes put on the wire."""
    data = encode_frame(message)
    sock.sendall(data)
    return len(data)


def _recv_exactly(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes, or None on clean EOF at a frame
    boundary; EOF *inside* a frame is a :class:`WireError`."""
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            if len(chunks) == 0:
                return None
            raise WireError(
                f"connection closed mid-frame "
                f"({count - remaining}/{count} bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket, counter: "object | None" = None
) -> dict | None:
    """Read one framed message; None on clean EOF.

    ``counter``, when given, is called with the frame's total wire size
    (header + payload) — how the manager accounts inbound bytes without
    a second pass over the stream.

    Raises :class:`WireError` on a truncated frame, an oversized or
    zero length prefix, undecodable bytes, or JSON that is not an
    object with a string ``type`` — the caller must treat the
    connection as poisoned (framing state is unrecoverable once the
    byte stream desynchronizes).
    """
    header = _recv_exactly(sock, _LENGTH.size)
    if header is None:
        return None
    # A partial header is mid-frame EOF too, handled in _recv_exactly.
    (length,) = _LENGTH.unpack(header)
    if length == 0 or length > MAX_FRAME_BYTES:
        raise WireError(f"invalid frame length {length}")
    payload = _recv_exactly(sock, length)
    if payload is None:
        raise WireError("connection closed between length prefix and payload")
    if counter is not None:
        counter(_LENGTH.size + length)
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable frame: {exc}") from None
    if not isinstance(message, dict) or not isinstance(message.get("type"), str):
        raise WireError(f"frame is not a typed message object: {message!r}")
    return message


# -- value canonicalization -----------------------------------------------------


def _canonical(value: object) -> object:
    """JSON-stable view of a scenario value (tuples become lists)."""
    if isinstance(value, tuple):
        return [_canonical(v) for v in value]
    return value


def _decanonical(value: object) -> object:
    """Inverse of :func:`_canonical`: JSON lists become tuples again."""
    if isinstance(value, list):
        return tuple(_decanonical(v) for v in value)
    return value


# -- message codecs -------------------------------------------------------------


def request_to_wire(request: TestRequest) -> dict:
    """A :class:`TestRequest` as a JSON-safe payload dict."""
    return {
        "request_id": request.request_id,
        "subspace": request.subspace,
        "scenario": [
            [name, _canonical(value)]
            for name, value in request.scenario.items()
        ],
        "trace_id": request.trace_id,
        "parent_span": request.parent_span,
    }


def request_from_wire(payload: dict) -> TestRequest:
    try:
        return TestRequest(
            request_id=int(payload["request_id"]),
            subspace=str(payload["subspace"]),
            scenario={
                str(name): _decanonical(value)
                for name, value in payload["scenario"]
            },
            trace_id=payload.get("trace_id"),
            parent_span=payload.get("parent_span"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed test request: {exc!r}") from None


def report_to_wire(report: TestReport) -> dict:
    """A :class:`TestReport` as a JSON-safe payload dict.

    ``coverage`` is sorted so identical reports encode to identical
    bytes; ``spans`` are already plain dicts (see
    :func:`repro.obs.trace.worker_spans`), so worker-side trace spans
    cross the wire unchanged.
    """
    return {
        "request_id": report.request_id,
        "manager": report.manager,
        "failed": report.failed,
        "crash_kind": report.crash_kind,
        "exit_code": report.exit_code,
        "coverage": sorted(report.coverage),
        "injection_stack": (
            list(report.injection_stack)
            if report.injection_stack is not None else None
        ),
        "injected": report.injected,
        "steps": report.steps,
        "measurements": dict(report.measurements),
        "cost": report.cost,
        "invariant_violations": list(report.invariant_violations),
        "spans": [dict(span) for span in report.spans],
        "stack_digest": report.stack_digest,
    }


def report_from_wire(payload: dict) -> TestReport:
    try:
        return TestReport(
            request_id=int(payload["request_id"]),
            manager=str(payload["manager"]),
            failed=bool(payload["failed"]),
            crash_kind=payload["crash_kind"],
            exit_code=int(payload["exit_code"]),
            coverage=frozenset(payload["coverage"]),
            injection_stack=(
                tuple(payload["injection_stack"])
                if payload["injection_stack"] is not None else None
            ),
            injected=bool(payload["injected"]),
            steps=int(payload["steps"]),
            measurements={
                str(k): float(v) for k, v in payload["measurements"].items()
            },
            cost=float(payload["cost"]),
            invariant_violations=tuple(payload["invariant_violations"]),
            spans=tuple(payload.get("spans", ())),
            stack_digest=payload.get("stack_digest"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed test report: {exc!r}") from None


def parse_endpoint(text: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)``, validating the port range."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ClusterError(
            f"endpoint must look like HOST:PORT, got {text!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ClusterError(f"invalid port in endpoint {text!r}") from None
    if not 0 <= port <= 65535:
        raise ClusterError(f"port out of range in endpoint {text!r}")
    return host, port
