"""The explorer ↔ node wire protocol: framing, codecs, and versioning.

Every frame is a 4-byte big-endian unsigned length followed by exactly
that many payload bytes.  Two payload encodings coexist on one stream:

* **JSON (protocol v1, and all control frames in v2)** — UTF-8 JSON
  encoding one message object with a string ``type`` field.  JSON keeps
  the control plane language-agnostic and auditable on the wire.
* **Binary (protocol v2, data plane only)** — a struct-packed batched
  encoding introduced because the JSON data plane cost ~977 bytes and
  1.67 frames *per test* (see ``docs/PERFORMANCE.md``).  A binary
  payload is recognized by its first byte, :data:`BINARY_MAGIC`
  (``0xAF``); a JSON object always starts with ``{`` so the two cannot
  be confused.  One ``work`` frame carries N packed requests; one
  ``report_batch`` frame carries N packed reports *plus* the node's
  free-slot count, so the v1 per-test ``report`` frames and the
  trailing ``ready`` frame collapse into a single frame per chunk.

Neither encoding is ever pickle: a garbage frame from a hostile or
corrupted peer is a :class:`WireError`, never remote code execution and
never a crashed manager.

The protocol is **negotiated**: the first frame on a connection is the
node's JSON ``hello`` carrying the highest version it speaks
(``version``) and the lowest it accepts (``min_version``, default: the
same).  The manager answers ``welcome`` with the agreed version —
``min(manager_max, node_max)`` — or ``error`` and a close when the
ranges do not overlap.  A v1 JSON node therefore still pairs with a v2
manager and completes a whole campaign over the v1 data plane.

Message types (direction, purpose):

================  ==============  ==============================================
``hello``         node → manager  register: version range, node name, capacity
``welcome``       manager → node  registration accepted (carries agreed version)
``error``         manager → node  registration refused; connection closes
``ready``         node → manager  pull: node has ``slots`` free executors
``work``          manager → node  a chunk of :class:`TestRequest` payloads
``idle``          manager → node  no work right now; re-``ready`` after a beat
``report``        node → manager  v1: one completed :class:`TestReport`
``report_batch``  node → manager  v2: N packed reports + free-slot count
``heartbeat``     node → manager  liveness + load accounting
``drain``         node → manager  v3: graceful leave — stop feeding me, retire
                                  me once my in-flight backlog empties
``steal``         manager → node  v3: revoke ``ids`` reassigned to another node
``digests``       manager → node  v3: fleet result-cache digests (dedup sync)
``shutdown``      manager → node  campaign over: drain in-flight work and exit
``bye``           node → manager  graceful disconnect
================  ==============  ==============================================

:class:`TestRequest` and :class:`TestReport` are dataclasses of
built-in types.  Both encodings canonicalize the same way (tuple ↔
sequence, frozenset ↔ sorted sequence — the convention
:mod:`repro.core.checkpoint` uses), so a fault scenario or an injection
stack round-trips either wire bit-exactly and the two data planes are
digest-compatible.

Binary payload layout (all integers are LEB128 varints; signed values
zigzag-encoded; floats are big-endian IEEE-754 doubles)::

    payload   := 0xAF kind body
              |  0xAE inflated_size zlib(0xAF kind body)
                 (frames past 256 raw bytes travel deflated when that
                  is actually smaller; ``inflated_size`` bounds the
                  receiver's decompression, so a zip bomb dies on the
                  envelope check)
    kind      := 0x01 (work) | 0x02 (report_batch)
    work      := count request*
    request   := id subspace:str naxes (name:str value)* trace parent
    reports   := slots count report*
    report    := id manager:str flags [crash_kind:str] exit_code
                 ncov str* [nstack value*] steps nmeas (str number)*
                 cost:f64 nviol value* nspans value* [digest:str]
                 [nprov prov*]
    prov      := seq function:str call_number kind:str rflags
                 [resource:str]   (rflags bit0 = injected,
                                   bit1 = resource present)
    value     := tag payload   (None/bool/int/float/str/tuple/
                                frozenset/str-keyed dict)
    number    := 0x01 svarint  (integral values — most sensor
                                measurements are counters)
              |  0x00 f64

Strings are **interned per frame**: the first occurrence is sent
inline and assigned the next table index, later occurrences are a
1–2 byte back-reference.  Coverage sets repeat the same block names
across a batch's reports, which is where the bulk of the v1 byte cost
went.
"""

from __future__ import annotations

import json
import socket
import struct
import zlib

from repro.cluster.messages import TestReport, TestRequest
from repro.errors import ClusterError

__all__ = [
    "PROTOCOL_VERSION",
    "MIN_PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "MAX_BATCH_ITEMS",
    "BINARY_MAGIC",
    "DEFLATE_MAGIC",
    "WireError",
    "negotiate_version",
    "encode_frame",
    "encode_work_frame",
    "encode_report_frame",
    "decode_binary_frame",
    "send_frame",
    "recv_frame",
    "request_to_wire",
    "request_from_wire",
    "report_to_wire",
    "report_from_wire",
    "parse_endpoint",
]

#: the highest protocol version this build speaks; bump on any
#: incompatible change to framing or schemas.  v2 introduced the binary
#: data plane; v3 keeps it and adds the elastic-fleet JSON control
#: frames (``drain``, ``steal``, ``digests``) — still gated on the
#: negotiated version because a v2 peer, although it would *ignore* an
#: unknown well-framed type, must never be relied on to act on one.
PROTOCOL_VERSION = 3

#: the lowest version this build still interoperates with (the v1 JSON
#: data plane is kept alive for mixed fleets during a rolling upgrade).
MIN_PROTOCOL_VERSION = 1

#: upper bound on one frame's payload.  A report batch for the largest
#: simulated run is a few hundred kilobytes; anything near this bound
#: is a corrupted or malicious length prefix, not a real message.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: upper bound on requests/reports in one binary frame — a hostile
#: count must not convince the decoder to loop forever.
MAX_BATCH_ITEMS = 4096

#: first payload byte of a binary frame.  JSON payloads always start
#: with ``{`` (0x7B), so one byte disambiguates the encodings.
BINARY_MAGIC = 0xAF

#: first payload byte of a deflated binary frame: ``0xAE`` + uvarint
#: inflated-size + zlib stream of a :data:`BINARY_MAGIC` payload.
DEFLATE_MAGIC = 0xAE

#: deflate payloads above this size; below it the zlib header costs
#: more than the repetition it removes.
_DEFLATE_THRESHOLD = 256

_LENGTH = struct.Struct(">I")
_F64 = struct.Struct(">d")

_KIND_WORK = 0x01
_KIND_REPORT_BATCH = 0x02

#: value tags for the binary encoding.
_T_NONE, _T_FALSE, _T_TRUE, _T_INT, _T_FLOAT = 0, 1, 2, 3, 4
_T_STR, _T_TUPLE, _T_FROZENSET, _T_DICT = 5, 6, 7, 8

#: nesting bound for encoded values — scenario values are shallow;
#: anything deeper is hostile or a bug, and unbounded recursion on
#: decode would be a remote crash vector.
_MAX_VALUE_DEPTH = 32

#: varint byte bound: 64 payload bytes ≈ 448 bits of integer, far past
#: any legitimate request id, count, or scenario value.
_MAX_VARINT_BYTES = 64


class WireError(ClusterError):
    """A frame was truncated, oversized, or not a valid protocol payload."""


def negotiate_version(hello: dict) -> int | None:
    """The protocol version to speak with this peer, or None to refuse.

    The peer advertises the highest version it speaks (``version``) and
    optionally the lowest it accepts (``min_version``, defaulting to
    ``version``).  The agreed version is the highest both sides speak;
    the handshake fails only when the ranges do not overlap.
    """
    top = hello.get("version")
    if not isinstance(top, int) or isinstance(top, bool):
        return None
    low = hello.get("min_version", top)
    if not isinstance(low, int) or isinstance(low, bool) or low > top:
        return None
    agreed = min(PROTOCOL_VERSION, top)
    if agreed < low or agreed < MIN_PROTOCOL_VERSION:
        return None
    return agreed


def _framed(payload: bytes) -> bytes:
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(limit {MAX_FRAME_BYTES})"
        )
    return _LENGTH.pack(len(payload)) + payload


def _framed_binary(payload: bytes) -> bytes:
    """Frame a binary payload, deflating it when that actually pays.

    Coverage block names and axis values repeat heavily inside a batch;
    past :data:`_DEFLATE_THRESHOLD` bytes zlib roughly halves the frame
    on top of interning.  The envelope records the inflated size so the
    receiver can bound decompression before trusting the stream.
    """
    if len(payload) > _DEFLATE_THRESHOLD:
        size = bytearray()
        n = len(payload)
        while n > 0x7F:
            size.append((n & 0x7F) | 0x80)
            n >>= 7
        size.append(n)
        deflated = (
            bytes([DEFLATE_MAGIC]) + bytes(size)
            + zlib.compress(payload, 6)
        )
        if len(deflated) < len(payload):
            return _framed(deflated)
    return _framed(payload)


def _inflate(payload: bytes) -> bytes:
    """Undo the :data:`DEFLATE_MAGIC` envelope, bombs rejected."""
    r = _Reader(payload)
    if r.byte() != DEFLATE_MAGIC:
        raise WireError("not a deflated payload")
    size = r.uvarint()
    if size == 0 or size > MAX_FRAME_BYTES:
        raise WireError(f"deflated frame claims {size} inflated bytes")
    stream = zlib.decompressobj()
    try:
        # max_length = size + 1: one byte of slack so an overlong
        # stream is detected as a mismatch instead of truncated silently.
        inflated = stream.decompress(payload[r.pos:], size + 1)
    except zlib.error as exc:
        raise WireError(f"corrupt deflate stream: {exc}") from None
    if len(inflated) != size or not stream.eof or stream.unused_data \
            or stream.unconsumed_tail:
        raise WireError("deflated frame does not match its declared size")
    return inflated


def encode_frame(message: dict) -> bytes:
    """One JSON message as bytes: 4-byte big-endian length + UTF-8 JSON."""
    return _framed(json.dumps(message, separators=(",", ":")).encode("utf-8"))


def send_frame(sock: socket.socket, message: dict) -> int:
    """Write one framed JSON message; returns the bytes put on the wire."""
    data = encode_frame(message)
    sock.sendall(data)
    return len(data)


def _recv_exactly(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes, or None on clean EOF at a frame
    boundary; EOF *inside* a frame is a :class:`WireError`."""
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            if len(chunks) == 0:
                return None
            raise WireError(
                f"connection closed mid-frame "
                f"({count - remaining}/{count} bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket, counter: "object | None" = None
) -> dict | None:
    """Read one framed message; None on clean EOF.

    ``counter``, when given, is called with the frame's total wire size
    (header + payload) — how the manager accounts inbound bytes without
    a second pass over the stream.

    A payload starting with :data:`BINARY_MAGIC` is decoded by the v2
    binary codec (``work`` frames yield :class:`TestRequest` objects in
    ``requests``; ``report_batch`` frames yield :class:`TestReport`
    objects in ``reports`` plus ``slots``); anything else is parsed as
    JSON.  Raises :class:`WireError` on a truncated frame, an oversized
    or zero length prefix, undecodable bytes, or a payload that is not
    a typed message — the caller must treat the connection as poisoned
    (framing state is unrecoverable once the byte stream
    desynchronizes).
    """
    header = _recv_exactly(sock, _LENGTH.size)
    if header is None:
        return None
    # A partial header is mid-frame EOF too, handled in _recv_exactly.
    (length,) = _LENGTH.unpack(header)
    if length == 0 or length > MAX_FRAME_BYTES:
        raise WireError(f"invalid frame length {length}")
    payload = _recv_exactly(sock, length)
    if payload is None:
        raise WireError("connection closed between length prefix and payload")
    if counter is not None:
        counter(_LENGTH.size + length)
    if payload[0] in (BINARY_MAGIC, DEFLATE_MAGIC):
        return decode_binary_frame(payload)
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable frame: {exc}") from None
    if not isinstance(message, dict) or not isinstance(message.get("type"), str):
        raise WireError(f"frame is not a typed message object: {message!r}")
    return message


# -- binary codec (protocol v2) -------------------------------------------------


class _Writer:
    """Accumulates one binary payload with per-frame string interning."""

    __slots__ = ("buf", "_strings")

    def __init__(self) -> None:
        self.buf = bytearray()
        self._strings: dict[str, int] = {}

    def uvarint(self, n: int) -> None:
        buf = self.buf
        while n > 0x7F:
            buf.append((n & 0x7F) | 0x80)
            n >>= 7
        buf.append(n)

    def svarint(self, n: int) -> None:
        # Unbounded zigzag: non-negative n → 2n, negative n → -2n - 1.
        self.uvarint(-2 * n - 1 if n < 0 else 2 * n)

    def f64(self, v: float) -> None:
        self.buf += _F64.pack(v)

    def number(self, v: float) -> None:
        """A float that is usually a small integer (sensor measurements
        are almost all counters): 1 + zigzag varint when the value is
        integral, 0 + raw IEEE-754 otherwise.  Lossless both ways."""
        if v.is_integer() and abs(v) < 2.0 ** 53:
            self.buf.append(1)
            self.svarint(int(v))
        else:
            self.buf.append(0)
            self.f64(v)

    def string(self, s: str) -> None:
        """Interned string: index+1 back-reference, or 0 + inline bytes."""
        index = self._strings.get(s)
        if index is not None:
            self.uvarint(index + 1)
            return
        self.uvarint(0)
        raw = s.encode("utf-8")
        self.uvarint(len(raw))
        self.buf += raw
        self._strings[s] = len(self._strings)

    def value(self, v: object, depth: int = 0) -> None:
        """One tagged value; mirrors the JSON codec's canonicalization
        (lists encode as tuples, sets as frozensets)."""
        if depth > _MAX_VALUE_DEPTH:
            raise WireError(f"value nests deeper than {_MAX_VALUE_DEPTH}")
        buf = self.buf
        if v is None:
            buf.append(_T_NONE)
        elif v is True:
            buf.append(_T_TRUE)
        elif v is False:
            buf.append(_T_FALSE)
        elif isinstance(v, int):
            buf.append(_T_INT)
            self.svarint(v)
        elif isinstance(v, float):
            buf.append(_T_FLOAT)
            self.f64(v)
        elif isinstance(v, str):
            buf.append(_T_STR)
            self.string(v)
        elif isinstance(v, (tuple, list)):
            buf.append(_T_TUPLE)
            self.uvarint(len(v))
            for item in v:
                self.value(item, depth + 1)
        elif isinstance(v, (frozenset, set)):
            buf.append(_T_FROZENSET)
            items = sorted(v, key=repr)  # deterministic bytes
            self.uvarint(len(items))
            for item in items:
                self.value(item, depth + 1)
        elif isinstance(v, dict):
            buf.append(_T_DICT)
            self.uvarint(len(v))
            for key in sorted(v):  # deterministic bytes
                if not isinstance(key, str):
                    raise WireError(
                        f"wire dicts need string keys, got {key!r}"
                    )
                self.string(key)
                self.value(v[key], depth + 1)
        else:
            raise WireError(
                f"cannot encode a {type(v).__name__} on wire v2: {v!r}"
            )


class _Reader:
    """Bounds-checked decoder over one binary payload."""

    __slots__ = ("data", "pos", "_strings")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0
        self._strings: list[str] = []

    def _need(self, count: int) -> None:
        if self.pos + count > len(self.data):
            raise WireError(
                f"binary frame truncated at byte {self.pos} "
                f"(wanted {count} more of {len(self.data)})"
            )

    def byte(self) -> int:
        self._need(1)
        b = self.data[self.pos]
        self.pos += 1
        return b

    def uvarint(self) -> int:
        result = 0
        shift = 0
        for _ in range(_MAX_VARINT_BYTES):
            b = self.byte()
            result |= (b & 0x7F) << shift
            if not b & 0x80:
                return result
            shift += 7
        raise WireError(f"varint longer than {_MAX_VARINT_BYTES} bytes")

    def svarint(self) -> int:
        u = self.uvarint()
        return -((u + 1) >> 1) if u & 1 else u >> 1

    def f64(self) -> float:
        self._need(8)
        (v,) = _F64.unpack_from(self.data, self.pos)
        self.pos += 8
        return v

    def number(self) -> float:
        form = self.byte()
        if form == 1:
            return float(self.svarint())
        if form == 0:
            return self.f64()
        raise WireError(f"unknown number form {form}")

    def count(self, what: str) -> int:
        """A collection length; bounded by the bytes actually present
        (every element costs at least one byte), so a hostile count
        fails here instead of sizing a giant allocation."""
        n = self.uvarint()
        if n > len(self.data) - self.pos:
            raise WireError(f"{what} count {n} exceeds the frame")
        return n

    def string(self) -> str:
        index = self.uvarint()
        if index == 0:
            length = self.count("string byte")
            raw = self.data[self.pos:self.pos + length]
            self.pos += length
            try:
                s = raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise WireError(f"undecodable interned string: {exc}") from None
            self._strings.append(s)
            return s
        if index > len(self._strings):
            raise WireError(f"string back-reference {index} out of range")
        return self._strings[index - 1]

    def value(self, depth: int = 0) -> object:
        if depth > _MAX_VALUE_DEPTH:
            raise WireError(f"value nests deeper than {_MAX_VALUE_DEPTH}")
        tag = self.byte()
        if tag == _T_NONE:
            return None
        if tag == _T_FALSE:
            return False
        if tag == _T_TRUE:
            return True
        if tag == _T_INT:
            return self.svarint()
        if tag == _T_FLOAT:
            return self.f64()
        if tag == _T_STR:
            return self.string()
        if tag == _T_TUPLE:
            return tuple(
                self.value(depth + 1) for _ in range(self.count("tuple"))
            )
        if tag == _T_FROZENSET:
            return frozenset(
                self.value(depth + 1) for _ in range(self.count("frozenset"))
            )
        if tag == _T_DICT:
            return {
                self.string(): self.value(depth + 1)
                for _ in range(self.count("dict"))
            }
        raise WireError(f"unknown value tag {tag}")

    def finish(self) -> None:
        if self.pos != len(self.data):
            raise WireError(
                f"{len(self.data) - self.pos} trailing bytes after payload"
            )


def _batch_count(writer: _Writer, items: int, what: str) -> None:
    if items > MAX_BATCH_ITEMS:
        raise WireError(
            f"refusing to pack {items} {what} in one frame "
            f"(limit {MAX_BATCH_ITEMS})"
        )
    writer.uvarint(items)


def encode_work_frame(requests: "list[TestRequest]") -> bytes:
    """N requests as one framed v2 binary ``work`` payload."""
    w = _Writer()
    w.buf.append(BINARY_MAGIC)
    w.buf.append(_KIND_WORK)
    _batch_count(w, len(requests), "requests")
    for request in requests:
        w.svarint(request.request_id)
        w.string(request.subspace)
        w.uvarint(len(request.scenario))
        for name, value in request.scenario.items():
            w.string(name)
            w.value(value)
        w.value(request.trace_id)
        w.value(request.parent_span)
    return _framed_binary(bytes(w.buf))


# report flag bits.
_F_FAILED, _F_INJECTED = 0x01, 0x02
_F_CRASH_KIND, _F_STACK, _F_DIGEST = 0x04, 0x08, 0x10
#: report carries a call-level provenance log (absent on non-replay
#: runs, so ordinary campaign frames stay byte-identical).
_F_PROVENANCE = 0x20


def encode_report_frame(
    reports: "list[TestReport]", slots: int = 0
) -> bytes:
    """N reports + the node's free-slot count as one framed v2 payload.

    ``slots`` piggybacks the backpressure credit that v1 sent as a
    separate ``ready`` frame — one frame per chunk instead of N+1.
    ``coverage`` is sorted so identical reports encode to identical
    bytes.
    """
    if slots < 0:
        raise WireError(f"slots must be non-negative, got {slots}")
    w = _Writer()
    w.buf.append(BINARY_MAGIC)
    w.buf.append(_KIND_REPORT_BATCH)
    w.uvarint(slots)
    _batch_count(w, len(reports), "reports")
    for report in reports:
        w.svarint(report.request_id)
        w.string(report.manager)
        flags = (
            (_F_FAILED if report.failed else 0)
            | (_F_INJECTED if report.injected else 0)
            | (_F_CRASH_KIND if report.crash_kind is not None else 0)
            | (_F_STACK if report.injection_stack is not None else 0)
            | (_F_DIGEST if report.stack_digest is not None else 0)
            | (_F_PROVENANCE if report.provenance else 0)
        )
        w.buf.append(flags)
        if report.crash_kind is not None:
            w.string(str(report.crash_kind))
        w.svarint(report.exit_code)
        blocks = sorted(report.coverage)
        w.uvarint(len(blocks))
        for block in blocks:
            w.string(block)
        if report.injection_stack is not None:
            w.uvarint(len(report.injection_stack))
            for entry in report.injection_stack:
                w.value(entry)
        w.svarint(report.steps)
        w.uvarint(len(report.measurements))
        for key in sorted(report.measurements):
            w.string(str(key))
            w.number(float(report.measurements[key]))
        w.f64(float(report.cost))
        w.uvarint(len(report.invariant_violations))
        for violation in report.invariant_violations:
            w.value(violation)
        w.uvarint(len(report.spans))
        for span in report.spans:
            w.value(dict(span))
        if report.stack_digest is not None:
            w.string(report.stack_digest)
        if report.provenance:
            # (seq, function, call_number, kind, resource, injected)
            # rows; function/kind/resource names repeat heavily, so the
            # per-frame string interning does the compression.
            w.uvarint(len(report.provenance))
            for row in report.provenance:
                seq, function, call_number, kind, resource, injected = row
                w.uvarint(int(seq))
                w.string(str(function))
                w.uvarint(int(call_number))
                w.string(str(kind))
                rflags = (1 if injected else 0) | (
                    2 if resource is not None else 0
                )
                w.buf.append(rflags)
                if resource is not None:
                    w.string(str(resource))
    return _framed_binary(bytes(w.buf))


def _read_request(r: _Reader) -> TestRequest:
    request_id = r.svarint()
    subspace = r.string()
    scenario: dict[str, object] = {}
    for _ in range(r.count("scenario axis")):
        # Explicit ordering: the subscript-assignment form would
        # evaluate the value before the key.
        name = r.string()
        scenario[name] = r.value()
    trace_id = r.value()
    parent_span = r.value()
    if trace_id is not None and not isinstance(trace_id, str):
        raise WireError(f"trace id must be a string, got {trace_id!r}")
    if parent_span is not None and not isinstance(parent_span, str):
        raise WireError(f"parent span must be a string, got {parent_span!r}")
    return TestRequest(
        request_id=request_id,
        subspace=subspace,
        scenario=scenario,
        trace_id=trace_id,
        parent_span=parent_span,
    )


def _read_report(r: _Reader) -> TestReport:
    request_id = r.svarint()
    manager = r.string()
    flags = r.byte()
    crash_kind = r.string() if flags & _F_CRASH_KIND else None
    exit_code = r.svarint()
    coverage = frozenset(r.string() for _ in range(r.count("coverage block")))
    injection_stack = (
        tuple(r.value() for _ in range(r.count("stack entry")))
        if flags & _F_STACK else None
    )
    steps = r.svarint()
    measurements = {
        r.string(): r.number() for _ in range(r.count("measurement"))
    }
    cost = r.f64()
    invariant_violations = tuple(
        r.value() for _ in range(r.count("violation"))
    )
    spans = tuple(r.value() for _ in range(r.count("span")))
    if not all(isinstance(span, dict) for span in spans):
        raise WireError("report spans must decode to dicts")
    stack_digest = r.string() if flags & _F_DIGEST else None
    provenance: tuple = ()
    if flags & _F_PROVENANCE:
        rows = []
        for _ in range(r.count("provenance record")):
            seq = r.uvarint()
            function = r.string()
            call_number = r.uvarint()
            kind = r.string()
            rflags = r.byte()
            resource = r.string() if rflags & 2 else None
            rows.append(
                (seq, function, call_number, kind, resource,
                 bool(rflags & 1))
            )
        provenance = tuple(rows)
    return TestReport(
        request_id=request_id,
        manager=manager,
        failed=bool(flags & _F_FAILED),
        crash_kind=crash_kind,
        exit_code=exit_code,
        coverage=coverage,
        injection_stack=injection_stack,
        injected=bool(flags & _F_INJECTED),
        steps=steps,
        measurements=measurements,
        cost=cost,
        invariant_violations=invariant_violations,
        spans=spans,
        stack_digest=stack_digest,
        provenance=provenance,
    )


def decode_binary_frame(payload: bytes) -> dict:
    """One v2 binary payload as a typed message dict.

    ``work`` payloads decode to ``{"type": "work", "requests":
    [TestRequest, ...]}``; ``report_batch`` payloads to ``{"type":
    "report_batch", "reports": [TestReport, ...], "slots": int}``.
    Every malformation — bad magic, unknown kind or tag, truncation,
    hostile counts, dangling string references, trailing bytes — is a
    :class:`WireError`; the decoder never raises anything else and
    never executes peer-controlled code.
    """
    try:
        if payload[:1] == bytes([DEFLATE_MAGIC]):
            payload = _inflate(payload)
        r = _Reader(payload)
        if r.byte() != BINARY_MAGIC:
            raise WireError("binary payload without magic byte")
        kind = r.byte()
        if kind == _KIND_WORK:
            n = r.count("request")
            if n > MAX_BATCH_ITEMS:
                raise WireError(f"work batch of {n} exceeds {MAX_BATCH_ITEMS}")
            message: dict = {
                "type": "work",
                "requests": [_read_request(r) for _ in range(n)],
            }
        elif kind == _KIND_REPORT_BATCH:
            slots = r.uvarint()
            n = r.count("report")
            if n > MAX_BATCH_ITEMS:
                raise WireError(
                    f"report batch of {n} exceeds {MAX_BATCH_ITEMS}"
                )
            message = {
                "type": "report_batch",
                "slots": slots,
                "reports": [_read_report(r) for _ in range(n)],
            }
        else:
            raise WireError(f"unknown binary frame kind {kind}")
        r.finish()
        return message
    except WireError:
        raise
    except Exception as exc:
        # Defense in depth: any decoder bug surfaces as a poisoned
        # frame, not a crashed manager thread.
        raise WireError(f"malformed binary frame: {exc!r}") from None


# -- value canonicalization -----------------------------------------------------


def _canonical(value: object) -> object:
    """JSON-stable view of a scenario value (tuples become lists)."""
    if isinstance(value, tuple):
        return [_canonical(v) for v in value]
    return value


def _decanonical(value: object) -> object:
    """Inverse of :func:`_canonical`: JSON lists become tuples again."""
    if isinstance(value, list):
        return tuple(_decanonical(v) for v in value)
    return value


# -- JSON message codecs (protocol v1 data plane) -------------------------------


def request_to_wire(request: TestRequest) -> dict:
    """A :class:`TestRequest` as a JSON-safe payload dict."""
    return {
        "request_id": request.request_id,
        "subspace": request.subspace,
        "scenario": [
            [name, _canonical(value)]
            for name, value in request.scenario.items()
        ],
        "trace_id": request.trace_id,
        "parent_span": request.parent_span,
    }


def request_from_wire(payload: dict) -> TestRequest:
    try:
        return TestRequest(
            request_id=int(payload["request_id"]),
            subspace=str(payload["subspace"]),
            scenario={
                str(name): _decanonical(value)
                for name, value in payload["scenario"]
            },
            trace_id=payload.get("trace_id"),
            parent_span=payload.get("parent_span"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed test request: {exc!r}") from None


def report_to_wire(report: TestReport) -> dict:
    """A :class:`TestReport` as a JSON-safe payload dict.

    ``coverage`` is sorted so identical reports encode to identical
    bytes; ``spans`` are already plain dicts (see
    :func:`repro.obs.trace.worker_spans`), so worker-side trace spans
    cross the wire unchanged.
    """
    payload = {
        "request_id": report.request_id,
        "manager": report.manager,
        "failed": report.failed,
        "crash_kind": report.crash_kind,
        "exit_code": report.exit_code,
        "coverage": sorted(report.coverage),
        "injection_stack": (
            list(report.injection_stack)
            if report.injection_stack is not None else None
        ),
        "injected": report.injected,
        "steps": report.steps,
        "measurements": dict(report.measurements),
        "cost": report.cost,
        "invariant_violations": list(report.invariant_violations),
        "spans": [dict(span) for span in report.spans],
        "stack_digest": report.stack_digest,
    }
    if report.provenance:
        # Only present on replay-path reports, so ordinary campaign
        # frames are byte-identical with or without the field.
        payload["provenance"] = [list(row) for row in report.provenance]
    return payload


def report_from_wire(payload: dict) -> TestReport:
    try:
        return TestReport(
            request_id=int(payload["request_id"]),
            manager=str(payload["manager"]),
            failed=bool(payload["failed"]),
            crash_kind=payload["crash_kind"],
            exit_code=int(payload["exit_code"]),
            coverage=frozenset(payload["coverage"]),
            injection_stack=(
                tuple(payload["injection_stack"])
                if payload["injection_stack"] is not None else None
            ),
            injected=bool(payload["injected"]),
            steps=int(payload["steps"]),
            measurements={
                str(k): float(v) for k, v in payload["measurements"].items()
            },
            cost=float(payload["cost"]),
            invariant_violations=tuple(payload["invariant_violations"]),
            spans=tuple(payload.get("spans", ())),
            stack_digest=payload.get("stack_digest"),
            provenance=tuple(
                tuple(row) for row in payload.get("provenance", ())
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed test report: {exc!r}") from None


def parse_endpoint(text: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)``, validating the port range."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ClusterError(
            f"endpoint must look like HOST:PORT, got {text!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ClusterError(f"invalid port in endpoint {text!r}") from None
    if not 0 <= port <= 65535:
        raise ClusterError(f"port out of range in endpoint {text!r}")
    return host, port
