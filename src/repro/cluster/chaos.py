"""A chaos-injecting execution fabric: the fault injector's fault injector.

:class:`ChaosCluster` wraps any real fabric and sabotages a
configurable fraction of dispatches — killing the round (a raised
exception, as a dead worker produces), hanging past any deadline,
corrupting a report's payload, or silently dropping one.  It exists to
exercise :class:`~repro.cluster.fault_tolerance.FaultTolerantFabric`
the same way AFEX exercises recovery code: by making the unlikely
failure the common case.

Every sabotage is keyed on the victim's ``request_id`` and fires **at
most once per request**, so a bounded retry policy always converges:
a wrapped exploration under chaos must produce a result history
byte-identical to a fault-free run (the simulated world is
deterministic), with the damage visible only in the fabric's
:class:`~repro.cluster.fault_tolerance.FabricHealth` counters.  Kills
and hangs fire *before* the inner fabric executes, so sabotaged work
has no side effects to double-apply on retry.
"""

from __future__ import annotations

import random
import time

from repro.cluster.messages import TestReport, TestRequest
from repro.errors import ClusterError

__all__ = ["ChaosCluster", "ChaosError"]


class ChaosError(ClusterError):
    """Raised by a chaos kill: the worker executing the round 'died'."""


class _CorruptReport:
    """A garbled wire payload: right request id, wrong everything else."""

    def __init__(self, request_id: int) -> None:
        self.request_id = request_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<corrupt report for #{self.request_id}>"


class ChaosCluster:
    """Sabotages a fraction of dispatches against an inner fabric.

    Rates are probabilities in ``[0, 1]``, rolled once per request the
    first time it is dispatched (mutually exclusive, in the order kill,
    hang, corrupt, drop).  ``hang_seconds`` should exceed the wrapping
    fabric's ``dispatch_deadline`` so a hang actually looks hung;
    ``sleep`` is injectable so tests can count hangs without waiting.
    """

    def __init__(
        self,
        inner: object,
        kill_rate: float = 0.0,
        hang_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        drop_rate: float = 0.0,
        rng: random.Random | int | None = None,
        hang_seconds: float = 0.5,
        sleep=time.sleep,
    ) -> None:
        for name, rate in (("kill", kill_rate), ("hang", hang_rate),
                           ("corrupt", corrupt_rate), ("drop", drop_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ClusterError(
                    f"{name}_rate must be in [0, 1], got {rate}"
                )
        if kill_rate + hang_rate + corrupt_rate + drop_rate > 1.0:
            raise ClusterError("sabotage rates must sum to <= 1")
        self.inner = inner
        self.kill_rate = kill_rate
        self.hang_rate = hang_rate
        self.corrupt_rate = corrupt_rate
        self.drop_rate = drop_rate
        self.hang_seconds = hang_seconds
        self._sleep = sleep
        self._rng = rng if isinstance(rng, random.Random) else random.Random(rng)
        #: request_id -> planned sabotage ("kill"/"hang"/"corrupt"/"drop").
        self._plan: dict[int, str | None] = {}
        self._fired: set[int] = set()
        self.kills = 0
        self.hangs = 0
        self.corruptions = 0
        self.drops = 0

    def __len__(self) -> int:
        return len(self.inner)  # type: ignore[arg-type]

    @property
    def sabotages(self) -> int:
        """Total sabotages actually fired."""
        return self.kills + self.hangs + self.corruptions + self.drops

    def _decide(self, request_id: int) -> str | None:
        if request_id not in self._plan:
            roll = self._rng.random()
            edge = self.kill_rate
            if roll < edge:
                self._plan[request_id] = "kill"
            elif roll < (edge := edge + self.hang_rate):
                self._plan[request_id] = "hang"
            elif roll < (edge := edge + self.corrupt_rate):
                self._plan[request_id] = "corrupt"
            elif roll < edge + self.drop_rate:
                self._plan[request_id] = "drop"
            else:
                self._plan[request_id] = None
        return self._plan[request_id]

    def run_batch(self, requests: list[TestRequest]) -> list[TestReport]:
        # Round-level sabotage (kill/hang) fires before the inner fabric
        # runs anything, so a retried request re-executes from scratch
        # exactly once, never twice.
        for request in requests:
            rid = request.request_id
            if rid in self._fired:
                continue
            mode = self._decide(rid)
            if mode == "kill":
                self._fired.add(rid)
                self.kills += 1
                raise ChaosError(
                    f"chaos: worker died executing request #{rid}"
                )
            if mode == "hang":
                self._fired.add(rid)
                self.hangs += 1
                self._sleep(self.hang_seconds)
                return []  # the round's work is lost with the worker
        reports = list(self.inner.run_batch(list(requests)))  # type: ignore[attr-defined]
        # Report-level sabotage (corrupt/drop) hits individual payloads.
        sabotaged: list[object] = []
        for report in reports:
            rid = report.request_id
            if rid not in self._fired:
                mode = self._decide(rid)
                if mode == "corrupt":
                    self._fired.add(rid)
                    self.corruptions += 1
                    sabotaged.append(_CorruptReport(rid))
                    continue
                if mode == "drop":
                    self._fired.add(rid)
                    self.drops += 1
                    continue
            sabotaged.append(report)
        return sabotaged

    def describe(self) -> str:
        inner = getattr(self.inner, "describe",
                        lambda: type(self.inner).__name__)
        return (
            f"chaos[{inner()}]: kill={self.kill_rate} hang={self.hang_rate} "
            f"corrupt={self.corrupt_rate} drop={self.drop_rate} "
            f"({self.sabotages} fired)"
        )
