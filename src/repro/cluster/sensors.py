"""Sensors: measurement plugins attached to node managers (§6, Fig. 2).

"The sensors are instructed to run the developer-provided workload
scripts ... and perform measurements, which are then reported back to
the manager.  The manager aggregates these measurements into a single
impact value."  Here a sensor post-processes a completed
:class:`~repro.sim.process.RunResult` into named measurements, which the
manager merges into the :class:`~repro.cluster.messages.TestReport`.
New sensor kinds plug in by subclassing :class:`Sensor`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.sim.process import RunResult

__all__ = [
    "Sensor",
    "CoverageSensor",
    "ExitCodeSensor",
    "CrashSensor",
    "StepSensor",
    "InvariantSensor",
    "MeasurementPassthroughSensor",
]


class Sensor(ABC):
    """Turns a run outcome into named scalar measurements."""

    #: measurement namespace prefix.
    name: str = "sensor"

    @abstractmethod
    def measure(self, result: RunResult) -> dict[str, float]:
        """Named measurements extracted from the run."""


class CoverageSensor(Sensor):
    """How many basic blocks the run covered."""

    name = "coverage"

    def measure(self, result: RunResult) -> dict[str, float]:
        return {"coverage.blocks": float(len(result.coverage))}


class ExitCodeSensor(Sensor):
    """The target's exit status."""

    name = "exit"

    def measure(self, result: RunResult) -> dict[str, float]:
        return {
            "exit.code": float(result.exit_code),
            "exit.failed": 1.0 if result.failed else 0.0,
        }


class CrashSensor(Sensor):
    """Crash/hang classification flags."""

    name = "crash"

    def measure(self, result: RunResult) -> dict[str, float]:
        return {
            "crash.segfault": 1.0 if result.crash_kind == "segfault" else 0.0,
            "crash.abort": 1.0 if result.crash_kind == "abort" else 0.0,
            "crash.hang": 1.0 if result.crash_kind == "hang" else 0.0,
        }


class StepSensor(Sensor):
    """Execution cost in simulated libc calls (a latency proxy)."""

    name = "steps"

    def measure(self, result: RunResult) -> dict[str, float]:
        return {"steps.total": float(result.steps)}


class InvariantSensor(Sensor):
    """Counts violated always-true properties (data loss, torn state)."""

    name = "invariant"

    def measure(self, result: RunResult) -> dict[str, float]:
        return {"invariant.violations": float(len(result.invariant_violations))}


class MeasurementPassthroughSensor(Sensor):
    """Forwards measurements the program under test published itself."""

    name = "app"

    def measure(self, result: RunResult) -> dict[str, float]:
        return {f"app.{k}": float(v) for k, v in result.measurements.items()}


def default_sensors() -> tuple[Sensor, ...]:
    """The sensor set node managers install unless told otherwise."""
    return (
        CoverageSensor(),
        ExitCodeSensor(),
        CrashSensor(),
        StepSensor(),
        InvariantSensor(),
        MeasurementPassthroughSensor(),
    )
