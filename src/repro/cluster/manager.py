"""Node manager: runs scenarios on one (simulated) machine (§6.1).

"The node manager coordinates all tasks on a physical machine.  It
contains a set of plugins that convert fault descriptions from the
AFEX-internal representation to concrete configuration files and
parameters for the injectors and sensors."

Here, the manager owns a target, an injector registry, and a sensor
set.  Given a :class:`~repro.cluster.messages.TestRequest` it rebuilds
the injection plan through the plugin, executes the test hermetically,
lets every sensor measure the outcome, and returns a
:class:`~repro.cluster.messages.TestReport`.
"""

from __future__ import annotations

import time

from repro.cluster.messages import TestReport, TestRequest, WorkerHeartbeat
from repro.cluster.sensors import Sensor, default_sensors
from repro.core.cache import ResultCache
from repro.core.fault import Fault
from repro.core.runner import TargetRunner, injection_identity
from repro.errors import ClusterError
from repro.injection.injector import FaultInjector, InjectorRegistry
from repro.injection.libfi import LibFaultInjector
from repro.obs.trace import worker_spans
from repro.quality.online import stack_digest
from repro.sim.testsuite import Target

__all__ = ["NodeManager"]


class NodeManager:
    """Executes test requests against a target with sensors attached."""

    def __init__(
        self,
        name: str,
        target: Target,
        injector: FaultInjector | None = None,
        sensors: tuple[Sensor, ...] | None = None,
        step_budget: int = 50_000,
        cache: ResultCache | None = None,
        metrics: "object | None" = None,
    ) -> None:
        if not name:
            raise ClusterError("node manager needs a non-empty name")
        self.name = name
        self.target = target
        self.registry = InjectorRegistry()
        self.registry.register(injector or LibFaultInjector())
        self._injector_name = (injector or LibFaultInjector()).name
        self.sensors = sensors if sensors is not None else default_sensors()
        # The cache is thread-safe, so one instance may back every
        # manager of a thread-pool fabric.  The metrics registry (a
        # :class:`~repro.obs.metrics.MetricsRegistry`, shared the same
        # way on in-process fabrics) receives the simulator-layer
        # series: injected calls by function/errno, tests by manager.
        self.metrics = metrics
        if metrics is not None:
            self._tests_counter = metrics.counter(
                "manager.tests", manager=name
            )
        #: the result cache backing this manager's runner (None when
        #: caching is off); kept addressable so fleet tests can assert
        #: "no double execution" straight from its hit/miss stats.
        self.cache = cache
        self._runner = TargetRunner(
            target, self.registry.get(self._injector_name),
            step_budget=step_budget, cache=cache, metrics=metrics,
        )
        #: total tests executed by this manager (load accounting).
        self.executed = 0
        #: cumulative execution cost in seconds.
        self.busy_seconds = 0.0

    def execute(self, request: TestRequest) -> TestReport:
        """Run one scenario and report the outcome."""
        fault = Fault(request.subspace, tuple(request.scenario.items()))
        started = time.perf_counter()
        result = self._runner(fault)
        cost = time.perf_counter() - started

        measurements: dict[str, float] = {}
        for sensor in self.sensors:
            measurements.update(sensor.measure(result))

        self.executed += 1
        self.busy_seconds += cost
        if self.metrics is not None:
            self._tests_counter.inc()
        spans: tuple = ()
        if request.trace_id is not None:
            function, errno = injection_identity(result)
            spans = worker_spans(
                request.trace_id, request.parent_span, request.request_id,
                self.name, started, started + cost,
                injected_function=function, injected_errno=errno,
            )
        return TestReport(
            request_id=request.request_id,
            manager=self.name,
            failed=result.failed,
            crash_kind=result.crash_kind,
            exit_code=result.exit_code,
            coverage=result.coverage,
            injection_stack=result.injection_stack,
            injected=result.injected,
            steps=result.steps,
            measurements=measurements,
            cost=cost,
            invariant_violations=result.invariant_violations,
            spans=spans,
            stack_digest=stack_digest(result.injection_stack),
            provenance=tuple(tuple(r) for r in result.provenance),
        )

    def cache_stats(self) -> dict[str, int | float] | None:
        """The backing :class:`~repro.core.cache.ResultCache` stats.

        Returns None when the manager runs uncached.  ``misses`` is the
        count of *real* executions: a scenario replayed from the cache
        (a requeue race, a manager restart re-dispatch) never reaches
        the simulator, so ``misses == unique scenarios`` is the
        machine-checkable statement "nothing executed twice".
        """
        return None if self.cache is None else self.cache.stats()

    def heartbeat(self) -> WorkerHeartbeat:
        """Liveness probe: who I am and how much I have done.

        The fault-tolerance layer polls this between dispatch rounds;
        a manager that stops answering (or whose ``executed`` counter
        resets) is treated as dead and its work re-dispatched.
        """
        return WorkerHeartbeat(
            manager=self.name,
            executed=self.executed,
            busy_seconds=self.busy_seconds,
            sent_at=time.monotonic(),
        )

    def describe(self) -> str:
        return (
            f"manager {self.name!r}: {self.target.describe()}, "
            f"{len(self.sensors)} sensors, {self.executed} tests run"
        )
