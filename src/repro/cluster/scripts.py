"""User-provided startup/test/cleanup scripts (§6.1, §6.4 step 5).

The AFEX prototype drives each test through three user scripts: a
*startup* script that prepares the environment, a *test* script that
runs the system and the workload, and a *cleanup* script that removes
side effects.  :class:`ScriptTarget` packages three Python callables
into a :class:`~repro.sim.testsuite.Target`, so arbitrary user systems
can be explored without writing a target class — the lowest-effort
integration path, mirroring the paper's claim that adapting AFEX to a
new system "took on the order of hours."

Cleanup is implicit in this simulation: every run executes in a fresh
hermetic environment, so a cleanup script is optional and mostly useful
for asserting invariants ("no fd leaked") at the end of a test.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.errors import TargetError
from repro.sim.process import Env
from repro.sim.testsuite import Target, TestCase, TestSuite

__all__ = ["UserScripts", "ScriptTarget"]

Script = Callable[[Env], None]


class UserScripts:
    """The startup/test/cleanup triple for one workload."""

    def __init__(
        self,
        test: Script,
        startup: Script | None = None,
        cleanup: Script | None = None,
        name: str = "workload",
    ) -> None:
        self.test = test
        self.startup = startup
        self.cleanup = cleanup
        self.name = name


class ScriptTarget(Target):
    """A target assembled from user script triples."""

    def __init__(
        self,
        scripts: Sequence[UserScripts],
        name: str = "scripted",
        functions: Sequence[str] = (),
    ) -> None:
        if not scripts:
            raise TargetError("ScriptTarget needs at least one workload")
        super().__init__()
        self.name = name
        self._scripts = tuple(scripts)
        self._functions = tuple(functions)

    def build_suite(self) -> TestSuite:
        tests = []
        for index, workload in enumerate(self._scripts, start=1):
            tests.append(TestCase(
                id=index,
                name=workload.name,
                group="scripted",
                body=self._wrap(workload),
            ))
        return TestSuite(tests)

    @staticmethod
    def _wrap(workload: UserScripts) -> Script:
        def body(env: Env) -> None:
            try:
                workload.test(env)
            finally:
                if workload.cleanup is not None:
                    workload.cleanup(env)
        return body

    def setup(self, env: Env, test: TestCase) -> None:
        workload = self._scripts[test.id - 1]
        if workload.startup is not None:
            workload.startup(env)

    def libc_functions(self) -> tuple[str, ...]:
        if self._functions:
            return self._functions
        return super().libc_functions()
