"""Simulated call stack for programs under test.

The paper's redundancy clustering (§5) compares the *stack traces at
injection points* with Levenshtein distance.  Real AFEX obtains these
from the injector; we obtain them from an explicit stack maintained by
the programs under test, which push a frame for every (simulated C)
function they enter via :meth:`CallStack.frame`.

Keeping the stack explicit (rather than inspecting the Python
interpreter stack) makes traces stable across refactorings of the
simulation code and keeps them looking like the C traces the paper
clusters, e.g. ``("main", "mi_create", "my_close")``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = ["CallStack"]


class CallStack:
    """An explicit stack of function-frame names."""

    def __init__(self, root: str = "main") -> None:
        self._frames: list[str] = [root]

    @contextmanager
    def frame(self, name: str) -> Iterator[None]:
        """Push ``name`` for the duration of the ``with`` block.

        The frame is popped even when the block unwinds with a simulated
        crash, matching how a debugger reports the crash stack: crash
        signals capture :meth:`snapshot` at raise time.
        """
        self._frames.append(name)
        try:
            yield
        finally:
            self._frames.pop()

    def push(self, name: str) -> None:
        """Push a frame without a context manager (caller must pop)."""
        self._frames.append(name)

    def pop(self) -> str:
        if len(self._frames) == 1:
            raise IndexError("cannot pop the root frame")
        return self._frames.pop()

    def snapshot(self) -> tuple[str, ...]:
        """The current stack, outermost frame first."""
        return tuple(self._frames)

    @property
    def depth(self) -> int:
        return len(self._frames)

    @property
    def top(self) -> str:
        return self._frames[-1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CallStack({' > '.join(self._frames)})"
