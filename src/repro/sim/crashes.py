"""Crash signals raised by simulated programs.

These deliberately do **not** derive from :class:`repro.errors.ReproError`:
a simulated segmentation fault is an *observation* produced by the system
under test, not a bug in this library.  The test runner
(:func:`repro.sim.process.run_test`) is the only intended catcher; it
converts each signal into a :class:`repro.sim.process.RunResult`.

Crash kinds mirror what the paper's impact metrics distinguish:
segfaults and aborts (both "crashes" in Tables 1-2), hangs, and ordinary
test failures (non-zero exit / failed assertion, no crash).
"""

from __future__ import annotations

__all__ = [
    "SimCrash",
    "SegmentationFault",
    "AbortCrash",
    "HangDetected",
    "TestFailure",
    "ExitProgram",
]


class SimCrash(Exception):
    """Base class of abnormal-termination signals in the simulated world."""

    #: short machine-readable crash kind; overridden by subclasses.
    kind = "crash"

    def __init__(self, message: str, stack: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        #: simulated call stack at the point of the crash.
        self.stack = stack


class SegmentationFault(SimCrash):
    """Invalid memory access (NULL dereference, use of freed memory...)."""

    kind = "segfault"


class AbortCrash(SimCrash):
    """``abort()``-style termination: assertion failure, double unlock..."""

    kind = "abort"


class HangDetected(SimCrash):
    """The program exceeded its step budget (models an infinite retry loop)."""

    kind = "hang"


class TestFailure(Exception):
    """A test-suite assertion failed; the program itself did not crash."""

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message


class ExitProgram(Exception):
    """Simulated ``exit(code)``: unwinds the program with an exit status.

    Programs under test call :meth:`repro.sim.process.Env.exit` for
    graceful error handling ("print diagnostic, exit 1"); this exception
    implements the unwind.  It is not a crash.
    """

    def __init__(self, code: int) -> None:
        super().__init__(f"exit({code})")
        self.code = code
