"""Simulated POSIX environment: the substrate the systems under test run on.

The paper injects faults into real programs through LFI, an interposer on
``libc.so``.  Offline we substitute a *simulated* C library
(:class:`repro.sim.libc.SimLibc`) backed by an in-memory filesystem
(:class:`repro.sim.filesystem.SimFilesystem`), a tracked heap
(:class:`repro.sim.heap.Heap`), and mutexes
(:class:`repro.sim.sync.Mutex`).  Systems under test (in
:mod:`repro.sim.targets`) are small but *real* programs written against
this libc: they open files, allocate memory, take locks, and contain
genuine error-handling code — including a few deliberately planted
recovery bugs replicating the ones the paper found.

The crucial property preserved from the paper is that fault-space
*structure* (§2) emerges from the modularity of this code rather than
being painted onto a lookup table.
"""

from repro.sim.crashes import (
    AbortCrash,
    HangDetected,
    SegmentationFault,
    SimCrash,
    TestFailure,
)
from repro.sim.errnos import Errno
from repro.sim.libc import NULL, SimLibc
from repro.sim.process import Env, RunResult, run_test
from repro.sim.testsuite import Target, TestCase, TestSuite

__all__ = [
    "AbortCrash",
    "Env",
    "Errno",
    "HangDetected",
    "NULL",
    "RunResult",
    "SegmentationFault",
    "SimCrash",
    "SimLibc",
    "Target",
    "TestCase",
    "TestFailure",
    "TestSuite",
    "run_test",
]
