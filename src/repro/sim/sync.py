"""Synchronization primitives for simulated programs.

These exist so that the MySQL double-unlock bug the paper found
(mi_create.c releasing ``THR_LOCK_myisam`` twice on an error path,
MySQL bug #53268) can be reproduced faithfully: unlocking a mutex that
is not held aborts the simulated process, like a ``PTHREAD_MUTEX_ERRORCHECK``
mutex (or glibc's internal assertion) would.
"""

from __future__ import annotations

from repro.sim.crashes import AbortCrash, HangDetected

__all__ = ["Mutex"]


class Mutex:
    """An error-checking mutex in a single-threaded simulated world.

    The simulation is single-threaded, so "lock" merely flips state; the
    interesting behaviours are the *error* behaviours:

    * unlocking an unheld mutex aborts (the double-unlock bug);
    * locking an already-held mutex self-deadlocks, reported as a hang.
    """

    def __init__(self, name: str, stack_snapshot=None) -> None:
        self.name = name
        self.locked = False
        self._stack_snapshot = stack_snapshot or (lambda: ())
        #: number of successful lock acquisitions (for tests/sensors)
        self.acquisitions = 0

    def lock(self) -> None:
        if self.locked:
            raise HangDetected(
                f"self-deadlock on mutex {self.name!r}", self._stack_snapshot()
            )
        self.locked = True
        self.acquisitions += 1

    def unlock(self) -> None:
        if not self.locked:
            raise AbortCrash(
                f"unlock of unheld mutex {self.name!r} (double unlock)",
                self._stack_snapshot(),
            )
        self.locked = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "locked" if self.locked else "unlocked"
        return f"Mutex({self.name!r}, {state})"
