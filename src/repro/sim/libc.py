"""The simulated C library — the application–library interface under test.

This module substitutes for ``libc.so`` + LFI in the paper's setup.
Programs under test call these functions exactly as C programs call
libc; each call

1. counts against the per-function call counter (the ``callNumber``
   axis of the fault space),
2. counts against the process step budget (exceeding it models a hang),
3. is checked against the active :class:`~repro.injection.plan.InjectionPlan`;
   if an atomic fault fires, the *real operation is not performed* and
   the injected (errno, retval) is returned instead — LFI's
   interposition model, where the wrapped function is never entered.

Return conventions mirror C:

* pointer-returning functions (``malloc``, ``strdup``, ``fopen``,
  ``opendir``, ``setlocale``, ``getcwd``) return an integer pointer or
  object, with ``0``/``None`` standing for NULL;
* int-returning wrappers (``open``, ``close``, ``read``, ``write``,
  ``stat``...) return ``-1`` on failure with ``errno`` set;
* genuine environment errors (file not found, fd table full) produce
  the same failure returns *without* any injection — the targets'
  error-handling code is real code that runs in production too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.injection.plan import AtomicFault, InjectionPlan
from repro.sim.crashes import HangDetected
from repro.sim.errnos import Errno
from repro.sim.filesystem import (
    O_APPEND,
    O_CREAT,
    O_EXCL,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    FsError,
    SimFilesystem,
    StatResult,
)
from repro.sim.heap import NULL, Heap
from repro.sim.stack import CallStack

__all__ = [
    "CallRecord",
    "InjectionEvent",
    "LazyProvenance",
    "ProvenanceRecord",
    "NULL",
    "SimLibc",
    "O_RDONLY",
    "O_WRONLY",
    "O_RDWR",
    "O_CREAT",
    "O_EXCL",
    "O_TRUNC",
    "O_APPEND",
]

#: default per-test libc-call budget; exceeding it is reported as a hang.
DEFAULT_STEP_BUDGET = 50_000


@dataclass(frozen=True)
class CallRecord:
    """One traced library call (only recorded when tracing is enabled)."""

    seq: int
    function: str
    call_number: int
    stack: tuple[str, ...] | None


@dataclass(frozen=True)
class InjectionEvent:
    """A fault that actually fired during execution."""

    fault: AtomicFault
    call_number: int
    stack: tuple[str, ...]


class ProvenanceRecord(NamedTuple):
    """One call-level provenance entry (opt-in, the replay/explain path).

    A tuple subclass on purpose: records are created on every libc call
    when provenance is enabled, serialize to JSON as plain lists, and
    round-trip through every codec without a bespoke adapter.
    """

    #: global call sequence number (1-based, the step counter).
    seq: int
    #: the intercepted libc function.
    function: str
    #: per-function call number (the ``callNumber`` fault-space axis).
    call_number: int
    #: what the call touched: ``path``/``fd``/``stream``/``dir``/
    #: ``heap``/``socket``, or ``call`` for calls with no resource.
    kind: str
    #: the resolved resource name (a sim-FS path, heap size, socket
    #: id), or None for resource-free calls.
    resource: str | None
    #: True when an atomic fault fired on this very call.
    injected: bool

    @classmethod
    def from_raw(cls, row: "list | tuple") -> "ProvenanceRecord":
        """Rebuild a record from its JSON/wire list form."""
        seq, function, call_number, kind, resource, injected = row
        return cls(
            int(seq), str(function), int(call_number), str(kind),
            None if resource is None else str(resource), bool(injected),
        )


def _normalize_path(path: str, cwd: str) -> str:
    """Pure mirror of :meth:`SimFilesystem.resolve` for deferred use.

    Resolution must not need the filesystem object itself (a provenance
    log outlives its run and must not pin the simulated world in
    memory), so this reimplements the path normalization over a cwd
    string snapshot.
    """
    if not path:
        return path
    if not path.startswith("/"):
        path = cwd.rstrip("/") + "/" + path
    parts: list[str] = []
    for part in path.split("/"):
        if part in ("", "."):
            continue
        if part == "..":
            if parts:
                parts.pop()
            continue
        parts.append(part)
    return "/" + "/".join(parts)


class LazyProvenance:
    """A run's provenance log, resolved on first read.

    Capture on the interposition hot path appends one raw row per call
    — locals :meth:`SimLibc._enter` already holds, ~a tuple-pack each —
    and all resource resolution plus :class:`ProvenanceRecord`
    construction are deferred until somebody actually reads the log
    (the replay/explain path).  That keeps enabled capture within the
    replay overhead budget while runs that never read the log pay next
    to nothing.  Deferred resolution is still exact: the sim never
    reuses fd/stream/dir ids, and every wrapper that creates one
    records its name at birth — so only the small name tables are
    retained here, never the libc/filesystem world (which would turn
    every provenance-on run into GC ballast).

    Compares, iterates, indexes, and pickles as the materialized tuple
    of records.
    """

    __slots__ = (
        "_rows", "_fd_names", "_stream_names", "_dir_names", "_cwd",
        "_records",
    )

    def __init__(
        self,
        rows: tuple,
        fd_names: dict,
        stream_names: dict,
        dir_names: dict,
        cwd: str,
    ) -> None:
        self._rows = rows
        self._fd_names = fd_names
        self._stream_names = stream_names
        self._dir_names = dir_names
        self._cwd = cwd
        self._records: "tuple | None" = None

    def _resolve(
        self, resource: "tuple[str, object] | None"
    ) -> "tuple[str, str | None]":
        """Resolve an operand pair to a stable resource name.

        Best-effort: an fd/stream/dir id with no recorded name (e.g. a
        descriptor the target conjured without going through libc)
        keeps its numeric identity rather than failing the read.
        """
        if resource is None:
            return "call", None
        kind, operand = resource
        if kind == "fd":
            name = self._fd_names.get(operand)
            return "fd", name if name is not None else f"fd:{operand}"
        if kind == "path":
            return "path", _normalize_path(str(operand), self._cwd)
        if kind == "stream":
            name = self._stream_names.get(operand)
            return "stream", name if name is not None else f"stream:{operand}"
        if kind == "dir":
            name = self._dir_names.get(operand)
            return "dir", name if name is not None else f"dir:{operand}"
        if kind == "heap":
            return "heap", f"{operand}B"
        if kind == "socket":
            return "socket", f"socket:{operand}"
        return str(kind), None if operand is None else str(operand)

    def _materialize(self) -> tuple:
        if self._records is None:
            resolve = self._resolve
            self._records = tuple(
                ProvenanceRecord(
                    seq, function, count, *resolve(resource), injected
                )
                for seq, function, count, resource, injected in self._rows
            )
            self._rows = ()
        return self._records

    def __iter__(self):
        return iter(self._materialize())

    def __len__(self) -> int:
        return len(self._materialize())

    def __getitem__(self, index):
        return self._materialize()[index]

    def __bool__(self) -> bool:
        return bool(self._rows) or bool(self._records)

    def __eq__(self, other) -> bool:
        if isinstance(other, LazyProvenance):
            other = other._materialize()
        return self._materialize() == other

    def __hash__(self) -> int:
        return hash(self._materialize())

    def __repr__(self) -> str:
        return repr(self._materialize())

    def __reduce__(self):
        return (tuple, (self._materialize(),))


class _Stream:
    """A stdio FILE: a buffered view over an fd, with error/EOF flags."""

    __slots__ = ("fd", "path", "error", "eof", "writable")

    def __init__(self, fd: int, path: str, writable: bool) -> None:
        self.fd = fd
        self.path = path
        self.error = False
        self.eof = False
        self.writable = writable


class _DirStream:
    __slots__ = ("path", "names", "index")

    def __init__(self, path: str, names: list[str]) -> None:
        self.path = path
        self.names = names
        self.index = 0


class SimLibc:
    """Simulated libc bound to one filesystem, heap, and call stack."""

    def __init__(
        self,
        fs: SimFilesystem,
        stack: CallStack | None = None,
        step_budget: int = DEFAULT_STEP_BUDGET,
        trace: bool = False,
        trace_stacks: bool = False,
        provenance: bool = False,
    ) -> None:
        self.fs = fs
        self.stack = stack or CallStack()
        self.heap = Heap(self.stack.snapshot)
        self.errno: Errno = Errno.OK
        self.plan: InjectionPlan = InjectionPlan.none()
        self.call_counts: dict[str, int] = {}
        self.injections: list[InjectionEvent] = []
        self.steps = 0
        self.step_budget = step_budget
        self.trace_enabled = trace
        self.trace_stacks = trace_stacks
        self.trace: list[CallRecord] = []
        self.provenance_enabled = provenance
        #: raw capture rows ``(seq, function, count, resource_pair,
        #: injected)`` — resolved lazily via :meth:`resolved_provenance`.
        self.provenance: list[tuple] = []
        #: fd/stream/dir id → path, recorded at creation time (only
        #: when provenance is on), so deferred resolution stays exact no
        #: matter how the resource is retired — ids are never reused,
        #: and e.g. a kill-9 teardown closing fds behind libc's back
        #: cannot lose the name.
        self._fd_names: dict[int, str] = {}
        self._stream_names: dict[int, str] = {}
        self._dir_names: dict[int, str] = {}
        self._streams: dict[int, _Stream] = {}
        self._next_stream = 0x100000
        self._dir_streams: dict[int, _DirStream] = {}
        self._next_dirp = 0x200000
        self.locale = "C"
        self.text_domain = "messages"
        # Loopback "network": tests enqueue requests; servers accept/recv
        # them and send responses into the outbox.
        self.net_inbox: list[bytes] = []
        self.net_outbox: list[bytes] = []
        #: armed network fault state (``repro.injection.models.net``), or
        #: None; consulted by recv/send and by in-target message buses.
        self.net_fault = None
        self._sockets: set[int] = set()
        self._next_socket = 0x300000
        self._clock = 0

    # -- interposition core ---------------------------------------------------

    def set_plan(self, plan: InjectionPlan) -> None:
        """Install the injection plan for the next execution."""
        self.plan = plan

    def _enter(
        self,
        function: str,
        resource: "tuple[str, object] | None" = None,
    ) -> AtomicFault | None:
        """Count a call, enforce the step budget, and consult the plan.

        ``resource`` is the call's operand as an unresolved ``(kind,
        operand)`` pair — resolution (fd → path, stream → path) only
        happens when provenance is enabled, so the non-replay path pays
        one tuple per call and nothing else.
        """
        self.steps += 1
        if self.steps > self.step_budget:
            raise HangDetected(
                f"step budget of {self.step_budget} libc calls exceeded",
                self.stack.snapshot(),
            )
        count = self.call_counts.get(function, 0) + 1
        self.call_counts[function] = count
        if self.trace_enabled:
            stack = self.stack.snapshot() if self.trace_stacks else None
            self.trace.append(CallRecord(self.steps, function, count, stack))
        fault = self.plan.lookup(function, count)
        if fault is not None:
            self.errno = fault.errno
            # The trace at the injection point includes the intercepted
            # function as its innermost frame, as an LFI stack trace does.
            self.injections.append(
                InjectionEvent(fault, count, self.stack.snapshot() + (function,))
            )
        if self.provenance_enabled:
            # Raw row only — resolution and record construction are
            # deferred (LazyProvenance) to keep this path near-free.
            self.provenance.append(
                (self.steps, function, count, resource, fault is not None)
            )
        return fault

    def _note_disk_fault(self) -> None:
        """Mark the current call's provenance row when a disk hook fired.

        World hooks mutate state inside the filesystem layer, after
        :meth:`_enter` already appended this call's row with
        ``injected=False``; the armed :class:`DiskFaultState` counter
        sitting exactly on its target ordinal means *this* write was the
        transformed one.  Only called when provenance is enabled.
        """
        state = self.fs.disk_fault
        if (
            state is not None
            and state.writes == state.write_number
            and self.provenance
            and not self.provenance[-1][4]
        ):
            self.provenance[-1] = self.provenance[-1][:4] + (True,)

    def resolved_provenance(self) -> "tuple | LazyProvenance":
        """The run's provenance log, as a lazily-resolved sequence of
        :class:`ProvenanceRecord`s (a plain empty tuple when capture
        was off or nothing ran).

        The returned log retains only the name tables and a cwd
        snapshot — not this libc or its filesystem — so holding many
        provenance-on results does not pin the simulated worlds that
        produced them.
        """
        if not self.provenance:
            return ()
        return LazyProvenance(
            tuple(self.provenance),
            self._fd_names,
            self._stream_names,
            self._dir_names,
            self.fs.cwd,
        )

    # -- memory -----------------------------------------------------------------

    def malloc(self, size: int) -> int:
        fault = self._enter("malloc", ("heap", size))
        if fault is not None:
            return fault.retval
        return self.heap.alloc(size)

    def calloc(self, count: int, size: int) -> int:
        fault = self._enter("calloc", ("heap", count * size))
        if fault is not None:
            return fault.retval
        return self.heap.alloc(count * size)

    def realloc(self, ptr: int, size: int) -> int:
        fault = self._enter("realloc", ("heap", size))
        if fault is not None:
            return fault.retval
        return self.heap.realloc(ptr, size)

    def free(self, ptr: int) -> None:
        # free() cannot fail and is not an injection point.
        self.heap.free(ptr)

    def strdup(self, text: str) -> int:
        fault = self._enter("strdup", ("heap", len(text) + 1))
        if fault is not None:
            return fault.retval
        ptr = self.heap.alloc(len(text.encode()) + 1)
        self.heap.store_string(ptr, text)
        return ptr

    # -- file descriptors ---------------------------------------------------------

    def open(self, path: str, flags: int = O_RDONLY) -> int:
        fault = self._enter("open", ("path", path))
        if fault is not None:
            return fault.retval
        try:
            fd = self.fs.open(path, flags)
        except FsError as err:
            self.errno = err.errno
            return -1
        if self.provenance_enabled:
            self._fd_names[fd] = self.fs.fd_path(fd)
        return fd

    def close(self, fd: int) -> int:
        fault = self._enter("close", ("fd", fd))
        if fault is not None:
            return fault.retval  # injected failure: fd is NOT closed (leak)
        try:
            self.fs.close(fd)
            return 0
        except FsError as err:
            self.errno = err.errno
            return -1

    def read(self, fd: int, count: int) -> bytes | int:
        """Returns bytes on success (possibly empty at EOF), -1 on error."""
        fault = self._enter("read", ("fd", fd))
        if fault is not None:
            return fault.retval
        try:
            return self.fs.read(fd, count)
        except FsError as err:
            self.errno = err.errno
            return -1

    def write(self, fd: int, data: bytes) -> int:
        fault = self._enter("write", ("fd", fd))
        if fault is not None:
            return fault.retval
        try:
            wrote = self.fs.write(fd, data)
        except FsError as err:
            self.errno = err.errno
            return -1
        if self.provenance_enabled:
            self._note_disk_fault()
        return wrote

    def lseek(self, fd: int, offset: int) -> int:
        fault = self._enter("lseek", ("fd", fd))
        if fault is not None:
            return fault.retval
        try:
            return self.fs.lseek(fd, offset)
        except FsError as err:
            self.errno = err.errno
            return -1

    def fsync(self, fd: int) -> int:
        fault = self._enter("fsync", ("fd", fd))
        if fault is not None:
            return fault.retval
        # In-memory fs: durability is immediate; still validate the fd.
        try:
            self.fs.fd_path(fd)
            return 0
        except FsError as err:
            self.errno = err.errno
            return -1

    def fcntl(self, fd: int, cmd: int = 0) -> int:
        fault = self._enter("fcntl", ("fd", fd))
        if fault is not None:
            return fault.retval
        try:
            self.fs.fd_path(fd)
            return 0
        except FsError as err:
            self.errno = err.errno
            return -1

    def pipe(self):
        """Returns an (rfd, wfd) pair on success, -1 on failure."""
        fault = self._enter("pipe")
        if fault is not None:
            return fault.retval
        try:
            name = f"/.pipe{self._next_stream}"
            self._next_stream += 1
            self.fs.create_file(name)
            rfd = self.fs.open(name, O_RDONLY)
            wfd = self.fs.open(name, O_WRONLY)
        except FsError as err:
            self.errno = err.errno
            return -1
        if self.provenance_enabled:
            self._fd_names[rfd] = name
            self._fd_names[wfd] = name
        return (rfd, wfd)

    # -- stdio streams ------------------------------------------------------------

    def _fopen_impl(self, name: str, path: str, mode: str) -> int:
        fault = self._enter(name, ("path", path))
        if fault is not None:
            return fault.retval
        flag_map = {
            "r": O_RDONLY,
            "r+": O_RDWR,
            "w": O_WRONLY | O_CREAT | O_TRUNC,
            "w+": O_RDWR | O_CREAT | O_TRUNC,
            "a": O_WRONLY | O_CREAT | O_APPEND,
            "a+": O_RDWR | O_CREAT | O_APPEND,
        }
        flags = flag_map.get(mode.rstrip("b"))
        if flags is None:
            self.errno = Errno.EINVAL
            return NULL
        try:
            fd = self.fs.open(path, flags)
        except FsError as err:
            self.errno = err.errno
            return NULL
        stream_id = self._next_stream
        self._next_stream += 1
        writable = mode.rstrip("b") != "r"
        resolved = self.fs.resolve(path)
        self._streams[stream_id] = _Stream(fd, resolved, writable)
        if self.provenance_enabled:
            self._fd_names[fd] = resolved
            self._stream_names[stream_id] = resolved
        return stream_id

    def fopen(self, path: str, mode: str = "r") -> int:
        return self._fopen_impl("fopen", path, mode)

    def fopen64(self, path: str, mode: str = "r") -> int:
        return self._fopen_impl("fopen64", path, mode)

    def _stream(self, stream_id: int) -> _Stream | None:
        return self._streams.get(stream_id)

    def fclose(self, stream_id: int) -> int:
        fault = self._enter("fclose", ("stream", stream_id))
        if fault is not None:
            # Injected fclose failure: per glibc, the stream is unusable
            # afterwards; we close the underlying fd but report failure.
            stream = self._streams.pop(stream_id, None)
            if stream is not None:
                try:
                    self.fs.close(stream.fd)
                except FsError:
                    pass
            return fault.retval
        stream = self._streams.pop(stream_id, None)
        if stream is None:
            self.errno = Errno.EBADF
            return -1
        try:
            self.fs.close(stream.fd)
            return 0
        except FsError as err:
            self.errno = err.errno
            return -1

    def fgets(self, stream_id: int, max_len: int = 4096) -> str | None:
        """Returns the next line (with newline) or None on EOF/error."""
        fault = self._enter("fgets", ("stream", stream_id))
        stream = self._stream(stream_id)
        if fault is not None:
            if stream is not None:
                stream.error = True
            return None
        if stream is None:
            self.errno = Errno.EBADF
            return None
        chars: list[str] = []
        while len(chars) < max_len - 1:
            try:
                chunk = self.fs.read(stream.fd, 1)
            except FsError as err:
                self.errno = err.errno
                stream.error = True
                return None
            if not chunk:
                stream.eof = True
                break
            ch = chr(chunk[0])
            chars.append(ch)
            if ch == "\n":
                break
        if not chars:
            return None
        return "".join(chars)

    def putc(self, char: str, stream_id: int) -> int:
        """Returns the character code written, or -1 (EOF) on error."""
        fault = self._enter("putc", ("stream", stream_id))
        stream = self._stream(stream_id)
        if fault is not None:
            if stream is not None:
                stream.error = True
            return fault.retval
        if stream is None or not stream.writable:
            self.errno = Errno.EBADF
            return -1
        try:
            self.fs.write(stream.fd, char.encode())
        except FsError as err:
            self.errno = err.errno
            stream.error = True
            return -1
        if self.provenance_enabled:
            self._note_disk_fault()
        return ord(char)

    def fputs(self, text: str, stream_id: int) -> int:
        """Write a whole string; one injectable ``fputs`` call."""
        fault = self._enter("fputs", ("stream", stream_id))
        stream = self._stream(stream_id)
        if fault is not None:
            if stream is not None:
                stream.error = True
            return -1
        if stream is None or not stream.writable:
            self.errno = Errno.EBADF
            return -1
        try:
            self.fs.write(stream.fd, text.encode())
        except FsError as err:
            self.errno = err.errno
            stream.error = True
            return -1
        if self.provenance_enabled:
            self._note_disk_fault()
        return len(text)

    def fflush(self, stream_id: int) -> int:
        fault = self._enter("fflush", ("stream", stream_id))
        stream = self._stream(stream_id)
        if fault is not None:
            if stream is not None:
                stream.error = True
            return fault.retval
        if stream is None:
            self.errno = Errno.EBADF
            return -1
        return 0  # write-through streams: nothing buffered

    def ferror(self, stream_id: int) -> int:
        fault = self._enter("ferror", ("stream", stream_id))
        if fault is not None:
            return fault.retval
        stream = self._stream(stream_id)
        return 1 if stream is not None and stream.error else 0

    def feof(self, stream_id: int) -> int:
        stream = self._stream(stream_id)
        return 1 if stream is not None and stream.eof else 0

    def stream_fd(self, stream_id: int) -> int:
        """fileno(3) equivalent (not an injection point)."""
        stream = self._stream(stream_id)
        return stream.fd if stream is not None else -1

    # -- metadata and directories ----------------------------------------------------

    def stat(self, path: str) -> StatResult | None:
        """Returns a StatResult, or None (C: -1) on failure."""
        fault = self._enter("stat", ("path", path))
        if fault is not None:
            return None
        try:
            return self.fs.stat(path)
        except FsError as err:
            self.errno = err.errno
            return None

    def opendir(self, path: str) -> int:
        fault = self._enter("opendir", ("path", path))
        if fault is not None:
            return fault.retval
        try:
            names = self.fs.listdir(path)
        except FsError as err:
            self.errno = err.errno
            return NULL
        dirp = self._next_dirp
        self._next_dirp += 1
        resolved = self.fs.resolve(path)
        self._dir_streams[dirp] = _DirStream(resolved, names)
        if self.provenance_enabled:
            self._dir_names[dirp] = resolved
        return dirp

    def readdir(self, dirp: int) -> str | None:
        """Returns the next entry name, or None at end / on error."""
        fault = self._enter("readdir", ("dir", dirp))
        if fault is not None:
            return None
        stream = self._dir_streams.get(dirp)
        if stream is None:
            self.errno = Errno.EBADF
            return None
        if stream.index >= len(stream.names):
            return None
        name = stream.names[stream.index]
        stream.index += 1
        return name

    def closedir(self, dirp: int) -> int:
        fault = self._enter("closedir", ("dir", dirp))
        if fault is not None:
            return fault.retval
        dstream = self._dir_streams.pop(dirp, None)
        if dstream is None:
            self.errno = Errno.EBADF
            return -1
        return 0

    def chdir(self, path: str) -> int:
        fault = self._enter("chdir", ("path", path))
        if fault is not None:
            return fault.retval
        try:
            self.fs.chdir(path)
            return 0
        except FsError as err:
            self.errno = err.errno
            return -1

    def getcwd(self) -> str | None:
        fault = self._enter("getcwd")
        if fault is not None:
            return None
        return self.fs.cwd

    def mkdir(self, path: str) -> int:
        fault = self._enter("mkdir", ("path", path))
        if fault is not None:
            return fault.retval
        try:
            self.fs.mkdir(path)
            return 0
        except FsError as err:
            self.errno = err.errno
            return -1

    def rmdir(self, path: str) -> int:
        fault = self._enter("rmdir", ("path", path))
        if fault is not None:
            return fault.retval
        try:
            self.fs.rmdir(path)
            return 0
        except FsError as err:
            self.errno = err.errno
            return -1

    def unlink(self, path: str) -> int:
        fault = self._enter("unlink", ("path", path))
        if fault is not None:
            return fault.retval
        try:
            self.fs.unlink(path)
            return 0
        except FsError as err:
            self.errno = err.errno
            return -1

    def rename(self, old: str, new: str) -> int:
        fault = self._enter("rename", ("path", old))
        if fault is not None:
            return fault.retval
        try:
            self.fs.rename(old, new)
            return 0
        except FsError as err:
            self.errno = err.errno
            return -1

    def link(self, existing: str, new: str) -> int:
        fault = self._enter("link", ("path", existing))
        if fault is not None:
            return fault.retval
        try:
            self.fs.link(existing, new)
            return 0
        except FsError as err:
            self.errno = err.errno
            return -1

    # -- process / limits / misc -------------------------------------------------------

    def wait(self) -> int:
        fault = self._enter("wait")
        if fault is not None:
            return fault.retval
        return 0  # no children in the simulated world

    def getrlimit(self, resource: str = "NOFILE") -> int:
        """Returns the limit, or -1 on failure (C fills a struct)."""
        fault = self._enter("getrlimit")
        if fault is not None:
            return fault.retval
        if resource == "NOFILE":
            return self.fs.max_open_files
        return 1 << 20

    def setrlimit(self, resource: str, value: int) -> int:
        fault = self._enter("setrlimit")
        if fault is not None:
            return fault.retval
        if resource == "NOFILE":
            self.fs.max_open_files = value
        return 0

    def clock_gettime(self) -> int:
        """Returns a monotonic tick, or -1 on failure."""
        fault = self._enter("clock_gettime")
        if fault is not None:
            return fault.retval
        self._clock += 1
        return self._clock

    def setlocale(self, locale: str) -> str | None:
        fault = self._enter("setlocale")
        if fault is not None:
            return None
        self.locale = locale
        return locale

    def bindtextdomain(self, domain: str, directory: str) -> str | None:
        fault = self._enter("bindtextdomain")
        if fault is not None:
            return None
        return directory

    def textdomain(self, domain: str) -> str | None:
        fault = self._enter("textdomain")
        if fault is not None:
            return None
        self.text_domain = domain
        return domain

    def strtol(self, text: str, base: int = 10) -> int:
        """Returns the parsed value; 0 with errno set on failure."""
        fault = self._enter("strtol")
        if fault is not None:
            return fault.retval
        try:
            return int(text.strip(), base)
        except ValueError:
            self.errno = Errno.EINVAL
            return 0

    # -- networking (loopback simulation) --------------------------------------------------

    def socket(self) -> int:
        fault = self._enter("socket")
        if fault is not None:
            return fault.retval
        sock = self._next_socket
        self._next_socket += 1
        self._sockets.add(sock)
        return sock

    def bind(self, sock: int, port: int) -> int:
        fault = self._enter("bind", ("socket", sock))
        if fault is not None:
            return fault.retval
        if sock not in self._sockets:
            self.errno = Errno.EBADF
            return -1
        return 0

    def listen(self, sock: int, backlog: int = 16) -> int:
        fault = self._enter("listen", ("socket", sock))
        if fault is not None:
            return fault.retval
        if sock not in self._sockets:
            self.errno = Errno.EBADF
            return -1
        return 0

    def accept(self, sock: int) -> int:
        """Returns a connection socket, or -1 (EAGAIN when inbox empty)."""
        fault = self._enter("accept", ("socket", sock))
        if fault is not None:
            return fault.retval
        if sock not in self._sockets:
            self.errno = Errno.EBADF
            return -1
        if not self.net_inbox:
            self.errno = Errno.EAGAIN
            return -1
        return self._accept_conn()

    def _accept_conn(self) -> int:
        conn = self._next_socket
        self._next_socket += 1
        self._sockets.add(conn)
        return conn

    def connect(self, sock: int, port: int) -> int:
        fault = self._enter("connect", ("socket", sock))
        if fault is not None:
            return fault.retval
        if sock not in self._sockets:
            self.errno = Errno.EBADF
            return -1
        return 0

    def recv(self, sock: int, count: int = 65536) -> bytes | int:
        """Returns bytes (empty at end-of-stream) or -1 on error."""
        fault = self._enter("recv", ("socket", sock))
        if fault is not None:
            return fault.retval
        if sock not in self._sockets:
            self.errno = Errno.EBADF
            return -1
        if self.net_fault is not None:
            action = self.net_fault.on_op()
            if action == "partition":
                self.errno = Errno.ECONNRESET
                return -1
            if action == "delay":
                self.errno = Errno.EAGAIN
                return -1
            if action == "reorder" and len(self.net_inbox) >= 2:
                self.net_inbox[0], self.net_inbox[1] = (
                    self.net_inbox[1], self.net_inbox[0],
                )
        if not self.net_inbox:
            return b""
        return self.net_inbox.pop(0)

    def send(self, sock: int, data: bytes) -> int:
        fault = self._enter("send", ("socket", sock))
        if fault is not None:
            return fault.retval
        if sock not in self._sockets:
            self.errno = Errno.EBADF
            return -1
        if self.net_fault is not None:
            action = self.net_fault.on_op()
            if action == "partition":
                self.errno = Errno.ECONNRESET
                return -1
            # delay/reorder act on the receive path; the send itself
            # succeeds (the sender cannot tell).
        self.net_outbox.append(data)
        return len(data)

    def close_socket(self, sock: int) -> int:
        """Close a socket (counts as a ``close`` call, like C)."""
        fault = self._enter("close", ("socket", sock))
        if fault is not None:
            return fault.retval
        if sock not in self._sockets:
            self.errno = Errno.EBADF
            return -1
        self._sockets.discard(sock)
        return 0

    # -- introspection ------------------------------------------------------------------

    def call_count(self, function: str) -> int:
        return self.call_counts.get(function, 0)

    @property
    def first_injection(self) -> InjectionEvent | None:
        return self.injections[0] if self.injections else None
