"""Basic-block coverage for simulated programs.

The paper's impact metric for coreutils/MySQL combines test outcome with
code coverage (§7, "Fault Space Definition Methodology").  Programs under
test mark coverage explicitly: each interesting straight-line region
calls ``env.cov.hit("module.function.block")``.  A block id is an
arbitrary string; the universe of blocks for a target is whatever the
union of runs observes (benchmarks compute percentages relative to the
blocks an exhaustive run covers, exactly as we can only ever talk about
coverage relative to some baseline for a black box).
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = ["Coverage"]


class Coverage:
    """Records the set of basic-block ids hit during one run."""

    __slots__ = ("_hits",)

    def __init__(self) -> None:
        self._hits: set[str] = set()

    def hit(self, block_id: str) -> None:
        """Mark basic block ``block_id`` as executed."""
        self._hits.add(block_id)

    def hit_all(self, block_ids: Iterable[str]) -> None:
        self._hits.update(block_ids)

    @property
    def blocks(self) -> frozenset[str]:
        """The blocks hit so far (immutable snapshot)."""
        return frozenset(self._hits)

    def __len__(self) -> int:
        return len(self._hits)

    def __contains__(self, block_id: str) -> bool:
        return block_id in self._hits

    @staticmethod
    def percent(hit: frozenset[str], universe: frozenset[str]) -> float:
        """Coverage percentage of ``hit`` relative to ``universe``."""
        if not universe:
            return 0.0
        return 100.0 * len(hit & universe) / len(universe)
