"""Test suites and target (system-under-test) definitions.

A :class:`Target` bundles a system under test with its default test
suite — the paper's setup, where the ``X_test`` axis of the fault space
indexes "the tests in the default test suite" of the target (§2, Fig. 1).
Tests are 1-indexed to match the paper's axes.

Targets are immutable descriptions; all mutable state lives in the
per-run :class:`~repro.sim.process.Env`, so a single target instance can
be exercised concurrently by many node managers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import TargetError
from repro.sim.process import Env

__all__ = ["TestCase", "TestSuite", "Target"]


@dataclass(frozen=True)
class TestCase:
    """One test in a target's default suite.

    ``id`` is the test's index on the fault space's ``X_test`` axis
    (1-based).  ``group`` names the functional area the test belongs to;
    the paper notes tests in real suites "are often grouped by
    functionality" (§3), which is where much of the fault-space
    structure along ``X_test`` comes from — suites here keep groups
    contiguous to preserve that property.
    """

    id: int
    name: str
    group: str
    body: Callable[[Env], None]

    def __post_init__(self) -> None:
        if self.id < 1:
            raise TargetError(f"test ids are 1-based, got {self.id}")


class TestSuite:
    """An ordered, 1-indexed collection of test cases."""

    def __init__(self, tests: list[TestCase]) -> None:
        if not tests:
            raise TargetError("a test suite needs at least one test")
        expected = list(range(1, len(tests) + 1))
        actual = [t.id for t in tests]
        if actual != expected:
            raise TargetError(
                f"test ids must be contiguous starting at 1, got {actual[:5]}..."
            )
        self._tests = list(tests)
        self._by_id = {t.id: t for t in tests}

    def __len__(self) -> int:
        return len(self._tests)

    def __iter__(self):
        return iter(self._tests)

    def __getitem__(self, test_id: int) -> TestCase:
        test = self._by_id.get(test_id)
        if test is None:
            raise TargetError(f"no test with id {test_id}")
        return test

    @property
    def ids(self) -> tuple[int, ...]:
        return tuple(t.id for t in self._tests)

    @property
    def groups(self) -> tuple[str, ...]:
        """Distinct group names in first-appearance order."""
        seen: dict[str, None] = {}
        for t in self._tests:
            seen.setdefault(t.group, None)
        return tuple(seen)

    def in_group(self, group: str) -> list[TestCase]:
        return [t for t in self._tests if t.group == group]


class Target:
    """Base class for systems under test.

    Subclasses override :meth:`build_suite` (and usually
    :meth:`setup`).  The suite is built once and cached; targets must be
    stateless apart from that cache.
    """

    #: human-readable target name, e.g. "coreutils", "minidb".
    name: str = "target"
    #: version string, so the same code base can ship multiple maturities
    #: (the MongoDB v0.8 / v2.0 experiment, §7.6).
    version: str = "1.0"

    def __init__(self) -> None:
        self._suite: TestSuite | None = None

    def build_suite(self) -> TestSuite:
        """Construct the default test suite (override)."""
        raise NotImplementedError

    @property
    def suite(self) -> TestSuite:
        if self._suite is None:
            self._suite = self.build_suite()
        return self._suite

    def setup(self, env: Env, test: TestCase) -> None:
        """Startup script: populate the pristine environment for ``test``.

        Runs *before* the injection plan is armed, mirroring the
        prototype's startup/test/cleanup script split (§6.1) — faults
        are injected into the system under test, not into test fixtures.
        """

    def libc_functions(self) -> tuple[str, ...]:
        """The libc functions this target is known to call.

        The default implementation derives the list empirically with the
        callsite analyzer (running the whole suite once, traced); targets
        may override with a static list to avoid that cost.
        """
        from repro.injection.callsite import profile_target

        profile = profile_target(self)
        return profile.functions

    def invariants(self, env: Env, test: TestCase) -> list[str]:
        """Fault-injection-oriented assertions (§7 "Metrics").

        "Once fault injection becomes more widely adopted in test
        suites, we expect developers to write fault injection-oriented
        assertions, such as 'under no circumstances should a file
        transfer be only partially completed when the system stops'."

        This hook is evaluated *post-mortem* by the test runner — after
        the test body finished, failed, or **crashed** — against the
        final environment state.  Return a description per violated
        invariant; an empty list means every always-true property held.
        The default target has none.
        """
        return []

    def describe(self) -> str:
        return f"{self.name}-{self.version} ({len(self.suite)} tests)"
