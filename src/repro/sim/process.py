"""Execute one test of a system under test in a fresh simulated process.

:func:`run_test` is the moral equivalent of the paper's node manager
running the user's *test script* (§6): it builds a pristine environment
(filesystem, heap, libc), lets the target's startup code populate it,
installs the injection plan, runs the test body, and converts whatever
happens — normal exit, graceful error exit, assertion failure, segfault,
abort, hang — into a :class:`RunResult` that sensors and impact metrics
consume.

Every run is hermetic: nothing is shared between runs except the target
definition itself, which is immutable.  Determinism: given (target,
test, plan, trial) the result is reproducible; the per-run RNG exposed
as :attr:`Env.rng` is seeded from exactly those values, so targets with
deliberately "flaky" subsystems vary across *trials* but not across
re-runs of the same trial (this is what gives the paper's impact
precision metric, §5, something to measure).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.injection.plan import InjectionPlan
from repro.sim.coverage import Coverage
from repro.sim.crashes import ExitProgram, SimCrash, TestFailure
from repro.sim.filesystem import FsError, SimFilesystem
from repro.sim.libc import DEFAULT_STEP_BUDGET, SimLibc
from repro.sim.stack import CallStack

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.testsuite import Target, TestCase

__all__ = ["Env", "RunResult", "run_test"]


class Env:
    """Everything a simulated program sees: its libc, coverage, stdout.

    Test bodies receive an ``Env`` and interact with the world only
    through it.  ``env.libc`` is the injectable application–library
    interface; ``env.frame`` pushes simulated stack frames; ``env.exit``
    terminates the program gracefully with a status code.
    """

    def __init__(
        self,
        fs: SimFilesystem,
        libc: SimLibc,
        stack: CallStack,
        cov: Coverage,
        rng: random.Random,
    ) -> None:
        self.fs = fs
        self.libc = libc
        self.stack = stack
        self.cov = cov
        self.rng = rng
        self.stdout: list[str] = []
        self.stderr: list[str] = []
        #: scratch space for target state that outlives a single frame
        #: (e.g. the MiniDB server object), keyed by name.
        self.state: dict[str, object] = {}
        #: sensor measurements published by the program under test.
        self.measurements: dict[str, float] = {}

    def frame(self, name: str):
        """``with env.frame("mi_create"):`` — push a stack frame.

        Entering a function is also a coverage event (``frame.<name>``),
        so function-level coverage comes for free and the happy-path
        block population dominates the universe, as it does for real
        targets (the paper: the fault-free suite alone covers 35.53% of
        coreutils vs 36.17% under exhaustive injection).
        """
        self.cov.hit(f"frame.{name}")
        return self.stack.frame(name)

    def print(self, text: str) -> None:
        self.stdout.append(text)

    def error(self, text: str) -> None:
        self.stderr.append(text)

    def exit(self, code: int) -> None:
        """Simulated ``exit(code)`` — unwinds the whole program."""
        raise ExitProgram(code)

    def check(self, condition: bool, message: str) -> None:
        """Test-suite assertion: failure is a *test* failure, not a crash."""
        if not condition:
            raise TestFailure(message)


@dataclass
class RunResult:
    """The complete observable outcome of one test execution."""

    test_id: int
    test_name: str
    plan: InjectionPlan
    exit_code: int
    crash_kind: str | None  # "segfault" | "abort" | "hang" | None
    crash_message: str | None
    crash_stack: tuple[str, ...] | None
    #: simulated stack at the (first) injection point; None if no fault fired
    injection_stack: tuple[str, ...] | None
    injected: bool
    coverage: frozenset[str]
    steps: int
    stdout: tuple[str, ...] = ()
    stderr: tuple[str, ...] = ()
    failure_message: str | None = None
    #: sensor measurements (latency, throughput, fd counts...), by name
    measurements: dict[str, float] = field(default_factory=dict)
    #: per-function call counts observed during the run
    call_counts: dict[str, int] = field(default_factory=dict)
    #: full call trace (only populated when run with trace=True)
    trace: tuple = ()
    #: file descriptors still open when the program ended (leak signal)
    open_fds: int = 0
    #: heap bytes still allocated when the program ended (leak signal)
    leaked_heap_bytes: int = 0
    #: violated always-true properties (§7's fault-injection-oriented
    #: assertions), evaluated post-mortem — even after a crash.
    invariant_violations: tuple[str, ...] = ()
    #: call-level provenance log (only populated when run with
    #: provenance=True): which call touched which sim-FS/heap resource.
    provenance: tuple = ()

    @property
    def violated(self) -> bool:
        """Did the run break an always-true property (e.g. lose data)?"""
        return bool(self.invariant_violations)

    @property
    def crashed(self) -> bool:
        return self.crash_kind in ("segfault", "abort")

    @property
    def hung(self) -> bool:
        return self.crash_kind == "hang"

    @property
    def failed(self) -> bool:
        """Did the test suite report failure (crash, hang, or bad exit)?"""
        return self.crash_kind is not None or self.exit_code != 0

    def summary(self) -> str:
        if self.crash_kind:
            return f"{self.crash_kind}: {self.crash_message}"
        if self.exit_code != 0:
            reason = self.failure_message or "non-zero exit"
            return f"failed (exit {self.exit_code}): {reason}"
        return "passed"


def run_test(
    target: "Target",
    test: "TestCase",
    plan: InjectionPlan | None = None,
    trial: int = 0,
    trace: bool = False,
    trace_stacks: bool = False,
    step_budget: int = DEFAULT_STEP_BUDGET,
    provenance: bool = False,
) -> RunResult:
    """Run one test of ``target`` under ``plan`` in a fresh environment."""
    # `is None`, not truthiness: a hooks-only ScenarioPlan has zero atomic
    # faults and is therefore falsy (``__len__``), but must not be dropped.
    if plan is None:
        plan = InjectionPlan.none()
    fs = SimFilesystem()
    stack = CallStack()
    libc = SimLibc(
        fs, stack, step_budget=step_budget, trace=trace,
        trace_stacks=trace_stacks, provenance=provenance,
    )
    cov = Coverage()
    rng = random.Random(f"{target.name}/{target.version}/{test.id}/{trial}")
    env = Env(fs, libc, stack, cov, rng)

    # Startup script: populate the environment without injection active.
    target.setup(env, test)
    libc.set_plan(plan)
    # World hooks (fault-model plugins): armed alongside the libc plan,
    # disarmed before post-mortem invariants run over pristine machinery.
    hooks = tuple(getattr(plan, "hooks", ()))
    for hook in hooks:
        hook.arm(env)

    exit_code = 0
    crash_kind: str | None = None
    crash_message: str | None = None
    crash_stack: tuple[str, ...] | None = None
    failure_message: str | None = None
    try:
        test.body(env)
    except ExitProgram as exc:
        exit_code = exc.code
    except TestFailure as exc:
        exit_code = 1
        failure_message = exc.message
    except FsError as exc:
        # A test-script assertion hit a filesystem error (e.g. an expected
        # output file never materialized): the test fails, no crash.
        exit_code = 1
        failure_message = str(exc)
    except SimCrash as exc:
        crash_kind = exc.kind
        crash_message = str(exc)
        crash_stack = exc.stack or stack.snapshot()
        exit_code = 139 if exc.kind == "segfault" else 134
    finally:
        for hook in hooks:
            hook.disarm(env)

    # Post-mortem invariant evaluation: always-true properties are checked
    # against the final world state no matter how the run ended — a crash
    # is precisely when data-loss invariants earn their keep.
    try:
        violations = tuple(target.invariants(env, test))
    except Exception as exc:  # an invariant checker must never kill the run
        violations = (f"invariant checker raised: {exc!r}",)

    first = libc.first_injection
    return RunResult(
        test_id=test.id,
        test_name=test.name,
        plan=plan,
        exit_code=exit_code,
        crash_kind=crash_kind,
        crash_message=crash_message,
        crash_stack=crash_stack,
        injection_stack=first.stack if first else None,
        injected=first is not None,
        coverage=cov.blocks,
        steps=libc.steps,
        stdout=tuple(env.stdout),
        stderr=tuple(env.stderr),
        failure_message=failure_message,
        measurements=dict(env.measurements),
        call_counts=dict(libc.call_counts),
        trace=tuple(libc.trace),
        open_fds=fs.open_fd_count,
        leaked_heap_bytes=libc.heap.bytes_in_use,
        invariant_violations=violations,
        provenance=libc.resolved_provenance(),
    )
