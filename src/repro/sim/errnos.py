"""POSIX errno values used by the simulated C library.

Numeric values follow Linux x86-64 so that fault descriptions and traces
read like real ``ltrace`` output.  Only the codes that appear in libc
fault profiles (:mod:`repro.injection.profiles`) are defined.
"""

from __future__ import annotations

from enum import IntEnum

__all__ = ["Errno"]


class Errno(IntEnum):
    """Errno codes injectable by the simulated library fault injector."""

    OK = 0
    EPERM = 1
    ENOENT = 2
    ESRCH = 3
    EINTR = 4
    EIO = 5
    ENXIO = 6
    EBADF = 9
    ECHILD = 10
    EAGAIN = 11
    ENOMEM = 12
    EACCES = 13
    EFAULT = 14
    EBUSY = 16
    EEXIST = 17
    EXDEV = 18
    ENODEV = 19
    ENOTDIR = 20
    EISDIR = 21
    EINVAL = 22
    ENFILE = 23
    EMFILE = 24
    ENOTTY = 25
    EFBIG = 27
    ENOSPC = 28
    ESPIPE = 29
    EROFS = 30
    EMLINK = 31
    EPIPE = 32
    ERANGE = 34
    ENAMETOOLONG = 36
    ENOLCK = 37
    ENOTEMPTY = 39
    ELOOP = 40
    ECONNRESET = 104
    ETIMEDOUT = 110

    @property
    def label(self) -> str:
        """The symbolic name, e.g. ``"ENOMEM"``."""
        return self.name

    @classmethod
    def from_name(cls, name: str) -> "Errno":
        """Look up an errno by symbolic name (case-insensitive)."""
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(f"unknown errno name: {name!r}") from None
