"""An in-memory POSIX-ish filesystem for the simulated environment.

This is the state behind :class:`repro.sim.libc.SimLibc`: files,
directories, a file-descriptor table, and a working directory.  It
raises :class:`FsError` with real errno values for genuine error
conditions (missing files, reads on closed fds, full descriptor table),
so that programs under test contain *real* error-handling code even
before any fault is injected — injected faults then add failures on top.

The filesystem is deliberately small but honest about the semantics the
targets rely on: partial writes are possible, ``rename`` is atomic
within the tree, unlinked-but-open files keep their contents until
closed, and descriptor exhaustion (``EMFILE``) is enforced.
"""

from __future__ import annotations

from repro.sim.errnos import Errno

__all__ = ["FsError", "SimFilesystem", "StatResult"]

_MAX_OPEN_FILES = 256

# open(2) flag bits (subset), values as on Linux.
O_RDONLY = 0x0
O_WRONLY = 0x1
O_RDWR = 0x2
O_CREAT = 0x40
O_EXCL = 0x80
O_TRUNC = 0x200
O_APPEND = 0x400


class FsError(Exception):
    """A genuine filesystem error, carrying a POSIX errno."""

    def __init__(self, errno: Errno, message: str = "") -> None:
        super().__init__(f"[{errno.name}] {message}")
        self.errno = errno


class StatResult:
    """Subset of ``struct stat`` used by the targets."""

    __slots__ = ("path", "size", "is_dir", "nlink")

    def __init__(self, path: str, size: int, is_dir: bool, nlink: int) -> None:
        self.path = path
        self.size = size
        self.is_dir = is_dir
        self.nlink = nlink

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "dir" if self.is_dir else "file"
        return f"StatResult({self.path!r}, {kind}, size={self.size})"


class _File:
    __slots__ = ("data", "nlink")

    def __init__(self, data: bytes = b"") -> None:
        self.data = bytearray(data)
        self.nlink = 1


class _OpenFile:
    __slots__ = ("file", "path", "offset", "flags", "closed")

    def __init__(self, file: _File, path: str, flags: int) -> None:
        self.file = file
        self.path = path
        self.offset = 0
        self.flags = flags
        self.closed = False


class SimFilesystem:
    """In-memory tree of files and directories plus an fd table."""

    def __init__(self) -> None:
        # Directories are the set of paths; files map path -> _File.
        self._dirs: set[str] = {"/"}
        self._files: dict[str, _File] = {}
        self._fds: dict[int, _OpenFile] = {}
        self._next_fd = 3  # 0-2 reserved, as stdio
        self.cwd = "/"
        #: limit on simultaneously open descriptors (tests tighten this)
        self.max_open_files = _MAX_OPEN_FILES
        #: armed disk fault state (``repro.injection.models.disk``), or
        #: None; consulted on every write.
        self.disk_fault = None

    # -- path handling ------------------------------------------------------

    def resolve(self, path: str) -> str:
        """Normalize ``path`` (absolute or relative to the cwd)."""
        if not path:
            raise FsError(Errno.ENOENT, "empty path")
        if not path.startswith("/"):
            path = self.cwd.rstrip("/") + "/" + path
        parts: list[str] = []
        for part in path.split("/"):
            if part in ("", "."):
                continue
            if part == "..":
                if parts:
                    parts.pop()
                continue
            parts.append(part)
        return "/" + "/".join(parts)

    def _parent(self, path: str) -> str:
        return path.rsplit("/", 1)[0] or "/"

    def _require_parent_dir(self, path: str) -> None:
        parent = self._parent(path)
        if parent not in self._dirs:
            if parent in self._files:
                raise FsError(Errno.ENOTDIR, parent)
            raise FsError(Errno.ENOENT, parent)

    # -- queries ------------------------------------------------------------

    def exists(self, path: str) -> bool:
        path = self.resolve(path)
        return path in self._dirs or path in self._files

    def is_dir(self, path: str) -> bool:
        return self.resolve(path) in self._dirs

    def is_file(self, path: str) -> bool:
        return self.resolve(path) in self._files

    def stat(self, path: str) -> StatResult:
        path = self.resolve(path)
        if path in self._dirs:
            return StatResult(path, 0, True, 1)
        file = self._files.get(path)
        if file is None:
            raise FsError(Errno.ENOENT, path)
        return StatResult(path, len(file.data), False, file.nlink)

    def listdir(self, path: str) -> list[str]:
        path = self.resolve(path)
        if path in self._files:
            raise FsError(Errno.ENOTDIR, path)
        if path not in self._dirs:
            raise FsError(Errno.ENOENT, path)
        prefix = path.rstrip("/") + "/"
        names: set[str] = set()
        for candidate in list(self._dirs) + list(self._files):
            if candidate != path and candidate.startswith(prefix):
                names.add(candidate[len(prefix):].split("/", 1)[0])
        return sorted(names)

    # -- directory operations -------------------------------------------------

    def mkdir(self, path: str) -> None:
        path = self.resolve(path)
        if self.exists(path):
            raise FsError(Errno.EEXIST, path)
        self._require_parent_dir(path)
        self._dirs.add(path)

    def rmdir(self, path: str) -> None:
        path = self.resolve(path)
        if path == "/":
            raise FsError(Errno.EBUSY, "cannot remove /")
        if path in self._files:
            raise FsError(Errno.ENOTDIR, path)
        if path not in self._dirs:
            raise FsError(Errno.ENOENT, path)
        if self.listdir(path):
            raise FsError(Errno.ENOTEMPTY, path)
        self._dirs.discard(path)

    def chdir(self, path: str) -> None:
        path = self.resolve(path)
        if path in self._files:
            raise FsError(Errno.ENOTDIR, path)
        if path not in self._dirs:
            raise FsError(Errno.ENOENT, path)
        self.cwd = path

    # -- file operations -------------------------------------------------------

    def create_file(self, path: str, data: bytes = b"") -> None:
        """Convenience used by test-setup code (not an injectable call)."""
        path = self.resolve(path)
        self._require_parent_dir(path)
        if path in self._dirs:
            raise FsError(Errno.EISDIR, path)
        self._files[path] = _File(data)

    def read_file(self, path: str) -> bytes:
        """Whole-file read for assertions in test bodies."""
        path = self.resolve(path)
        file = self._files.get(path)
        if file is None:
            raise FsError(Errno.ENOENT, path)
        return bytes(file.data)

    def open(self, path: str, flags: int = O_RDONLY) -> int:
        path = self.resolve(path)
        if len(self._fds) >= self.max_open_files:
            raise FsError(Errno.EMFILE, "too many open files")
        if path in self._dirs:
            if flags & (O_WRONLY | O_RDWR):
                raise FsError(Errno.EISDIR, path)
            raise FsError(Errno.EISDIR, path)
        file = self._files.get(path)
        if file is None:
            if not flags & O_CREAT:
                raise FsError(Errno.ENOENT, path)
            self._require_parent_dir(path)
            file = _File()
            self._files[path] = file
        elif flags & O_CREAT and flags & O_EXCL:
            raise FsError(Errno.EEXIST, path)
        if flags & O_TRUNC and flags & (O_WRONLY | O_RDWR):
            file.data = bytearray()
        handle = _OpenFile(file, path, flags)
        if flags & O_APPEND:
            handle.offset = len(file.data)
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = handle
        return fd

    def _handle(self, fd: int) -> _OpenFile:
        handle = self._fds.get(fd)
        if handle is None or handle.closed:
            raise FsError(Errno.EBADF, f"fd {fd}")
        return handle

    def read(self, fd: int, count: int) -> bytes:
        handle = self._handle(fd)
        if handle.flags & O_WRONLY:
            raise FsError(Errno.EBADF, f"fd {fd} is write-only")
        data = bytes(handle.file.data[handle.offset : handle.offset + count])
        handle.offset += len(data)
        return data

    def write(self, fd: int, data: bytes) -> int:
        handle = self._handle(fd)
        if not handle.flags & (O_WRONLY | O_RDWR):
            raise FsError(Errno.EBADF, f"fd {fd} is read-only")
        claimed = len(data)
        if self.disk_fault is not None:
            # Torn/corrupt writes are *silent*: the stored bytes change
            # but the syscall still claims full success below.
            data = self.disk_fault.transform(data)
        if handle.flags & O_APPEND:
            handle.offset = len(handle.file.data)
        end = handle.offset + len(data)
        if end > len(handle.file.data):
            handle.file.data.extend(b"\x00" * (end - len(handle.file.data)))
        handle.file.data[handle.offset : end] = data
        handle.offset = end
        return claimed

    def lseek(self, fd: int, offset: int) -> int:
        handle = self._handle(fd)
        if offset < 0:
            raise FsError(Errno.EINVAL, "negative offset")
        handle.offset = offset
        return offset

    def close(self, fd: int) -> None:
        handle = self._fds.get(fd)
        if handle is None or handle.closed:
            raise FsError(Errno.EBADF, f"fd {fd}")
        handle.closed = True
        del self._fds[fd]

    def fd_path(self, fd: int) -> str:
        return self._handle(fd).path

    def unlink(self, path: str) -> None:
        path = self.resolve(path)
        if path in self._dirs:
            raise FsError(Errno.EISDIR, path)
        if path not in self._files:
            raise FsError(Errno.ENOENT, path)
        # Open descriptors keep the _File object alive; dropping the name
        # is all unlink does, same as POSIX.
        del self._files[path]

    def rename(self, old: str, new: str) -> None:
        old = self.resolve(old)
        new = self.resolve(new)
        if old in self._dirs:
            if new in self._files:
                raise FsError(Errno.ENOTDIR, new)
            prefix = old.rstrip("/") + "/"
            moved_dirs = {d for d in self._dirs if d == old or d.startswith(prefix)}
            moved_files = {f for f in self._files if f.startswith(prefix)}
            for d in moved_dirs:
                self._dirs.discard(d)
                self._dirs.add(new + d[len(old):])
            for f in moved_files:
                self._files[new + f[len(old):]] = self._files.pop(f)
            return
        if old not in self._files:
            raise FsError(Errno.ENOENT, old)
        if new in self._dirs:
            raise FsError(Errno.EISDIR, new)
        self._require_parent_dir(new)
        self._files[new] = self._files.pop(old)

    def link(self, existing: str, new: str) -> None:
        existing = self.resolve(existing)
        new = self.resolve(new)
        if existing in self._dirs:
            raise FsError(Errno.EPERM, "hard link to directory")
        file = self._files.get(existing)
        if file is None:
            raise FsError(Errno.ENOENT, existing)
        if self.exists(new):
            raise FsError(Errno.EEXIST, new)
        self._require_parent_dir(new)
        file.nlink += 1
        self._files[new] = file

    # -- accounting -----------------------------------------------------------

    @property
    def open_fd_count(self) -> int:
        return len(self._fds)

    def snapshot_paths(self) -> tuple[frozenset[str], frozenset[str]]:
        """(directories, files) — used by tests asserting cleanup."""
        return frozenset(self._dirs), frozenset(self._files)

    def iter_files(self):
        """Yield (path, content) for every file — for invariant checkers."""
        for file_path, node in self._files.items():
            yield file_path, bytes(node.data)
