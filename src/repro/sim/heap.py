"""A tracked heap for simulated programs.

Pointers are plain integers; ``0`` is NULL.  The heap validates every
access, so the classic recovery bugs the paper finds become observable:

* dereferencing NULL (the Apache ``strdup`` bug, Fig. 7) raises
  :class:`~repro.sim.crashes.SegmentationFault`;
* writing past the end of an allocation raises a segfault;
* double ``free`` raises :class:`~repro.sim.crashes.AbortCrash`
  (glibc aborts on heap corruption);
* use-after-free raises a segfault.

Allocation contents are byte arrays, which is enough for the programs
under test to copy strings and buffers around realistically.
"""

from __future__ import annotations

from repro.sim.crashes import AbortCrash, SegmentationFault

__all__ = ["Heap", "NULL"]

#: The null pointer.
NULL = 0


class _Allocation:
    __slots__ = ("data", "freed")

    def __init__(self, size: int) -> None:
        self.data = bytearray(size)
        self.freed = False


class Heap:
    """Bounds- and lifetime-checked allocations addressed by integer id."""

    def __init__(self, stack_snapshot=None) -> None:
        self._allocations: dict[int, _Allocation] = {}
        self._next_addr = 0x1000
        self._bytes_in_use = 0
        # Optional callable returning the current simulated stack, used to
        # decorate crash signals with a trace.
        self._stack_snapshot = stack_snapshot or (lambda: ())
        #: armed bit-flip fault state (``repro.injection.models.bitflip``),
        #: or None; consulted on every checked access.
        self.bitflip = None

    # -- allocation -------------------------------------------------------

    def alloc(self, size: int) -> int:
        """Allocate ``size`` zeroed bytes and return the pointer."""
        if size < 0:
            raise ValueError("allocation size must be non-negative")
        addr = self._next_addr
        # Keep addresses disjoint and stable; alignment mimics malloc.
        self._next_addr += max(size, 1) + 16
        self._allocations[addr] = _Allocation(size)
        self._bytes_in_use += size
        return addr

    def free(self, ptr: int) -> None:
        """Free ``ptr``.  ``free(NULL)`` is a no-op, as in C."""
        if ptr == NULL:
            return
        alloc = self._allocations.get(ptr)
        if alloc is None:
            raise SegmentationFault(
                f"free of wild pointer {ptr:#x}", self._stack_snapshot()
            )
        if alloc.freed:
            raise AbortCrash(
                f"double free of {ptr:#x}", self._stack_snapshot()
            )
        alloc.freed = True
        self._bytes_in_use -= len(alloc.data)

    def realloc(self, ptr: int, size: int) -> int:
        """Resize an allocation, returning the (new) pointer."""
        if ptr == NULL:
            return self.alloc(size)
        old = self._checked(ptr, 0, "realloc")
        new_ptr = self.alloc(size)
        keep = min(len(old.data), size)
        self._allocations[new_ptr].data[:keep] = old.data[:keep]
        self.free(ptr)
        return new_ptr

    # -- access -----------------------------------------------------------

    def _checked(self, ptr: int, end: int, op: str) -> _Allocation:
        if ptr == NULL:
            raise SegmentationFault(
                f"{op} through NULL pointer", self._stack_snapshot()
            )
        alloc = self._allocations.get(ptr)
        if alloc is None:
            raise SegmentationFault(
                f"{op} through wild pointer {ptr:#x}", self._stack_snapshot()
            )
        if alloc.freed:
            raise SegmentationFault(
                f"{op} after free of {ptr:#x}", self._stack_snapshot()
            )
        if end > len(alloc.data):
            raise SegmentationFault(
                f"{op} out of bounds at {ptr:#x}+{end} (size {len(alloc.data)})",
                self._stack_snapshot(),
            )
        if self.bitflip is not None:
            # ZOFI-style transient fault: every validated access ticks
            # the counter; the Nth flips one bit of live data before the
            # operation proceeds.
            self.bitflip.on_access(alloc.data)
        return alloc

    def store(self, ptr: int, offset: int, data: bytes) -> None:
        """Write ``data`` at ``ptr + offset``."""
        alloc = self._checked(ptr, offset + len(data), "store")
        alloc.data[offset : offset + len(data)] = data

    def store_byte(self, ptr: int, offset: int, value: int) -> None:
        """Write a single byte — the idiom behind ``p[len] = '\\0'``."""
        alloc = self._checked(ptr, offset + 1, "store")
        alloc.data[offset] = value & 0xFF

    def load(self, ptr: int, offset: int, size: int) -> bytes:
        """Read ``size`` bytes from ``ptr + offset``."""
        alloc = self._checked(ptr, offset + size, "load")
        return bytes(alloc.data[offset : offset + size])

    def store_string(self, ptr: int, text: str) -> None:
        """Copy a NUL-terminated string into the allocation."""
        raw = text.encode() + b"\x00"
        self.store(ptr, 0, raw)

    def load_string(self, ptr: int) -> str:
        """Read a NUL-terminated string from the allocation."""
        alloc = self._checked(ptr, 1, "load")
        raw = bytes(alloc.data)
        nul = raw.find(b"\x00")
        if nul == -1:
            nul = len(raw)
        return raw[:nul].decode(errors="replace")

    def size_of(self, ptr: int) -> int:
        """The size of the allocation at ``ptr``."""
        return len(self._checked(ptr, 0, "size_of").data)

    # -- accounting ---------------------------------------------------------

    @property
    def bytes_in_use(self) -> int:
        return self._bytes_in_use

    @property
    def live_allocations(self) -> int:
        return sum(1 for a in self._allocations.values() if not a.freed)
