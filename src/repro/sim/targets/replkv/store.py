"""ReplKV: a 3-replica key-value store with WAL-based recovery.

The recovery-heavy sim target the disk and network fault models exist
to exercise: each replica persists a checksummed write-ahead log on the
sim FS, replays it on start, and a leader replicates every write to the
followers over an in-simulation message bus that honours the armed
:class:`~repro.injection.models.net.NetFaultState` (partition / delay /
reorder).  Values live as heap-allocated C strings (``strdup``), giving
the bit-flip model live state to corrupt.

Two recovery bugs are planted deliberately, mirroring the recovery-bug
pattern the paper's evaluation hunts (§7) and the minidb/httpd planted
bugs:

* **Silent replay truncation** — :meth:`Replica._replay` stops at the
  first malformed or checksum-invalid WAL record and keeps only the
  prefix.  That is the *correct* handling of a torn tail, but mid-log
  silent corruption makes it silently drop every committed record after
  the bad one; combined with the missing leader reconciliation below, a
  restarted leader then serves a truncated view.
* **Commit-on-send** — :meth:`ReplKvCluster.put` counts a replication
  *send* as an acknowledgement without waiting for the follower to
  confirm its own WAL append.  A delayed (in-flight) message or a
  follower whose append fails still advances the commit decision, so a
  leader crash right after the ack loses an acknowledged write.

A restarted *leader* additionally trusts its replayed WAL completely —
there is no reconciliation against followers (:meth:`ReplKvCluster.
restart`), which is what turns silent truncation into observable data
loss.

The durability invariant (:func:`check_invariants`) is the
fault-injection-oriented oracle: every acknowledged write must be
readable from the serving leader — or, after a clean shutdown,
recoverable from *some* replica's on-disk WAL (parsed with the correct
skip-bad-records recovery, the ground truth the planted replay code
falls short of).
"""

from __future__ import annotations

from repro.sim.crashes import SimCrash
from repro.sim.heap import NULL
from repro.sim.libc import O_APPEND, O_CREAT, O_TRUNC, O_WRONLY
from repro.sim.process import Env

__all__ = [
    "DATA_DIR",
    "ReplKvCluster",
    "Replica",
    "SimNetwork",
    "check_invariants",
    "parse_record",
    "record_line",
]

DATA_DIR = "/var/replkv"
REPLICAS = 3
QUORUM = 2


def _checksum(body: str) -> int:
    total = 0
    for byte in body.encode():
        total = (total * 31 + byte) % 99991
    return total


def record_line(seq: int, key: str, value: str) -> str:
    """One checksummed WAL record (keys/values must be space-free)."""
    body = f"{seq} {key} {value}"
    return f"{body} {_checksum(body)}\n"


def parse_record(line: str) -> tuple[int, str, str] | None:
    """Decode and verify one WAL record; None when torn or corrupted."""
    parts = line.strip().split(" ")
    if len(parts) != 4:
        return None
    seq_text, key, value, check_text = parts
    try:
        seq = int(seq_text)
        check = int(check_text)
    except ValueError:
        return None
    if seq < 1 or _checksum(f"{seq} {key} {value}") != check:
        return None
    return seq, key, value


class SimNetwork:
    """The replication bus: per-replica inboxes behind the armed
    net-fault state (the same state ``SimLibc.recv/send`` consult)."""

    def __init__(self, env: Env) -> None:
        self.env = env
        self.queues: dict[int, list[tuple]] = {}
        #: in-flight messages parked by a ``delay`` fault: (src, dst, msg).
        self.deferred: list[tuple[int, int, tuple]] = []
        self.dropped = 0

    def _state(self):
        return self.env.libc.net_fault

    def transmit(self, src: int, dst: int, message: tuple) -> bool:
        """Send one message; True when the sender believes it went out.

        A delayed message reports success — the sender cannot tell the
        difference, which is exactly the trap the commit-on-send bug
        walks into.
        """
        state = self._state()
        if state is not None:
            action = state.on_op()
            if action == "partition":
                self.dropped += 1
                self.env.cov.hit("replkv.net.partition_drop")
                return False
            if action == "delay":
                self.env.cov.hit("replkv.net.delayed")
                self.deferred.append((src, dst, message))
                return True
            if action == "reorder":
                self.env.cov.hit("replkv.net.reordered")
                self.queues.setdefault(dst, []).insert(0, message)
                return True
        self.queues.setdefault(dst, []).append(message)
        return True

    def flush_deferred(self) -> None:
        """Deliver parked messages once the fault window has healed."""
        state = self._state()
        if self.deferred and (state is None or state.healed):
            for _src, dst, message in self.deferred:
                self.queues.setdefault(dst, []).append(message)
            self.deferred.clear()

    def drop_from(self, src: int) -> None:
        """A crashed sender's in-flight (deferred) messages die with it."""
        self.deferred = [d for d in self.deferred if d[0] != src]

    def drain(self, dst: int) -> list[tuple]:
        messages = self.queues.get(dst, [])
        self.queues[dst] = []
        return messages

    def is_connected(self) -> bool:
        """Would a transmit right now be delivered (not dropped)?"""
        state = self._state()
        return state is None or state.peek() != "partition"


class Replica:
    """One KV replica: in-heap store, in-memory log, on-disk WAL."""

    def __init__(self, env: Env, rid: int) -> None:
        self.env = env
        self.rid = rid
        self.dir = f"{DATA_DIR}/r{rid}"
        self.wal_path = f"{self.dir}/wal.log"
        #: key -> heap pointer of the strdup'ed current value.
        self.store: dict[str, int] = {}
        #: replayed + applied records, in seq order.
        self.log: list[tuple[int, str, str]] = []
        self.last_seq = 0
        self.alive = False
        self.lagging = False
        self.wal_fd = -1

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> bool:
        env, libc = self.env, self.env.libc
        with env.frame(f"replkv_start_r{self.rid}"):
            if not env.fs.is_dir(self.dir):
                if libc.mkdir(self.dir) != 0:
                    env.cov.hit("replkv.start.mkdir_failed")
                    return False
            if not self._replay():
                env.cov.hit("replkv.start.replay_failed")
                return False
            fd = libc.open(self.wal_path, O_WRONLY | O_CREAT | O_APPEND)
            if fd < 0:
                env.cov.hit("replkv.start.wal_open_failed")
                return False
            self.wal_fd = fd
            self.alive = True
            env.cov.hit("replkv.start.ok")
            return True

    def _replay(self) -> bool:
        """Rebuild state from the WAL (the recovery path under test)."""
        env, libc = self.env, self.env.libc
        with env.frame(f"replkv_replay_r{self.rid}"):
            if not env.fs.is_file(self.wal_path):
                env.cov.hit("replkv.replay.fresh")
                return True
            stream = libc.fopen(self.wal_path, "r")
            if stream == 0:
                env.cov.hit("replkv.replay.open_failed")
                return False
            ok = True
            while True:
                line = libc.fgets(stream)
                if line is None:
                    break
                record = parse_record(line)
                if record is None:
                    # PLANTED BUG (silent replay truncation): a bad
                    # record is assumed to be a torn tail, so replay
                    # keeps the prefix and stops — silently discarding
                    # every later record when the corruption is mid-log.
                    env.cov.hit("replkv.replay.truncated")
                    break
                seq, key, value = record
                # Compaction leaves seq holes, so replay only requires
                # monotonically increasing sequence numbers.
                if seq <= self.last_seq:
                    env.cov.hit("replkv.replay.gap")
                    break
                if not self.apply(seq, key, value):
                    ok = False
                    break
            libc.fclose(stream)
            return ok

    def halt(self) -> None:
        """Graceful stop: close the WAL, release the value heap."""
        env, libc = self.env, self.env.libc
        with env.frame(f"replkv_halt_r{self.rid}"):
            if self.wal_fd >= 0:
                libc.close(self.wal_fd)
                self.wal_fd = -1
            for ptr in self.store.values():
                libc.free(ptr)
            self.store.clear()
            self.log.clear()
            self.last_seq = 0
            self.alive = False
            self.lagging = False

    def crash(self) -> None:
        """kill -9: the kernel reaps fds; memory and in-flight work die."""
        self.env.cov.hit(f"replkv.crash.r{self.rid}")
        if self.wal_fd >= 0:
            try:
                self.env.fs.close(self.wal_fd)
            except Exception:
                pass
            self.wal_fd = -1
        self.store.clear()
        self.log.clear()
        self.last_seq = 0
        self.alive = False
        self.lagging = False

    # -- data path ---------------------------------------------------------

    def wal_append(self, seq: int, key: str, value: str) -> bool:
        env, libc = self.env, self.env.libc
        line = record_line(seq, key, value)
        data = line.encode()
        if libc.write(self.wal_fd, data) != len(data):
            env.cov.hit("replkv.wal.write_failed")
            return False
        if libc.fsync(self.wal_fd) != 0:
            env.cov.hit("replkv.wal.fsync_failed")
            return False
        return True

    def apply(self, seq: int, key: str, value: str) -> bool:
        env, libc = self.env, self.env.libc
        ptr = libc.strdup(value)
        if ptr == NULL:
            env.cov.hit("replkv.apply.oom")
            return False
        old = self.store.get(key)
        if old is not None:
            libc.free(old)
        self.store[key] = ptr
        self.log.append((seq, key, value))
        self.last_seq = seq
        return True

    def value_of(self, key: str) -> str | None:
        ptr = self.store.get(key)
        if ptr is None:
            return None
        return self.env.libc.heap.load_string(ptr)

    def compact(self) -> bool:
        """Rewrite the WAL keeping only each key's latest record."""
        env, libc = self.env, self.env.libc
        with env.frame(f"replkv_compact_r{self.rid}"):
            latest: dict[str, tuple[int, str, str]] = {}
            for seq, key, value in self.log:
                latest[key] = (seq, key, value)
            compacted = sorted(latest.values())
            temp_path = self.wal_path + ".new"
            libc.unlink(temp_path)  # a stale temp from a failed compaction
            fd = libc.open(temp_path, O_WRONLY | O_CREAT | O_TRUNC)
            if fd < 0:
                env.cov.hit("replkv.compact.open_failed")
                return False
            for seq, key, value in compacted:
                data = record_line(seq, key, value).encode()
                if libc.write(fd, data) != len(data):
                    env.cov.hit("replkv.compact.write_failed")
                    libc.close(fd)
                    return False
            if libc.fsync(fd) != 0 or libc.close(fd) != 0:
                env.cov.hit("replkv.compact.sync_failed")
                return False
            libc.close(self.wal_fd)
            self.wal_fd = -1
            if libc.rename(temp_path, self.wal_path) != 0:
                env.cov.hit("replkv.compact.rename_failed")
            fd = libc.open(self.wal_path, O_WRONLY | O_CREAT | O_APPEND)
            if fd < 0:
                env.cov.hit("replkv.compact.reopen_failed")
                self.alive = False
                return False
            self.wal_fd = fd
            self.log = compacted
            env.cov.hit("replkv.compact.ok")
            return True


class ReplKvCluster:
    """The client-facing cluster: leader writes, replication, elections."""

    def __init__(self, env: Env) -> None:
        self.env = env
        self.net = SimNetwork(env)
        self.replicas = [Replica(env, rid) for rid in range(REPLICAS)]
        self.leader = 0
        self.next_seq = 1
        #: client-visible contract: every acknowledged write, latest value.
        self.acknowledged: dict[str, str] = {}
        self.quorum = QUORUM

    # -- membership --------------------------------------------------------

    def boot(self) -> bool:
        env, libc = self.env, self.env.libc
        with env.frame("replkv_boot"):
            if not env.fs.is_dir(DATA_DIR):
                if libc.mkdir(DATA_DIR) != 0:
                    env.cov.hit("replkv.boot.mkdir_failed")
                    return False
            for replica in self.replicas:
                if not replica.start():
                    env.cov.hit("replkv.boot.replica_down")
            if len(self.alive_replicas()) < self.quorum:
                env.cov.hit("replkv.boot.no_quorum")
                return False
            self.elect()
            return True

    def alive_replicas(self) -> list[Replica]:
        return [r for r in self.replicas if r.alive]

    def elect(self) -> int:
        """Leader handoff: longest replayed log wins, ties to lowest id."""
        with self.env.frame("replkv_elect"):
            alive = self.alive_replicas()
            if not alive:
                self.leader = -1
                self.env.cov.hit("replkv.elect.none")
                return -1
            chosen = max(alive, key=lambda r: (r.last_seq, -r.rid))
            self.leader = chosen.rid
            self.env.cov.hit(f"replkv.elect.r{chosen.rid}")
            return self.leader

    def crash_leader(self) -> int:
        """Kill the current leader outright and elect a successor."""
        with self.env.frame("replkv_crash_leader"):
            dead = self.replicas[self.leader]
            dead.crash()
            self.net.drop_from(dead.rid)
            return self.elect()

    def restart(self, rid: int) -> bool:
        """Stop one replica gracefully and boot it back up."""
        env = self.env
        with env.frame(f"replkv_restart_r{rid}"):
            replica = self.replicas[rid]
            if replica.alive:
                replica.halt()
            if not replica.start():
                env.cov.hit("replkv.restart.boot_failed")
                if rid == self.leader:
                    self.elect()
                return False
            if rid != self.leader:
                self.catch_up(replica)
            # PLANTED BUG (no leader reconciliation): a restarted leader
            # trusts its own replayed WAL completely and never compares
            # notes with the followers — silent replay truncation above
            # becomes acknowledged writes missing from the serving view.
            return True

    def isolate(self, rid: int) -> None:
        """Scripted lag: the replica stops consuming its queue."""
        self.replicas[rid].lagging = True
        self.env.cov.hit(f"replkv.isolate.r{rid}")

    def rejoin(self, rid: int) -> None:
        """End the lag: consume the backlog, then fill any holes."""
        replica = self.replicas[rid]
        replica.lagging = False
        self.pump()
        if replica.alive and rid != self.leader:
            self.catch_up(replica)
        self.env.cov.hit(f"replkv.rejoin.r{rid}")

    def catch_up(self, replica: Replica) -> None:
        """Copy entries the follower is missing from the leader's log."""
        env = self.env
        with env.frame(f"replkv_catch_up_r{replica.rid}"):
            if self.leader < 0 or not self.replicas[self.leader].alive:
                return
            leader = self.replicas[self.leader]
            for seq, key, value in leader.log:
                if seq <= replica.last_seq:
                    continue
                if not replica.wal_append(seq, key, value) \
                        or not replica.apply(seq, key, value):
                    env.cov.hit("replkv.catch_up.failed")
                    replica.crash()
                    return
            env.cov.hit("replkv.catch_up.ok")

    # -- client operations -------------------------------------------------

    def put(self, key: str, value: str) -> bool:
        env = self.env
        with env.frame("replkv_put"):
            if self.leader < 0:
                return False
            leader = self.replicas[self.leader]
            if not leader.alive:
                return False
            seq = self.next_seq
            if not leader.wal_append(seq, key, value):
                # A leader that cannot log steps down rather than serve
                # writes it cannot make durable.
                env.cov.hit("replkv.put.leader_wal_failed")
                leader.crash()
                self.elect()
                return False
            if not leader.apply(seq, key, value):
                env.cov.hit("replkv.put.apply_failed")
                return False
            acked = 1
            for replica in self.replicas:
                if replica.rid == leader.rid or not replica.alive:
                    continue
                if self.net.transmit(
                    leader.rid, replica.rid, ("replicate", seq, key, value)
                ):
                    # PLANTED BUG (commit-on-send): a send the network
                    # accepted is counted as an acknowledgement; nothing
                    # waits for the follower to confirm the entry hit
                    # its own WAL, so a delayed message or a failed
                    # follower append still advances the commit.
                    acked += 1
            self.pump()
            if acked >= self.quorum:
                self.next_seq = seq + 1
                self.acknowledged[key] = value
                env.cov.hit("replkv.put.committed")
                return True
            env.cov.hit("replkv.put.no_quorum")
            return False

    def get(self, key: str) -> str | None:
        """Reads are served by the leader — and only the leader."""
        with self.env.frame("replkv_get"):
            if self.leader < 0 or not self.replicas[self.leader].alive:
                return None
            return self.replicas[self.leader].value_of(key)

    def pump(self) -> None:
        """Deliver queued replication traffic to live, non-lagging
        followers (in-order entries only; gaps are rejected so every
        follower log stays a prefix)."""
        env = self.env
        self.net.flush_deferred()
        for replica in self.replicas:
            if not replica.alive or replica.lagging:
                continue
            for message in self.net.drain(replica.rid):
                kind, seq, key, value = message
                if kind != "replicate":
                    continue
                if seq != replica.last_seq + 1:
                    env.cov.hit("replkv.follower.gap")
                    continue
                if not replica.wal_append(seq, key, value):
                    env.cov.hit("replkv.follower.wal_failed")
                    replica.crash()
                    if replica.rid == self.leader:
                        self.elect()
                    break
                if not replica.apply(seq, key, value):
                    env.cov.hit("replkv.follower.apply_failed")
                    break

    def shutdown(self) -> None:
        with self.env.frame("replkv_shutdown"):
            self.pump()
            for replica in self.replicas:
                if replica.alive:
                    replica.halt()


# -- the durability oracle --------------------------------------------------

def _durable_view(env: Env) -> dict[str, str]:
    """What a *correct* recovery could reconstruct from the disks: every
    valid record of every replica WAL (bad records skipped, not
    truncated at), latest seq per key across the whole cluster."""
    newest: dict[str, tuple[int, str]] = {}
    for rid in range(REPLICAS):
        path = f"{DATA_DIR}/r{rid}/wal.log"
        if not env.fs.is_file(path):
            continue
        try:
            text = env.fs.read_file(path).decode(errors="replace")
        except Exception:
            continue
        for line in text.splitlines():
            record = parse_record(line)
            if record is None:
                continue
            seq, key, value = record
            current = newest.get(key)
            if current is None or seq > current[0]:
                newest[key] = (seq, value)
    return {key: value for key, (_seq, value) in newest.items()}


def check_invariants(env: Env) -> list[str]:
    """Acknowledged writes must survive whatever the run did.

    While a leader is serving, every acknowledged write must be readable
    from it; after a clean shutdown, every acknowledged write must be
    recoverable from some replica's WAL.
    """
    cluster = env.state.get("replkv")
    if not isinstance(cluster, ReplKvCluster) or not cluster.acknowledged:
        return []
    violations: list[str] = []
    leader = (
        cluster.replicas[cluster.leader]
        if 0 <= cluster.leader < len(cluster.replicas) else None
    )
    if leader is not None and leader.alive:
        for key, value in sorted(cluster.acknowledged.items()):
            try:
                got = leader.value_of(key)
            except SimCrash:
                got = "<unreadable>"
            if got != value:
                violations.append(
                    f"acknowledged write {key}={value!r} not served by "
                    f"leader r{leader.rid} (got {got!r})"
                )
    else:
        durable = _durable_view(env)
        for key, value in sorted(cluster.acknowledged.items()):
            if durable.get(key) != value:
                violations.append(
                    f"acknowledged write {key}={value!r} not recoverable "
                    f"from any replica WAL (durable: {durable.get(key)!r})"
                )
    return violations
