"""ReplKV: replicated KV store with WAL recovery — the fault-model showcase."""

from repro.sim.targets.replkv.store import (
    ReplKvCluster,
    Replica,
    SimNetwork,
    check_invariants,
    parse_record,
    record_line,
)
from repro.sim.targets.replkv.target import REPLKV_FUNCTIONS, ReplKvTarget

__all__ = [
    "REPLKV_FUNCTIONS",
    "ReplKvCluster",
    "ReplKvTarget",
    "Replica",
    "SimNetwork",
    "check_invariants",
    "parse_record",
    "record_line",
]
