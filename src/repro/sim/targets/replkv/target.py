"""The ReplKV target: 150 recovery-centric tests over a 3-replica store.

The suite is generated parametrically like MiniDB's, but every group
past ``basic`` is a *recovery* scenario — leader crashes, replica
restarts, follower divergence, membership churn — because this target
exists to exercise the disk/net/bitflip fault models against code whose
whole job is surviving faults.  Fault-free, every test passes and every
invariant holds; the planted recovery bugs in the store only manifest
when a fault model perturbs the world at the wrong moment.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.process import Env
from repro.sim.targets.replkv.store import ReplKvCluster, check_invariants
from repro.sim.testsuite import Target, TestCase, TestSuite

__all__ = ["ReplKvTarget", "REPLKV_FUNCTIONS"]

#: X_func for the ReplKV space (11 functions, WAL-I/O-heavy order).
REPLKV_FUNCTIONS: tuple[str, ...] = (
    "write",
    "fsync",
    "open",
    "close",
    "strdup",
    "fopen",
    "fgets",
    "fclose",
    "mkdir",
    "rename",
    "unlink",
)

#: group name -> number of generated tests; totals 150.
GROUP_SIZES = {
    "basic": 30,
    "wal": 25,
    "restart": 30,
    "failover": 25,
    "divergence": 20,
    "churn": 20,
}


def _cluster(env: Env) -> ReplKvCluster:
    """Boot a cluster; expose it to the post-mortem invariant oracle
    *before* boot so even a boot-time fault is audited."""
    cluster = ReplKvCluster(env)
    env.state["replkv"] = cluster
    if not cluster.boot():
        env.exit(1)
    return cluster


def _put_all(env: Env, cluster: ReplKvCluster, pairs: list[tuple[str, str]]) -> None:
    for key, value in pairs:
        env.check(cluster.put(key, value), f"put {key}={value} not committed")


def _check_served(env: Env, cluster: ReplKvCluster) -> None:
    """Every acknowledged write must be readable right now."""
    for key, value in sorted(cluster.acknowledged.items()):
        env.check(
            cluster.get(key) == value,
            f"acknowledged {key}={value} lost from serving leader",
        )


# --------------------------------------------------------------------------
# per-group test bodies (each builder returns a closure over its params)
# --------------------------------------------------------------------------

def _basic_body(i: int) -> Callable[[Env], None]:
    keys = 3 + i % 10
    overwrite = i % 3 == 1

    def body(env: Env) -> None:
        cluster = _cluster(env)
        _put_all(env, cluster, [(f"k{k}", f"v{k}") for k in range(keys)])
        if overwrite:
            _put_all(env, cluster, [(f"k{k}", f"w{k}") for k in range(0, keys, 2)])
        _check_served(env, cluster)
        env.check(cluster.get("absent") is None, "phantom key served")
        cluster.shutdown()
    return body


def _wal_body(i: int) -> Callable[[Env], None]:
    keys = 2 + i % 8
    compact = i % 2 == 0

    def body(env: Env) -> None:
        cluster = _cluster(env)
        _put_all(env, cluster, [(f"k{k}", f"v{k}") for k in range(keys)])
        _put_all(env, cluster, [(f"k{k}", f"u{k}") for k in range(keys)])
        leader = cluster.replicas[cluster.leader]
        if compact:
            env.check(leader.compact(), "leader compaction failed")
            env.check(len(leader.log) == keys, "compacted log keeps stale records")
        follower = (cluster.leader + 1) % len(cluster.replicas)
        env.check(cluster.restart(follower), f"follower r{follower} restart failed")
        env.check(
            cluster.replicas[follower].last_seq == leader.last_seq,
            "restarted follower behind leader",
        )
        _check_served(env, cluster)
        cluster.shutdown()
    return body


def _restart_body(i: int) -> Callable[[Env], None]:
    keys = 2 + i % 8
    kind = i % 3  # 0: restart leader, 1: restart follower, 2: rolling restart

    def body(env: Env) -> None:
        cluster = _cluster(env)
        _put_all(env, cluster, [(f"k{k}", f"v{k}") for k in range(keys)])
        if kind == 0:
            env.check(cluster.restart(cluster.leader), "leader restart failed")
        elif kind == 1:
            follower = (cluster.leader + 2) % len(cluster.replicas)
            env.check(cluster.restart(follower), "follower restart failed")
        else:
            for rid in range(len(cluster.replicas)):
                env.check(cluster.restart(rid), f"rolling restart r{rid} failed")
        _check_served(env, cluster)
        _put_all(env, cluster, [("late", f"l{i}")])
        _check_served(env, cluster)
        cluster.shutdown()
    return body


def _failover_body(i: int) -> Callable[[Env], None]:
    keys = 2 + i % 6
    double = i % 2 == 1

    def body(env: Env) -> None:
        cluster = _cluster(env)
        _put_all(env, cluster, [(f"a{k}", f"v{k}") for k in range(keys)])
        old = cluster.leader
        new = cluster.crash_leader()
        env.check(new >= 0 and new != old, "failover did not move the leader")
        _put_all(env, cluster, [(f"b{k}", f"v{k}") for k in range(keys)])
        if double:
            env.check(cluster.crash_leader() >= 0, "second failover left no leader")
        _check_served(env, cluster)
        cluster.shutdown()
    return body


def _divergence_body(i: int) -> Callable[[Env], None]:
    keys = 2 + i % 6

    def body(env: Env) -> None:
        cluster = _cluster(env)
        _put_all(env, cluster, [(f"k{k}", f"v{k}") for k in range(keys)])
        lagger = (cluster.leader + 1 + i % 2) % len(cluster.replicas)
        cluster.isolate(lagger)
        _put_all(env, cluster, [(f"d{k}", f"v{k}") for k in range(keys)])
        env.check(
            cluster.replicas[lagger].last_seq < cluster.replicas[cluster.leader].last_seq,
            "isolated replica kept up — lag not applied",
        )
        cluster.rejoin(lagger)
        env.check(
            cluster.replicas[lagger].last_seq
            == cluster.replicas[cluster.leader].last_seq,
            "rejoined replica still diverged",
        )
        _check_served(env, cluster)
        cluster.shutdown()
    return body


def _churn_body(i: int) -> Callable[[Env], None]:
    keys = 2 + i % 5
    compact = i % 3 == 0

    def body(env: Env) -> None:
        cluster = _cluster(env)
        _put_all(env, cluster, [(f"k{k}", f"v{k}") for k in range(keys)])
        dead = cluster.leader
        env.check(cluster.crash_leader() >= 0, "failover left no leader")
        env.check(cluster.restart(dead), f"crashed r{dead} did not rejoin")
        _put_all(env, cluster, [(f"c{k}", f"v{k}") for k in range(keys)])
        if compact:
            env.check(cluster.replicas[cluster.leader].compact(), "compaction failed")
        # Restart the *current* leader: its replayed WAL is the only
        # source of truth it consults — the bug-A/bug-B hotspot.
        env.check(cluster.restart(cluster.leader), "leader restart failed")
        _check_served(env, cluster)
        cluster.shutdown()
    return body


_BUILDERS: dict[str, Callable[[int], Callable[[Env], None]]] = {
    "basic": _basic_body,
    "wal": _wal_body,
    "restart": _restart_body,
    "failover": _failover_body,
    "divergence": _divergence_body,
    "churn": _churn_body,
}


class ReplKvTarget(Target):
    """ReplKV 1.0 and its generated 150-test recovery suite."""

    name = "replkv"
    version = "1.0.0"

    def build_suite(self) -> TestSuite:
        tests: list[TestCase] = []
        test_id = 1
        for group, size in GROUP_SIZES.items():
            builder = _BUILDERS[group]
            for i in range(size):
                tests.append(TestCase(
                    id=test_id,
                    name=f"{group}-{i:03d}",
                    group=group,
                    body=builder(i),
                ))
                test_id += 1
        return TestSuite(tests)

    def setup(self, env: Env, test: TestCase) -> None:
        env.fs.mkdir("/var")

    def libc_functions(self) -> tuple[str, ...]:
        return REPLKV_FUNCTIONS

    def invariants(self, env: Env, test: TestCase) -> list[str]:
        return check_invariants(env)
