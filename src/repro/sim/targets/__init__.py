"""Systems under test.

Each subpackage is a miniature but *real* program (or server) written
against the simulated libc, with a default test suite, genuine
error-handling code, and — where the paper found bugs — faithfully
planted recovery bugs:

* :mod:`repro.sim.targets.coreutils` — ``ls``, ``ln``, ``mv`` over the
  simulated filesystem; the 29×19×3 fault space of §7.2-§7.5.
* :mod:`repro.sim.targets.minidb` — MiniDB, the MySQL stand-in with the
  double-unlock (bug #53268) and errmsg.sys (bug #25097) recovery bugs.
* :mod:`repro.sim.targets.httpd` — MiniHttpd, the Apache stand-in with
  the unchecked-``strdup`` NULL-dereference bug (Fig. 7).
* :mod:`repro.sim.targets.docstore` — DocStore v0.8 / v2.0, the MongoDB
  maturity-comparison pair of §7.6.
* :mod:`repro.sim.targets.replkv` — ReplKV, a 3-replica KV store with
  WAL replay, leader handoff, and planted recovery bugs that only the
  disk/net fault models can reach.

Imports are lazy so that using one target does not pay for building the
others' (sometimes large, generated) test suites.
"""

from __future__ import annotations

__all__ = [
    "CoreutilsTarget",
    "HttpdTarget",
    "MiniDbTarget",
    "DocStoreTarget",
    "ReplKvTarget",
    "target_by_name",
]

_LAZY = {
    "CoreutilsTarget": ("repro.sim.targets.coreutils", "CoreutilsTarget"),
    "HttpdTarget": ("repro.sim.targets.httpd", "HttpdTarget"),
    "MiniDbTarget": ("repro.sim.targets.minidb", "MiniDbTarget"),
    "DocStoreTarget": ("repro.sim.targets.docstore", "DocStoreTarget"),
    "ReplKvTarget": ("repro.sim.targets.replkv", "ReplKvTarget"),
}


def __getattr__(name: str):
    entry = _LAZY.get(name)
    if entry is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(entry[0])
    value = getattr(module, entry[1])
    globals()[name] = value
    return value


def target_by_name(name: str):
    """Instantiate a bundled target by name (used by the CLI and benches)."""
    if name.startswith("docstore-"):
        from repro.sim.targets.docstore import DocStoreTarget

        return DocStoreTarget(version=name.split("-", 1)[1])
    known = ("coreutils", "minidb", "httpd", "docstore", "replkv")
    if name == "coreutils":
        from repro.sim.targets.coreutils import CoreutilsTarget

        return CoreutilsTarget()
    if name == "minidb":
        from repro.sim.targets.minidb import MiniDbTarget

        return MiniDbTarget()
    if name == "httpd":
        from repro.sim.targets.httpd import HttpdTarget

        return HttpdTarget()
    if name == "docstore":
        from repro.sim.targets.docstore import DocStoreTarget

        return DocStoreTarget()
    if name == "replkv":
        from repro.sim.targets.replkv import ReplKvTarget

        return ReplKvTarget()
    raise ValueError(f"unknown target {name!r}; available: {known}")
