"""The DocStore target: identical 60-test workload for v0.8 and v2.0.

Per §7.6, both versions are "expose[d] to identical setup and
workloads": the suite below is version-agnostic, and the target's
``version`` parameter selects which implementation runs it.
Φ_docstore = 60 × 16 × 30 = 28,800 faults per version.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.process import Env
from repro.sim.targets.docstore.store import (
    CONFIG_PATH,
    DATA_PATH,
    JOURNAL_PATH,
    DocStore,
)
from repro.sim.testsuite import Target, TestCase, TestSuite

__all__ = ["DocStoreTarget", "DOCSTORE_FUNCTIONS"]

#: X_func for the DocStore space.
DOCSTORE_FUNCTIONS: tuple[str, ...] = (
    "malloc",
    "open",
    "close",
    "read",
    "write",
    "fsync",
    "fopen",
    "fclose",
    "fgets",
    "fputs",
    "fflush",
    "ferror",
    "stat",
    "unlink",
    "rename",
    "setlocale",
)


def _booted(env: Env, version: str) -> DocStore:
    store = DocStore(env, version)
    env.state["store"] = store  # visible to post-mortem invariant checks
    if not store.boot():
        env.exit(1)
    return store


def _insert_body(version: str, i: int) -> Callable[[Env], None]:
    docs = 2 + i * 2

    def body(env: Env) -> None:
        store = _booted(env, version)
        for d in range(docs):
            env.check(store.insert("events", f"doc-{d}"), f"insert {d} failed")
        env.check(len(store.find("events", "doc-")) == docs, "count mismatch")
        env.check(store.snapshot(), "snapshot failed")
        store.shutdown()
        env.check(
            env.fs.read_file(DATA_PATH).count(b"doc-") == docs,
            "snapshot content wrong",
        )
    return body


def _find_body(version: str, i: int) -> Callable[[Env], None]:
    docs = 4 + i

    def body(env: Env) -> None:
        store = _booted(env, version)
        for d in range(docs):
            env.check(store.insert("users", f"user-{d % 3}-{d}"), "insert failed")
        hits = store.find("users", "user-0-")
        expected = sum(1 for d in range(docs) if d % 3 == 0)
        env.check(len(hits) == expected, f"found {len(hits)}, expected {expected}")
        store.shutdown()
    return body


def _remove_body(version: str, i: int) -> Callable[[Env], None]:
    docs = 3 + i

    def body(env: Env) -> None:
        store = _booted(env, version)
        for d in range(docs):
            env.check(store.insert("queue", f"job-{d}"), "insert failed")
        env.check(store.remove("queue", "job-0"), "remove failed")
        env.check(not store.remove("queue", "job-zzz"), "ghost remove should fail")
        env.check(len(store.find("queue", "job-")) == docs - 1, "count wrong")
        store.shutdown()
    return body


def _persist_body(version: str, i: int) -> Callable[[Env], None]:
    docs = 2 + i
    with_journal = i % 3 == 2  # every third test boots over an old journal

    def body(env: Env) -> None:
        store = _booted(env, version)
        if with_journal and store.modern:
            env.check(store.replayed_ops > 0, "journal replay found nothing")
        for d in range(docs):
            env.check(store.insert("logs", f"entry-{d}"), "insert failed")
        env.check(store.snapshot(), "snapshot failed")
        env.check(store.snapshot(), "second snapshot failed")
        store.shutdown()
        env.check(env.fs.is_file(DATA_PATH), "data file missing")
    return body


def _admin_body(version: str, i: int) -> Callable[[Env], None]:
    docs = 1 + i

    def body(env: Env) -> None:
        store = _booted(env, version)
        for d in range(docs):
            env.check(store.insert("metrics", f"m-{d}"), "insert failed")
        env.check(store.snapshot(), "snapshot failed")
        counts = store.stats()
        env.check(counts.get("metrics") == docs, "stats count wrong")
        if store.modern:
            env.check(counts.get("data_bytes", -1) > 0, "data stats missing")
        store.shutdown()
    return body


#: group name -> (builder, count); totals 60 tests.
_GROUPS: tuple[tuple[str, Callable[[str, int], Callable[[Env], None]], int], ...] = (
    ("insert", _insert_body, 15),
    ("find", _find_body, 10),
    ("remove", _remove_body, 10),
    ("persist", _persist_body, 15),
    ("admin", _admin_body, 10),
)


class DocStoreTarget(Target):
    """DocStore at a chosen maturity ("0.8" or "2.0")."""

    name = "docstore"

    def __init__(self, version: str = "2.0") -> None:
        if version not in ("0.8", "2.0"):
            raise ValueError(f"unsupported DocStore version {version!r}")
        super().__init__()
        self.version = version
        self._journal_tests: set[int] = set()

    def build_suite(self) -> TestSuite:
        tests: list[TestCase] = []
        test_id = 1
        for group, builder, count in _GROUPS:
            for i in range(count):
                if group == "persist" and i % 3 == 2:
                    self._journal_tests.add(test_id)
                tests.append(TestCase(
                    id=test_id,
                    name=f"{group}-{i:02d}",
                    group=group,
                    body=builder(self.version, i),
                ))
                test_id += 1
        return TestSuite(tests)

    def setup(self, env: Env, test: TestCase) -> None:
        fs = env.fs
        fs.mkdir("/etc")
        fs.mkdir("/data")
        fs.create_file(CONFIG_PATH, b"durability=full\ncache=64\n")
        self.suite  # populate _journal_tests
        if test.id in self._journal_tests:
            fs.create_file(
                JOURNAL_PATH,
                b"insert logs recovered-0\ninsert logs recovered-1\n",
            )

    def libc_functions(self) -> tuple[str, ...]:
        return DOCSTORE_FUNCTIONS

    def invariants(self, env: Env, test) -> list[str]:
        """The snapshot-durability contract (§7's assertion style).

        Once ``snapshot()`` has acknowledged success, the on-disk data
        file must contain an acknowledged snapshot — no matter what
        failed afterwards.  v2.0's atomic temp-file + rename upholds
        this; v0.8's truncate-in-place does not: a later failed snapshot
        destroys the acknowledged one (silent data loss).
        """
        store = env.state.get("store")
        if store is None or not store.acked_snapshots:
            return []
        if not env.fs.exists(DATA_PATH):
            return ["acknowledged snapshot vanished from disk"]
        content = env.fs.read_file(DATA_PATH)
        if content not in store.acked_snapshots:
            return [
                "acknowledged snapshot destroyed: data file holds "
                f"{len(content)} bytes matching no acknowledged state"
            ]
        return []
