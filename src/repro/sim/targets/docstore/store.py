"""DocStore: the MongoDB stand-in, at two maturities (§7.6).

The paper compares AFEX on MongoDB v0.8 (pre-production) and v2.0
(industrial-strength), finding that (a) v2.0's richer feature set means
*more* interaction with the environment and therefore more failure
opportunities, (b) AFEX's efficiency advantage over random search
shrinks as the code matures, and (c) ironically, AFEX could crash v2.0
but not v0.8.

Both versions expose the same API and run the same workloads; the
difference is internal:

* **v0.8** keeps documents in memory and persists with a naive
  single-file snapshot — very few libc calls, minimal error handling
  (a failed snapshot simply loses data and reports failure).
* **v2.0** adds a boot-time config file, a durable operation journal
  (append + fsync per write), journal replay on boot, atomic
  temp-file + rename snapshots, and file-level statistics — much more
  environment interaction, and almost all of it carefully checked.
  The *one* unchecked path is journal replay: the replay buffer's
  ``malloc`` result is used without a NULL check, so an allocation
  failure during recovery-from-journal segfaults v2.0.  v0.8 has no
  replay code at all, hence no way to crash it.
"""

from __future__ import annotations

from repro.sim.errnos import Errno
from repro.sim.filesystem import O_CREAT, O_RDONLY, O_TRUNC, O_WRONLY
from repro.sim.heap import NULL
from repro.sim.process import Env

__all__ = ["DocStore", "DATA_PATH", "JOURNAL_PATH", "CONFIG_PATH"]

DATA_PATH = "/data/docstore.db"
JOURNAL_PATH = "/data/journal"
CONFIG_PATH = "/etc/docstore.conf"


class DocStore:
    """One simulated document store bound to a test Env."""

    def __init__(self, env: Env, version: str = "2.0") -> None:
        if version not in ("0.8", "2.0"):
            raise ValueError(f"unsupported DocStore version {version!r}")
        self.env = env
        self.version = version
        self.collections: dict[str, list[str]] = {}
        self.journal_stream = 0
        self.config: dict[str, str] = {}
        self.errors: list[str] = []
        self.replayed_ops = 0
        #: payloads of snapshots the store *acknowledged* (returned True
        #: for) — the durability contract invariant checks enforce.
        self.acked_snapshots: list[bytes] = []

    @property
    def modern(self) -> bool:
        return self.version == "2.0"

    # -- boot ---------------------------------------------------------------

    def boot(self) -> bool:
        env = self.env
        with env.frame("docstore_boot"):
            env.cov.hit(f"docstore.{self.version}.boot")
            if not self.modern:
                return True  # v0.8: no config, no journal, nothing to do
            if not self._read_config():
                return False
            if env.libc.stat(JOURNAL_PATH) is not None:
                self._replay_journal()
            return self._open_journal()

    def _read_config(self) -> bool:
        env = self.env
        libc = env.libc
        with env.frame("read_config"):
            stream = libc.fopen(CONFIG_PATH, "r")
            if stream == NULL:
                env.cov.hit("docstore.config.missing")
                # v2.0 handles this: fall back to defaults.
                self.config = {"durability": "full"}
                return True
            while True:
                line = libc.fgets(stream)
                if line is None:
                    if libc.ferror(stream):
                        env.cov.hit("docstore.config.read_error")
                        self.errors.append("config read error")
                        libc.fclose(stream)
                        return False
                    break
                key, _, value = line.strip().partition("=")
                if key:
                    self.config[key] = value
            libc.fclose(stream)
            env.cov.hit("docstore.config.ok")
            return True

    def _replay_journal(self) -> None:
        """v2.0 journal replay — contains the unchecked-malloc crash bug."""
        env = self.env
        libc = env.libc
        with env.frame("journal_replay"):
            env.cov.hit("docstore.replay.enter")
            fd = libc.open(JOURNAL_PATH, O_RDONLY)
            if fd < 0:
                env.cov.hit("docstore.replay.open_failed")
                self.errors.append("journal open failed")
                return
            st = libc.stat(JOURNAL_PATH)
            size = st.size if st is not None else 4096
            # BUG: replay buffer allocation is not checked for NULL —
            # an OOM during crash recovery crashes the recovery itself.
            buffer_ptr = libc.malloc(size + 1)
            offset = 0
            while True:
                chunk = libc.read(fd, 256)
                if chunk == -1:
                    if libc.errno is Errno.EINTR:
                        continue
                    env.cov.hit("docstore.replay.read_failed")
                    self.errors.append("journal read failed")
                    break
                if not chunk:
                    break
                libc.heap.store(buffer_ptr, offset, bytes(chunk))  # segfault if NULL
                offset += len(chunk)
            libc.close(fd)
            if offset:
                raw = libc.heap.load(buffer_ptr, 0, offset)
                for line in raw.decode(errors="replace").splitlines():
                    op, _, rest = line.partition(" ")
                    collection, _, doc = rest.partition(" ")
                    if op == "insert" and collection:
                        self.collections.setdefault(collection, []).append(doc)
                        self.replayed_ops += 1
                    elif op == "remove" and collection:
                        docs = self.collections.get(collection, [])
                        if doc in docs:
                            docs.remove(doc)
                        self.replayed_ops += 1
            if buffer_ptr != NULL:
                libc.free(buffer_ptr)
            env.cov.hit("docstore.replay.done")

    def _open_journal(self) -> bool:
        env = self.env
        libc = env.libc
        with env.frame("journal_open"):
            self.journal_stream = libc.fopen(JOURNAL_PATH, "a")
            if self.journal_stream == NULL:
                env.cov.hit("docstore.journal.open_failed")
                self.errors.append("cannot open journal")
                return False
            env.cov.hit("docstore.journal.open")
            return True

    # -- operations ------------------------------------------------------------

    def insert(self, collection: str, doc: str) -> bool:
        env = self.env
        with env.frame("doc_insert"):
            env.cov.hit(f"docstore.{self.version}.insert")
            if self.modern and not self._journal_write(f"insert {collection} {doc}"):
                return False
            self.collections.setdefault(collection, []).append(doc)
            return True

    def find(self, collection: str, needle: str) -> list[str]:
        env = self.env
        with env.frame("doc_find"):
            env.cov.hit(f"docstore.{self.version}.find")
            return [d for d in self.collections.get(collection, []) if needle in d]

    def remove(self, collection: str, doc: str) -> bool:
        env = self.env
        with env.frame("doc_remove"):
            env.cov.hit(f"docstore.{self.version}.remove")
            docs = self.collections.get(collection, [])
            if doc not in docs:
                self.errors.append("no such document")
                return False
            if self.modern and not self._journal_write(f"remove {collection} {doc}"):
                return False
            docs.remove(doc)
            return True

    def _journal_write(self, entry: str) -> bool:
        env = self.env
        libc = env.libc
        with env.frame("journal_append"):
            if self.journal_stream == 0:
                self.errors.append("journal not open")
                return False
            if libc.fputs(entry + "\n", self.journal_stream) < 0:
                env.cov.hit("docstore.journal.write_failed")
                self.errors.append("journal write failed")
                return False
            if self.config.get("durability", "full") == "full":
                if libc.fflush(self.journal_stream) != 0:
                    env.cov.hit("docstore.journal.flush_failed")
                    self.errors.append("journal flush failed")
                    return False
            env.cov.hit("docstore.journal.append")
            return True

    # -- persistence ---------------------------------------------------------------

    def snapshot(self) -> bool:
        if self.modern:
            return self._snapshot_atomic()
        return self._snapshot_naive()

    def _snapshot_naive(self) -> bool:
        """v0.8: overwrite the data file in place.  Crude but simple."""
        env = self.env
        libc = env.libc
        with env.frame("snapshot_naive"):
            env.cov.hit("docstore.0.8.snapshot")
            fd = libc.open(DATA_PATH, O_CREAT | O_WRONLY | O_TRUNC)
            if fd < 0:
                self.errors.append("snapshot open failed")
                return False
            payload = self._serialize()
            if payload and libc.write(fd, payload) < 0:
                # v0.8's handling is poor: the file is already truncated,
                # so a failed write has destroyed the previous snapshot.
                env.cov.hit("docstore.0.8.snapshot_write_failed")
                self.errors.append("snapshot write failed")
                libc.close(fd)
                return False
            libc.close(fd)  # return value ignored in v0.8
            self.acked_snapshots.append(payload)
            return True

    def _snapshot_atomic(self) -> bool:
        """v2.0: temp file + fsync + atomic rename."""
        env = self.env
        libc = env.libc
        with env.frame("snapshot_atomic"):
            env.cov.hit("docstore.2.0.snapshot")
            tmp = DATA_PATH + ".tmp"
            fd = libc.open(tmp, O_CREAT | O_WRONLY | O_TRUNC)
            if fd < 0:
                self.errors.append("snapshot open failed")
                return False
            payload = self._serialize()
            if payload and libc.write(fd, payload) < 0:
                env.cov.hit("docstore.2.0.snapshot_write_failed")
                self.errors.append("snapshot write failed")
                libc.close(fd)
                libc.unlink(tmp)
                return False
            if libc.fsync(fd) != 0:
                env.cov.hit("docstore.2.0.snapshot_fsync_failed")
                self.errors.append("snapshot fsync failed")
                libc.close(fd)
                libc.unlink(tmp)
                return False
            if libc.close(fd) != 0:
                env.cov.hit("docstore.2.0.snapshot_close_failed")
                self.errors.append("snapshot close failed")
                libc.unlink(tmp)
                return False
            if libc.rename(tmp, DATA_PATH) != 0:
                env.cov.hit("docstore.2.0.snapshot_rename_failed")
                self.errors.append("snapshot rename failed")
                libc.unlink(tmp)
                return False
            env.cov.hit("docstore.2.0.snapshot_ok")
            self.acked_snapshots.append(payload)
            return True

    def _serialize(self) -> bytes:
        lines = []
        for collection in sorted(self.collections):
            for doc in self.collections[collection]:
                lines.append(f"{collection} {doc}")
        return ("\n".join(lines) + "\n").encode() if lines else b""

    # -- admin ------------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        env = self.env
        libc = env.libc
        with env.frame("doc_stats"):
            env.cov.hit(f"docstore.{self.version}.stats")
            counts = {c: len(d) for c, d in self.collections.items()}
            if self.modern:
                st = libc.stat(JOURNAL_PATH)
                counts["journal_bytes"] = st.size if st is not None else -1
                st = libc.stat(DATA_PATH)
                counts["data_bytes"] = st.size if st is not None else -1
            return counts

    def shutdown(self) -> None:
        env = self.env
        libc = env.libc
        with env.frame("docstore_shutdown"):
            if self.journal_stream:
                if libc.fflush(self.journal_stream) != 0:
                    env.cov.hit("docstore.shutdown.flush_failed")
                libc.fclose(self.journal_stream)
                self.journal_stream = 0
