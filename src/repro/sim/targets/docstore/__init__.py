"""DocStore: the MongoDB maturity-comparison pair (v0.8 / v2.0)."""

from repro.sim.targets.docstore.store import (
    CONFIG_PATH,
    DATA_PATH,
    JOURNAL_PATH,
    DocStore,
)
from repro.sim.targets.docstore.target import DOCSTORE_FUNCTIONS, DocStoreTarget

__all__ = [
    "CONFIG_PATH",
    "DATA_PATH",
    "DOCSTORE_FUNCTIONS",
    "DocStore",
    "DocStoreTarget",
    "JOURNAL_PATH",
]
