"""MiniHttpd: the Apache httpd stand-in with the Fig. 7 strdup bug."""

from repro.sim.targets.httpd.server import BootError, HttpdServer, KNOWN_MODULES
from repro.sim.targets.httpd.target import HTTPD_FUNCTIONS, HttpdTarget

__all__ = [
    "BootError",
    "HTTPD_FUNCTIONS",
    "HttpdServer",
    "HttpdTarget",
    "KNOWN_MODULES",
]
