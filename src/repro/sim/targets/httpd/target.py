"""The MiniHttpd target: 58 tests, 19 libc functions, calls 1-10.

Φ_httpd = 58 × 19 × 10 = 11,020 faults, matching the paper's Apache
space (§7).  Tests are grouped by functionality — boot/config, module
loading, static serving, logging, protocol errors, and multi-request
sessions — so the ``X_test`` axis has the group structure the explorer
exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sim.process import Env
from repro.sim.targets.httpd.server import BootError, HttpdServer
from repro.sim.testsuite import Target, TestCase, TestSuite

__all__ = ["HttpdTarget", "HTTPD_FUNCTIONS"]

#: X_func for the httpd space, grouped by category.
HTTPD_FUNCTIONS: tuple[str, ...] = (
    "malloc",
    "send",
    "strdup",
    "open",
    "close",
    "read",
    "write",
    "fopen",
    "fclose",
    "fgets",
    "fputs",
    "fflush",
    "stat",
    "ferror",
    "socket",
    "bind",
    "listen",
    "accept",
    "recv",
)

_DEFAULT_MODULES = "mod_core,mod_mime,mod_dir,mod_log_config,mod_alias"


@dataclass(frozen=True)
class _HttpdTestDef:
    """A parametric httpd test: config + content + requests + expectations."""

    name: str
    group: str
    config: tuple[tuple[str, str], ...]
    files: tuple[tuple[str, bytes], ...] = ()
    requests: tuple[str, ...] = ()
    #: expected count of 200 responses among the replies.
    expect_ok: int = 0
    #: expected total replies (requests that got *some* response).
    expect_replies: int = 0
    #: substrings that must appear in the access log, in order of mention.
    expect_log: tuple[str, ...] = ()
    #: if True the test expects the server to fail to boot.
    expect_boot_failure: bool = False
    extra_checks: Callable[[Env, HttpdServer], None] | None = None


def _run_server(env: Env, definition: _HttpdTestDef) -> None:
    """The shared test body: boot, serve, shut down, assert."""
    server = HttpdServer(env)
    with env.frame("httpd_main"):
        try:
            server.boot()
        except BootError as exc:
            env.cov.hit("httpd.test.boot_failed")
            env.error(f"httpd: {exc.reason}")
            server.shutdown()
            if definition.expect_boot_failure:
                env.cov.hit("httpd.test.boot_failed_expected")
                return  # test passes: the failure was the point
            env.exit(1)
        if definition.expect_boot_failure:
            env.check(False, "server booted despite invalid configuration")
        for request in definition.requests:
            env.libc.net_inbox.append(request.encode())
        server.serve_pending()
        server.shutdown()

    replies = [r.decode(errors="replace") for r in env.libc.net_outbox]
    ok = sum(1 for r in replies if r.startswith("HTTP/1.1 200"))
    env.check(
        len(replies) == definition.expect_replies,
        f"expected {definition.expect_replies} replies, got {len(replies)}",
    )
    env.check(
        ok == definition.expect_ok,
        f"expected {definition.expect_ok} OK responses, got {ok}",
    )
    if definition.expect_log:
        log = env.fs.read_file("/var/log/access_log").decode()
        for needle in definition.expect_log:
            env.check(needle in log, f"log entry {needle!r} missing")
    if definition.extra_checks is not None:
        definition.extra_checks(env, server)


def _check_modules(count: int) -> Callable[[Env, HttpdServer], None]:
    def check(env: Env, server: HttpdServer) -> None:
        env.check(
            len(server.modules) == count,
            f"expected {count} modules, got {len(server.modules)}",
        )
    return check


def _pad(config: tuple[tuple[str, str], ...], n: int):
    """Append n tuning directives, shifting later call numbers smoothly."""
    return config + tuple(
        (f"Tune{i}", f"v{i}") for i in range(n)
    )


def _build_defs() -> tuple[_HttpdTestDef, ...]:
    defs: list[_HttpdTestDef] = []
    base_config = (
        ("Listen", "80"),
        ("DocumentRoot", "/srv/www"),
        ("CustomLog", "/var/log/access_log"),
        ("LoadModules", _DEFAULT_MODULES),
    )
    index = (("/srv/www/index.html", b"<html>it works</html>"),)

    # -- boot/config group (10 tests) --------------------------------------
    defs.append(_HttpdTestDef(
        "boot-minimal", "config", base_config, index,
        ("GET /",), expect_ok=1, expect_replies=1,
    ))
    defs.append(_HttpdTestDef(
        "boot-alt-port", "config",
        base_config[1:] + (("Listen", "8080"),), index,
        ("GET /",), expect_ok=1, expect_replies=1,
    ))
    defs.append(_HttpdTestDef(
        "boot-comments-in-config", "config",
        base_config + (("#", "comment line"),), index,
        ("GET /",), expect_ok=1, expect_replies=1,
    ))
    defs.append(_HttpdTestDef(
        "boot-default-docroot", "config",
        (("Listen", "80"), ("LoadModules", "mod_core")), index,
        ("GET /",), expect_ok=1, expect_replies=1,
    ))
    defs.append(_HttpdTestDef(
        "boot-unknown-module", "config",
        base_config[:3] + (("LoadModules", "mod_bogus"),),
        expect_boot_failure=True,
    ))
    defs.append(_HttpdTestDef(
        "boot-many-directives", "config",
        base_config + tuple((f"Define{i}", f"value{i}") for i in range(8)),
        index, ("GET /",), expect_ok=1, expect_replies=1,
    ))
    defs.append(_HttpdTestDef(
        "boot-no-requests", "config", base_config, index,
        (), expect_ok=0, expect_replies=0,
    ))
    defs.append(_HttpdTestDef(
        "boot-empty-docroot", "config", base_config, (),
        ("GET /",), expect_ok=0, expect_replies=1,
        expect_log=("404",),
    ))
    defs.append(_HttpdTestDef(
        "boot-deep-docroot", "config",
        base_config[:1] + (("DocumentRoot", "/srv/www/deep/er"),) + base_config[2:],
        (("/srv/www/deep/er/index.html", b"deep"),),
        ("GET /",), expect_ok=1, expect_replies=1,
    ))
    defs.append(_HttpdTestDef(
        "boot-then-single-404", "config", base_config, index,
        ("GET /missing.html",), expect_ok=0, expect_replies=1,
        expect_log=("404",),
    ))

    # -- module-loading group (10 tests) ------------------------------------
    module_counts = (1, 2, 3, 4, 5, 6, 8, 10, 12, 16)
    from repro.sim.targets.httpd.server import KNOWN_MODULES

    for count in module_counts:
        chosen = ",".join(KNOWN_MODULES[:count])
        defs.append(_HttpdTestDef(
            f"modules-{count:02d}", "modules",
            base_config[:3] + (("LoadModules", chosen),), index,
            ("GET /",), expect_ok=1, expect_replies=1,
            extra_checks=_check_modules(count),
        ))

    # -- static serving group (15 tests) --------------------------------------
    sizes = (1, 64, 512, 1024, 1536, 2048, 4096)
    for i, size in enumerate(sizes):
        body = bytes((j % 251 for j in range(size)))
        defs.append(_HttpdTestDef(
            f"static-size-{size:04d}", "static",
            _pad(base_config, i), index + ((f"/srv/www/f{i}.bin", body),),
            (f"GET /f{i}.bin",), expect_ok=1, expect_replies=1,
        ))
    for i, count in enumerate((2, 3, 4)):
        files = tuple(
            (f"/srv/www/page{j}.html", f"page {j}".encode()) for j in range(count)
        )
        defs.append(_HttpdTestDef(
            f"static-multi-{count}", "static", base_config, index + files,
            tuple(f"GET /page{j}.html" for j in range(count)),
            expect_ok=count, expect_replies=count,
        ))
    defs.append(_HttpdTestDef(
        "static-index-implicit", "static", base_config, index,
        ("GET /",), expect_ok=1, expect_replies=1,
    ))
    defs.append(_HttpdTestDef(
        "static-mixed-hits", "static", base_config,
        index + (("/srv/www/a.html", b"A"),),
        ("GET /a.html", "GET /missing", "GET /a.html"),
        expect_ok=2, expect_replies=3, expect_log=("404",),
    ))
    defs.append(_HttpdTestDef(
        "static-nested-path", "static", base_config,
        index + (("/srv/www/sub/leaf.html", b"leaf"),),
        ("GET /sub/leaf.html",), expect_ok=1, expect_replies=1,
    ))
    defs.append(_HttpdTestDef(
        "static-all-missing", "static", base_config, index,
        ("GET /x", "GET /y"), expect_ok=0, expect_replies=2,
    ))
    defs.append(_HttpdTestDef(
        "static-large-then-404", "static", base_config,
        index + (("/srv/www/big.bin", b"z" * 3000),),
        ("GET /big.bin", "GET /gone"), expect_ok=1, expect_replies=2,
    ))

    # -- logging group (8 tests) -------------------------------------------------
    for i, hits in enumerate((1, 2, 3, 5)):
        defs.append(_HttpdTestDef(
            f"log-{hits}-hits", "logging", base_config, index,
            tuple("GET /" for _ in range(hits)),
            expect_ok=hits, expect_replies=hits,
            expect_log=tuple("200" for _ in range(1)),
        ))
    defs.append(_HttpdTestDef(
        "log-alt-path", "logging",
        base_config[:2] + (("CustomLog", "/var/log/alt_log"),
                           ("LoadModules", _DEFAULT_MODULES)),
        index, ("GET /",), expect_ok=1, expect_replies=1,
        extra_checks=lambda env, server: env.check(
            b"200" in env.fs.read_file("/var/log/alt_log"),
            "alternate log not written",
        ),
    ))
    defs.append(_HttpdTestDef(
        "log-mixed-status", "logging", base_config, index,
        ("GET /", "GET /gone"), expect_ok=1, expect_replies=2,
        expect_log=("200", "404"),
    ))
    defs.append(_HttpdTestDef(
        "log-405", "logging", base_config, index,
        ("POST /",), expect_ok=0, expect_replies=1, expect_log=("405",),
    ))
    defs.append(_HttpdTestDef(
        "log-empty-run", "logging", base_config, index,
        (), expect_ok=0, expect_replies=0,
    ))

    # -- protocol-error group (7 tests) --------------------------------------------
    defs.append(_HttpdTestDef(
        "proto-post", "protocol", base_config, index,
        ("POST /submit",), expect_ok=0, expect_replies=1,
    ))
    defs.append(_HttpdTestDef(
        "proto-put", "protocol", base_config, index,
        ("PUT /x",), expect_ok=0, expect_replies=1,
    ))
    defs.append(_HttpdTestDef(
        "proto-delete", "protocol", base_config, index,
        ("DELETE /x",), expect_ok=0, expect_replies=1,
    ))
    defs.append(_HttpdTestDef(
        "proto-garbage", "protocol", base_config, index,
        ("XYZZY",), expect_ok=0, expect_replies=1,
    ))
    defs.append(_HttpdTestDef(
        "proto-empty-path", "protocol", base_config, index,
        ("GET ",), expect_ok=1, expect_replies=1,  # empty path -> "/"
    ))
    defs.append(_HttpdTestDef(
        "proto-mixed", "protocol", base_config, index,
        ("GET /", "POST /", "GET /"), expect_ok=2, expect_replies=3,
    ))
    defs.append(_HttpdTestDef(
        "proto-many-bad", "protocol", base_config, index,
        ("POST /", "PUT /", "DELETE /"), expect_ok=0, expect_replies=3,
    ))

    # -- session group (8 tests): longer request trains ---------------------------
    for i, train in enumerate((4, 6, 8, 10, 12, 16, 20, 24)):
        defs.append(_HttpdTestDef(
            f"session-{train:02d}-requests", "session",
            _pad(base_config, i), index,
            tuple("GET /" for _ in range(train)),
            expect_ok=train, expect_replies=train,
        ))

    return tuple(defs)


class HttpdTarget(Target):
    """MiniHttpd and its 58-test default suite (Φ_httpd, §7.1)."""

    name = "httpd"
    version = "2.3.8"

    def __init__(self) -> None:
        super().__init__()
        self._defs = _build_defs()

    def build_suite(self) -> TestSuite:
        tests = []
        for index, definition in enumerate(self._defs, start=1):
            tests.append(TestCase(
                id=index,
                name=definition.name,
                group=definition.group,
                body=_make_body(definition),
            ))
        return TestSuite(tests)

    def setup(self, env: Env, test: TestCase) -> None:
        definition = self._defs[test.id - 1]
        fs = env.fs
        fs.mkdir("/etc")
        fs.mkdir("/var")
        fs.mkdir("/var/log")
        fs.mkdir("/srv")
        fs.mkdir("/srv/www")
        config_lines = [f"{key} {value}" for key, value in definition.config]
        fs.create_file("/etc/httpd.conf", ("\n".join(config_lines) + "\n").encode())
        for path, data in definition.files:
            parent_parts = path.split("/")[1:-1]
            built = ""
            for part in parent_parts:
                built += "/" + part
                if not fs.exists(built):
                    fs.mkdir(built)
            fs.create_file(path, data)

    def libc_functions(self) -> tuple[str, ...]:
        return HTTPD_FUNCTIONS


def _make_body(definition: _HttpdTestDef) -> Callable[[Env], None]:
    def body(env: Env) -> None:
        _run_server(env, definition)
    return body
