"""MiniHttpd: the Apache httpd stand-in.

A small web server with Apache's architectural shape: a config parser
(``fopen``/``fgets`` over ``/etc/httpd.conf``), a module registry, a
listener socket, a request pipeline routed through handler modules, and
an access log.  Error handling matches the paper's description of
Apache: "extensive checking code for error conditions like NULL returns
from malloc throughout its code base; the recovery code for an
out-of-memory error generally logs the error and shuts down the server"
— every ``malloc`` here is checked and recovers gracefully.

**The planted bug** (paper Fig. 7, config.c:578): module *short name*
registration does ``short_name = strdup(sym_name)`` and immediately
writes ``short_name[len] = '\\0'`` **without checking for NULL**.  When
``strdup`` fails with ENOMEM during module registration, the server
segfaults before any recovery/logging code runs — exactly the
hard-to-diagnose crash AFEX found.  ``strdup`` calls made by the config
parser *are* checked, so only a band of the ``call`` axis crashes:
that is real structure for the explorer to find.
"""

from __future__ import annotations

from repro.sim.errnos import Errno
from repro.sim.filesystem import O_RDONLY
from repro.sim.heap import NULL
from repro.sim.process import Env

__all__ = ["HttpdServer", "BootError"]


class BootError(Exception):
    """Server failed to boot gracefully (logged + clean shutdown)."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


#: handler modules known to the server; configs choose a subset.
KNOWN_MODULES = (
    "mod_core",
    "mod_mime",
    "mod_dir",
    "mod_log_config",
    "mod_alias",
    "mod_auth_basic",
    "mod_authz_host",
    "mod_autoindex",
    "mod_cgi",
    "mod_deflate",
    "mod_env",
    "mod_headers",
    "mod_include",
    "mod_negotiation",
    "mod_rewrite",
    "mod_setenvif",
)


class HttpdServer:
    """One simulated server process bound to a test's Env."""

    def __init__(self, env: Env) -> None:
        self.env = env
        self.config: dict[str, str] = {}
        self.modules: list[str] = []
        #: heap pointers of module short names (the Fig. 7 array).
        self.module_short_names: list[int] = []
        self.listen_sock = -1
        self.log_stream = 0
        self.booted = False
        self.requests_served = 0
        self.requests_failed = 0

    # -- boot ----------------------------------------------------------------

    def boot(self, config_path: str = "/etc/httpd.conf") -> None:
        """Parse config, register modules, open log, bind the listener.

        Raises :class:`BootError` for handled failures (the graceful
        shutdown path).  The strdup bug can segfault here instead.
        """
        env = self.env
        with env.frame("server_boot"):
            env.cov.hit("httpd.boot.enter")
            self._read_config(config_path)
            self._register_modules()
            self._open_log()
            self._open_listener()
            self.booted = True
            env.cov.hit("httpd.boot.ok")

    #: fallback directive values when the config is missing or truncated.
    _DEFAULTS = {
        "Listen": "80",
        "DocumentRoot": "/srv/www",  # the compiled-in htdocs default
        "CustomLog": "/var/log/access_log",
        "LoadModules": "mod_core",
    }

    def _read_config(self, path: str) -> None:
        """Parse the config, degrading gracefully like real httpd.

        An unreadable or truncated config is *not* fatal: whatever
        directives were parsed are kept and standard defaults fill the
        gaps.  This is what makes config-path faults *test-dependent*
        (a truncated read hurts exactly the tests whose behaviour
        depends on the directives after the truncation point), giving
        the test and call axes the structure Table 4 ablates.  Only a
        configuration explicitly naming an unknown module aborts the
        boot.
        """
        env = self.env
        libc = env.libc
        with env.frame("ap_read_config"):
            env.cov.hit("httpd.config.enter")
            stream = libc.fopen(path, "r")
            if stream == NULL:
                env.cov.hit("httpd.config.open_failed")
                env.error(f"httpd: cannot open {path}, using defaults")
            else:
                while True:
                    line = libc.fgets(stream)
                    if line is None:
                        if libc.ferror(stream):
                            # Truncated config: keep what we have.
                            env.cov.hit("httpd.config.read_error")
                            env.error("httpd: error reading configuration, "
                                      "continuing with partial config")
                        break
                    line = line.strip()
                    if not line or line.startswith("#"):
                        continue
                    key, _, value = line.partition(" ")
                    # Apache keeps directive values in pools; model as
                    # strdup *with* a NULL check — this is the checked
                    # band of the strdup call axis.
                    value_ptr = libc.strdup(value)
                    if value_ptr == NULL:
                        # Transient pool pressure: drop the directive and
                        # keep parsing (defaults may cover it) — graceful,
                        # and *test-dependent*: only tests whose behaviour
                        # needs this directive will notice.
                        env.cov.hit("httpd.config.oom")
                        env.error(f"httpd: out of memory for directive "
                                  f"{key!r}, skipping")
                        continue
                    self.config[key] = libc.heap.load_string(value_ptr)
                    env.cov.hit("httpd.config.directive")
                if libc.fclose(stream) != 0:
                    env.cov.hit("httpd.config.close_failed")
                    # Non-fatal: config already parsed.
            for key, value in self._DEFAULTS.items():
                if key not in self.config:
                    env.cov.hit("httpd.config.defaulted")
                    self.config[key] = value

    #: modules compiled into the server; the rest load as DSOs.
    _PRELINKED_COUNT = 5

    def _register_modules(self) -> None:
        """Register configured modules.  The Fig. 7 bug lives here.

        Like Apache, modules arrive via two code paths — compiled-in
        ("prelinked") modules and dynamically loaded (DSO) ones — and
        both funnel into ``ap_add_module``, which contains the unchecked
        ``strdup``.  The same single bug therefore manifests under
        *distinct* stack traces, which is what the paper's redundancy
        clustering (§7.4) has to tell apart from genuinely different
        bugs.
        """
        env = self.env
        env.cov.hit("httpd.modules.enter")
        wanted = [
            name.strip()
            for name in self.config.get("LoadModules", "mod_core").split(",")
        ]
        for sym_name in wanted:
            if sym_name not in KNOWN_MODULES:
                env.cov.hit("httpd.modules.unknown")
                raise BootError(f"unknown module {sym_name!r}")
        prelinked = wanted[: self._PRELINKED_COUNT]
        dso = wanted[self._PRELINKED_COUNT:]
        with env.frame("ap_setup_prelinked_modules"):
            for sym_name in prelinked:
                self._add_module(sym_name)
        if dso:
            env.cov.hit("httpd.modules.dso")
            with env.frame("mod_so_load"):
                for sym_name in dso:
                    self._add_module(sym_name)

    def _add_module(self, sym_name: str) -> None:
        env = self.env
        libc = env.libc
        with env.frame("ap_add_module"):
            # config.c:578 — no NULL check on strdup's result...
            short_name = libc.strdup(sym_name)
            # config.c:579 — ...so this store segfaults on ENOMEM.
            libc.heap.store_byte(short_name, len(sym_name), 0)
            self.module_short_names.append(short_name)
            self.modules.append(sym_name)
            env.cov.hit("httpd.modules.registered")

    def _open_log(self) -> None:
        env = self.env
        libc = env.libc
        with env.frame("open_error_log"):
            path = self.config.get("CustomLog", "/var/log/access_log")
            self.log_stream = libc.fopen(path, "a")
            if self.log_stream == NULL:
                env.cov.hit("httpd.log.open_failed")
                raise BootError(f"cannot open log {path}: errno {libc.errno.name}")
            env.cov.hit("httpd.log.open_ok")

    def _open_listener(self) -> None:
        env = self.env
        libc = env.libc
        with env.frame("make_sock"):
            sock = libc.socket()
            if sock < 0:
                env.cov.hit("httpd.sock.socket_failed")
                raise BootError(f"socket: errno {libc.errno.name}")
            if libc.bind(sock, int(self.config.get("Listen", "80"))) != 0:
                env.cov.hit("httpd.sock.bind_failed")
                raise BootError(f"bind: errno {libc.errno.name}")
            if libc.listen(sock) != 0:
                env.cov.hit("httpd.sock.listen_failed")
                raise BootError(f"listen: errno {libc.errno.name}")
            self.listen_sock = sock
            env.cov.hit("httpd.sock.ok")

    # -- request handling ------------------------------------------------------

    def serve_pending(self) -> int:
        """Accept and serve every queued request; returns requests served."""
        env = self.env
        libc = env.libc
        with env.frame("child_main"):
            served = 0
            while libc.net_inbox:
                conn = libc.accept(self.listen_sock)
                if conn < 0:
                    if libc.errno is Errno.EINTR:
                        env.cov.hit("httpd.accept.eintr_retry")
                        continue
                    env.cov.hit("httpd.accept.failed")
                    break
                self._handle_connection(conn)
                served += 1
            return served

    def _handle_connection(self, conn: int) -> None:
        env = self.env
        libc = env.libc
        with env.frame("process_connection"):
            env.cov.hit("httpd.request.enter")
            raw = libc.recv(conn)
            if raw == -1:
                env.cov.hit("httpd.request.recv_failed")
                self._log("recv-error")
                self.requests_failed += 1
                libc.close_socket(conn)
                return
            request = bytes(raw).decode(errors="replace")
            method, _, path = request.partition(" ")
            path = path.strip() or "/"
            if method != "GET":
                env.cov.hit("httpd.request.bad_method")
                self._respond(conn, 405, b"method not allowed")
                return
            self._serve_path(conn, path)

    @staticmethod
    def _handler_for(path: str) -> str:
        """Which module's handler serves this request.

        Requests flow through different handler modules by content type
        (as Apache's handler dispatch does), so faults injected while
        serving different content produce *distinct* stack traces — the
        diversity the §7.4 redundancy clustering measures.
        """
        if path == "/" or path.endswith("/"):
            return "mod_dir_handler"
        if path.endswith(".html"):
            return "mod_mime_handler"
        if path.endswith(".bin"):
            return "core_content_handler"
        return "default_handler"

    def _serve_path(self, conn: int, path: str) -> None:
        env = self.env
        libc = env.libc
        with env.frame(self._handler_for(path)):
            docroot = self.config.get("DocumentRoot", "/srv/www")
            full = docroot.rstrip("/") + ("/index.html" if path == "/" else path)
            st = libc.stat(full)
            if st is None:
                env.cov.hit("httpd.request.not_found")
                self._respond(conn, 404, b"not found")
                return
            # Request buffer: checked malloc, graceful OOM recovery.
            buffer_ptr = libc.malloc(st.size + 1)
            if buffer_ptr == NULL:
                env.cov.hit("httpd.request.oom")
                self._log("oom")
                self._respond(conn, 500, b"out of memory")
                self.shutdown()
                env.exit(1)  # graceful shutdown on OOM, as Apache does
            fd = libc.open(full, O_RDONLY)
            if fd < 0:
                env.cov.hit("httpd.request.open_failed")
                libc.free(buffer_ptr)
                self._respond(conn, 403, b"forbidden")
                return
            body = b""
            while True:
                chunk = libc.read(fd, 1024)
                if chunk == -1:
                    if libc.errno is Errno.EINTR:
                        env.cov.hit("httpd.request.read_retry")
                        continue
                    env.cov.hit("httpd.request.read_failed")
                    libc.close(fd)
                    libc.free(buffer_ptr)
                    self._respond(conn, 500, b"io error")
                    return
                if not chunk:
                    break
                body += bytes(chunk)
            if libc.close(fd) != 0:
                env.cov.hit("httpd.request.close_failed")  # non-fatal
            libc.heap.store(buffer_ptr, 0, body[: st.size])
            self._respond(conn, 200, body)
            libc.free(buffer_ptr)
            env.cov.hit("httpd.request.ok")

    def _respond(self, conn: int, status: int, body: bytes) -> None:
        env = self.env
        libc = env.libc
        with env.frame("ap_send_response"):
            payload = f"HTTP/1.1 {status}\r\n\r\n".encode() + body
            if libc.send(conn, payload) < 0:
                env.cov.hit("httpd.response.send_failed")
                self.requests_failed += 1
            else:
                if status == 200:
                    self.requests_served += 1
                else:
                    self.requests_failed += 1
                env.cov.hit("httpd.response.sent")
            self._log(f"{status}")
            libc.close_socket(conn)

    def _log(self, entry: str) -> None:
        env = self.env
        libc = env.libc
        with env.frame("ap_log_transaction"):
            if self.log_stream == 0:
                return
            if libc.fputs(entry + "\n", self.log_stream) < 0:
                env.cov.hit("httpd.log.write_failed")  # logged failure ignored

    # -- shutdown -----------------------------------------------------------------

    def shutdown(self) -> None:
        env = self.env
        libc = env.libc
        with env.frame("ap_terminate"):
            if self.log_stream:
                if libc.fflush(self.log_stream) != 0:
                    env.cov.hit("httpd.shutdown.flush_failed")
                libc.fclose(self.log_stream)
                self.log_stream = 0
            if self.listen_sock >= 0:
                libc.close_socket(self.listen_sock)
                self.listen_sock = -1
            env.cov.hit("httpd.shutdown.done")
