"""The coreutils target: 29 tests over ls/ln/mv, 19 libc functions.

This reproduces the paper's Φ_coreutils setup exactly in shape:
``X_test = (1..29)`` (11 ls + 9 ln + 9 mv tests, grouped by utility as
real suites group by functionality), ``X_func`` a 19-function subset of
libc ordered by category, and ``X_call = (0, 1, 2)`` where 0 means "no
injection" — 29 × 19 × 3 = 1,653 faults (§7.2).

Test bodies are the paper's "default test suite": each prepares nothing
itself (fixtures run in :meth:`CoreutilsTarget.setup`, before injection
is armed), invokes a utility, and asserts on exit status, produced
output, and filesystem state.  Three tests are *expected-failure* tests
(missing operands, existing destination) — under memory-fault injection
these keep passing, which is what makes exactly 28 of the 36
ln/mv malloc faults test-failing, the count Table 6 searches for.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.process import Env
from repro.sim.targets.coreutils.common import invoke
from repro.sim.targets.coreutils.ln import ln_main
from repro.sim.targets.coreutils.ls import ls_main
from repro.sim.targets.coreutils.mv import mv_main
from repro.sim.testsuite import Target, TestCase, TestSuite

__all__ = ["CoreutilsTarget", "COREUTILS_FUNCTIONS"]

#: The 19-function X_func axis, grouped by category so neighbouring
#: values are related (the locality the Gaussian mutation exploits, §3).
COREUTILS_FUNCTIONS: tuple[str, ...] = (
    "malloc",
    "realloc",
    "open",
    "close",
    "read",
    "write",
    "fopen",
    "fclose",
    "fputs",
    "fflush",
    "stat",
    "opendir",
    "readdir",
    "closedir",
    "chdir",
    "getcwd",
    "rename",
    "link",
    "setlocale",
)


def _stdout_text(env: Env) -> str:
    return env.fs.read_file("/dev/stdout").decode()


# --------------------------------------------------------------------------
# fixtures (run before injection is armed) and bodies (run under injection)
# --------------------------------------------------------------------------

def _fx_none(env: Env) -> None:
    pass


def _mkfiles(*specs: tuple[str, bytes]) -> Callable[[Env], None]:
    def fixture(env: Env) -> None:
        for path, data in specs:
            env.fs.create_file(path, data)
    return fixture


def _mk(dirs: tuple[str, ...] = (), files: tuple[tuple[str, bytes], ...] = ()):
    def fixture(env: Env) -> None:
        for d in dirs:
            env.fs.mkdir(d)
        for path, data in files:
            env.fs.create_file(path, data)
    return fixture


# -- ls ---------------------------------------------------------------------

def _ls_empty(env: Env) -> None:
    code = invoke(env, ls_main, ["e"])
    env.check(code == 0, f"ls exited {code}")
    env.check(_stdout_text(env) == "", "expected no output for empty dir")


def _ls_files(env: Env) -> None:
    code = invoke(env, ls_main, ["d"])
    env.check(code == 0, f"ls exited {code}")
    env.check(_stdout_text(env) == "a\nb\nc\n", "bad listing")


def _ls_missing(env: Env) -> None:
    code = invoke(env, ls_main, ["nope"])
    env.check(code == 2, f"expected exit 2 for missing dir, got {code}")
    env.check(any("cannot access" in e for e in env.stderr), "no diagnostic")


def _ls_all(env: Env) -> None:
    code = invoke(env, ls_main, ["-a", "d"])
    env.check(code == 0, f"ls exited {code}")
    out = _stdout_text(env)
    env.check(".hidden" in out and "visible" in out, "missing entries with -a")


def _ls_long(env: Env) -> None:
    code = invoke(env, ls_main, ["-l", "d"])
    env.check(code == 0, f"ls exited {code}")
    out = _stdout_text(env)
    env.check("5 one" in out.replace("     ", " ") or " 5 one" in out, "no size for 'one'")
    env.check(out.count("\n") == 2, "expected 2 long lines")


def _ls_long_big(env: Env) -> None:
    code = invoke(env, ls_main, ["-l", "d"])
    env.check(code == 0, f"ls exited {code}")
    env.check(_stdout_text(env).count("\n") == 12, "expected 12 entries")


def _ls_multi(env: Env) -> None:
    code = invoke(env, ls_main, ["d1", "d2"])
    env.check(code == 0, f"ls exited {code}")
    out = _stdout_text(env)
    env.check("d1:" in out and "d2:" in out, "missing directory labels")


def _ls_file_arg(env: Env) -> None:
    code = invoke(env, ls_main, ["plain"])
    env.check(code == 0, f"ls exited {code}")
    env.check("plain" in _stdout_text(env), "file argument not listed")


def _ls_recursive(env: Env) -> None:
    code = invoke(env, ls_main, ["-R", "d"])
    env.check(code == 0, f"ls exited {code}")
    env.check("deep" in _stdout_text(env), "recursion did not reach 'deep'")


def _ls_sorted(env: Env) -> None:
    code = invoke(env, ls_main, ["d"])
    env.check(code == 0, f"ls exited {code}")
    lines = [line for line in _stdout_text(env).splitlines() if line]
    env.check(lines == sorted(lines), "output not sorted")
    env.check(len(lines) == 10, f"expected 10 entries, got {len(lines)}")


def _ls_long_mixed(env: Env) -> None:
    code = invoke(env, ls_main, ["-l", "d"])
    env.check(code == 0, f"ls exited {code}")
    out = _stdout_text(env)
    env.check(any(line.startswith("d") for line in out.splitlines()), "no dir flag")
    env.check(any(line.startswith("-") for line in out.splitlines()), "no file flag")


# -- ln ---------------------------------------------------------------------

def _ln_simple(env: Env) -> None:
    code = invoke(env, ln_main, ["src", "dst"])
    env.check(code == 0, f"ln exited {code}")
    env.check(env.fs.is_file("dst"), "dst not created")
    env.check(env.fs.stat("dst").nlink == 2, "link count not bumped")


def _ln_into_dir(env: Env) -> None:
    code = invoke(env, ln_main, ["f", "d"])
    env.check(code == 0, f"ln exited {code}")
    env.check(env.fs.is_file("d/f"), "link not created inside directory")


def _ln_existing_dest(env: Env) -> None:
    # Expected failure: ln refuses to clobber without -f.
    code = invoke(env, ln_main, ["a", "b"])
    env.check(code != 0, "ln should refuse to overwrite existing dest")
    env.check(env.fs.read_file("b") == b"old", "dest was clobbered")


def _ln_force(env: Env) -> None:
    code = invoke(env, ln_main, ["-f", "a", "b"])
    env.check(code == 0, f"ln exited {code}")
    env.check(env.fs.read_file("b") == b"new", "force link has wrong content")


def _ln_multi(env: Env) -> None:
    code = invoke(env, ln_main, ["x", "y", "d"])
    env.check(code == 0, f"ln exited {code}")
    env.check(env.fs.is_file("d/x") and env.fs.is_file("d/y"), "links missing")


def _ln_missing_src(env: Env) -> None:
    # Expected failure: the source does not exist.
    code = invoke(env, ln_main, ["ghost", "dst"])
    env.check(code != 0, "ln should fail for a missing source")
    env.check(not env.fs.exists("dst"), "dst should not exist")


def _ln_verbose(env: Env) -> None:
    code = invoke(env, ln_main, ["-v", "s", "t"])
    env.check(code == 0, f"ln exited {code}")
    env.check("=>" in _stdout_text(env), "verbose output missing")


def _ln_usage(env: Env) -> None:
    # Expected failure: missing operand (dies before any allocation).
    code = invoke(env, ln_main, ["solo"])
    env.check(code != 0, "ln should fail with a single operand")


def _ln_force_verbose(env: Env) -> None:
    code = invoke(env, ln_main, ["-f", "-v", "a", "b"])
    env.check(code == 0, f"ln exited {code}")
    env.check("=>" in _stdout_text(env), "verbose output missing")
    env.check(env.fs.read_file("b") == b"aaa", "wrong content after force link")


# -- mv ---------------------------------------------------------------------

def _mv_rename(env: Env) -> None:
    code = invoke(env, mv_main, ["a", "b"])
    env.check(code == 0, f"mv exited {code}")
    env.check(env.fs.is_file("b") and not env.fs.exists("a"), "rename incomplete")


def _mv_into_dir(env: Env) -> None:
    code = invoke(env, mv_main, ["f", "d"])
    env.check(code == 0, f"mv exited {code}")
    env.check(env.fs.is_file("d/f") and not env.fs.exists("f"), "move incomplete")


def _mv_overwrite(env: Env) -> None:
    code = invoke(env, mv_main, ["a", "b"])
    env.check(code == 0, f"mv exited {code}")
    env.check(env.fs.read_file("b") == b"fresh", "overwrite lost data")


def _mv_verbose(env: Env) -> None:
    code = invoke(env, mv_main, ["-v", "a", "b"])
    env.check(code == 0, f"mv exited {code}")
    out = _stdout_text(env)
    env.check("renamed" in out or "copied" in out, "verbose output missing")


def _mv_multi(env: Env) -> None:
    code = invoke(env, mv_main, ["x", "y", "d"])
    env.check(code == 0, f"mv exited {code}")
    env.check(env.fs.is_file("d/x") and env.fs.is_file("d/y"), "moves missing")


def _mv_missing(env: Env) -> None:
    # Expected failure: missing source.
    code = invoke(env, mv_main, ["ghost", "dst"])
    env.check(code != 0, "mv should fail for a missing source")


def _mv_backup(env: Env) -> None:
    code = invoke(env, mv_main, ["-b", "a", "b"])
    env.check(code == 0, f"mv exited {code}")
    env.check(env.fs.read_file("b~") == b"old", "backup missing or wrong")
    env.check(env.fs.read_file("b") == b"new", "dest has wrong content")


def _mv_dir(env: Env) -> None:
    code = invoke(env, mv_main, ["d1", "d2"])
    env.check(code == 0, f"mv exited {code}")
    env.check(env.fs.is_file("d2/inner"), "directory contents lost")
    env.check(not env.fs.exists("d1"), "source directory still present")


def _mv_large(env: Env) -> None:
    code = invoke(env, mv_main, ["big", "big2"])
    env.check(code == 0, f"mv exited {code}")
    env.check(
        env.fs.read_file("big2") == bytes(range(256)) * 40,
        "large file corrupted by move",
    )


class CoreutilsTarget(Target):
    """ls/ln/mv with the 29-test default suite (Φ_coreutils, §7.2)."""

    name = "coreutils"
    version = "8.1"

    #: (name, group, fixture, body) — ids are assigned in order.
    _DEFS: tuple[tuple[str, str, Callable[[Env], None], Callable[[Env], None]], ...] = (
        # ls (tests 1-11)
        ("ls-empty-dir", "ls", _mk(dirs=("e",)), _ls_empty),
        ("ls-few-files", "ls",
         _mk(dirs=("d",), files=(("d/a", b"1"), ("d/b", b"2"), ("d/c", b"3"))),
         _ls_files),
        ("ls-missing-dir", "ls", _fx_none, _ls_missing),
        ("ls-all-hidden", "ls",
         _mk(dirs=("d",), files=(("d/.hidden", b""), ("d/visible", b""))),
         _ls_all),
        ("ls-long", "ls",
         _mk(dirs=("d",), files=(("d/one", b"12345"), ("d/two", b"x"))),
         _ls_long),
        ("ls-long-big", "ls",
         _mk(dirs=("d",),
             files=tuple((f"d/f{i:02d}", b"x" * i) for i in range(12))),
         _ls_long_big),
        ("ls-multiple-dirs", "ls",
         _mk(dirs=("d1", "d2"), files=(("d1/p", b""), ("d2/q", b""))),
         _ls_multi),
        ("ls-file-argument", "ls", _mkfiles(("plain", b"data")), _ls_file_arg),
        ("ls-recursive", "ls",
         _mk(dirs=("d", "d/sub"), files=(("d/top", b""), ("d/sub/deep", b""))),
         _ls_recursive),
        ("ls-sorted-many", "ls",
         _mk(dirs=("d",),
             files=tuple((f"d/{n}", b"") for n in
                         ("pear", "apple", "fig", "kiwi", "lime", "plum",
                          "date", "mango", "melon", "grape"))),
         _ls_sorted),
        ("ls-long-mixed", "ls",
         _mk(dirs=("d", "d/subdir"), files=(("d/file", b"abc"),)),
         _ls_long_mixed),
        # ln (tests 12-20)
        ("ln-simple", "ln", _mkfiles(("src", b"s")), _ln_simple),
        ("ln-into-dir", "ln", _mk(dirs=("d",), files=(("f", b"f"),)), _ln_into_dir),
        ("ln-existing-dest", "ln",
         _mkfiles(("a", b"new"), ("b", b"old")), _ln_existing_dest),
        ("ln-force", "ln", _mkfiles(("a", b"new"), ("b", b"old")), _ln_force),
        ("ln-multi-into-dir", "ln",
         _mk(dirs=("d",), files=(("x", b"x"), ("y", b"y"))), _ln_multi),
        ("ln-missing-source", "ln", _fx_none, _ln_missing_src),
        ("ln-verbose", "ln", _mkfiles(("s", b"s")), _ln_verbose),
        ("ln-usage-error", "ln", _fx_none, _ln_usage),
        ("ln-force-verbose", "ln",
         _mkfiles(("a", b"aaa"), ("b", b"bbb")), _ln_force_verbose),
        # mv (tests 21-29)
        ("mv-rename", "mv", _mkfiles(("a", b"data")), _mv_rename),
        ("mv-into-dir", "mv", _mk(dirs=("d",), files=(("f", b"f"),)), _mv_into_dir),
        ("mv-overwrite", "mv",
         _mkfiles(("a", b"fresh"), ("b", b"stale")), _mv_overwrite),
        ("mv-verbose", "mv", _mkfiles(("a", b"v")), _mv_verbose),
        ("mv-multi-into-dir", "mv",
         _mk(dirs=("d",), files=(("x", b"x"), ("y", b"y"))), _mv_multi),
        ("mv-missing-source", "mv", _fx_none, _mv_missing),
        ("mv-backup", "mv", _mkfiles(("a", b"new"), ("b", b"old")), _mv_backup),
        ("mv-dir-rename", "mv",
         _mk(dirs=("d1",), files=(("d1/inner", b"i"),)), _mv_dir),
        ("mv-large-file", "mv",
         _mkfiles(("big", bytes(range(256)) * 40)), _mv_large),
    )

    def __init__(self) -> None:
        super().__init__()
        self._fixtures: dict[int, Callable[[Env], None]] = {}

    def build_suite(self) -> TestSuite:
        tests = []
        for index, (name, group, fixture, body) in enumerate(self._DEFS, start=1):
            tests.append(TestCase(id=index, name=name, group=group, body=body))
            self._fixtures[index] = fixture
        return TestSuite(tests)

    def setup(self, env: Env, test: TestCase) -> None:
        env.fs.mkdir("/dev")
        env.fs.create_file("/dev/stdout")
        env.fs.mkdir("/work")
        env.fs.chdir("/work")
        self.suite  # ensure fixtures dict is populated
        self._fixtures[test.id](env)

    def libc_functions(self) -> tuple[str, ...]:
        return COREUTILS_FUNCTIONS

    #: per-mv-test content blobs that must never vanish: a move may leave
    #: the data at the source or the destination, but "under no
    #: circumstances should a file transfer be only partially completed"
    #: (§7's fault-injection-oriented assertion, verbatim).
    _PROTECTED_CONTENT: dict[int, tuple[bytes, ...]] = {
        21: (b"data",),
        22: (b"f",),
        23: (b"fresh",),
        24: (b"v",),
        25: (b"x", b"y"),
        27: (b"new", b"old"),
        28: (b"i",),
        29: (bytes(range(256)) * 40,),
    }

    def invariants(self, env: Env, test: TestCase) -> list[str]:
        """mv must never lose source data, no matter which call failed."""
        protected = self._PROTECTED_CONTENT.get(test.id)
        if not protected:
            return []
        present = [data for _, data in env.fs.iter_files()]
        violations = []
        for blob in protected:
            if blob not in present:
                label = blob[:16].decode(errors="replace")
                violations.append(
                    f"file content {label!r}... ({len(blob)} bytes) exists "
                    "at neither source nor destination — data lost"
                )
        return violations
