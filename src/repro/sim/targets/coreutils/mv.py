"""Simulated ``mv``: rename with cross-filesystem copy fallback.

The interesting recovery structure (and the reason the paper's fault
space rewards exploring ``mv``): a failed ``rename`` with ``EXDEV``
triggers a full copy-then-unlink fallback — open/read/write/close with
an EINTR retry loop, partial-copy cleanup, and a close-failure check
before removing the source (data-integrity critical: removing the
source after a failed close could lose the file).  None of this code
runs without fault injection, since the simulated filesystem has a
single device — exactly the "recovery code is hard to cover" situation
the paper targets.
"""

from __future__ import annotations

from repro.sim.errnos import Errno
from repro.sim.filesystem import O_CREAT, O_RDONLY, O_TRUNC, O_WRONLY
from repro.sim.process import Env
from repro.sim.targets.coreutils.common import (
    close_stdout,
    copy_arg,
    die,
    emit,
    initialize_main,
    open_stdout,
    xmalloc,
)

__all__ = ["mv_main"]

PROGRAM = "mv"
_COPY_CHUNK = 4096


def mv_main(env: Env, args: list[str]) -> None:
    libc = env.libc
    with env.frame("mv_main"):
        env.cov.hit("mv.main.enter")
        initialize_main(env, PROGRAM)
        verbose = "-v" in args
        backup = "-b" in args
        paths = [a for a in args if not a.startswith("-")]
        if len(paths) < 2:
            env.cov.hit("mv.main.usage")
            die(env, PROGRAM, "missing file operand", 1)

        target = paths[-1]
        sources = paths[:-1]
        target_ptr = copy_arg(env, PROGRAM, target)  # malloc #1

        st = libc.stat(target)
        target_is_dir = st is not None and st.is_dir
        if len(sources) > 1 and not target_is_dir:
            env.cov.hit("mv.main.target_not_dir")
            die(env, PROGRAM, f"target '{target}' is not a directory", 1)

        out = open_stdout(env, PROGRAM) if verbose else 0
        status = 0
        for src in sources:
            dest = (
                f"{target.rstrip('/')}/{_basename(src)}" if target_is_dir else target
            )
            status = max(status, _do_move(env, src, dest, backup, verbose, out))
        libc.free(target_ptr)
        if verbose:
            close_stdout(env, PROGRAM, out)
        env.exit(status)


def _do_move(
    env: Env, src: str, dest: str, backup: bool, verbose: bool, out: int
) -> int:
    libc = env.libc
    with env.frame("do_move"):
        env.cov.hit("mv.move.enter")
        scratch = xmalloc(env, PROGRAM, 256)  # malloc #2 (path scratch buffer)
        libc.heap.store_string(scratch, dest)

        if backup:
            env.cov.hit("mv.move.backup")
            if libc.stat(dest) is not None:
                if libc.rename(dest, dest + "~") != 0:
                    env.cov.hit("mv.move.backup_failed")
                    env.error(
                        f"mv: cannot backup '{dest}': errno {libc.errno.name}"
                    )
                    libc.free(scratch)
                    return 1

        if libc.rename(src, dest) == 0:
            env.cov.hit("mv.move.rename_ok")
            if verbose:
                emit(env, PROGRAM, out, f"renamed '{src}' -> '{dest}'")
            libc.free(scratch)
            return 0

        if libc.errno is not Errno.EXDEV:
            env.cov.hit("mv.move.rename_failed")
            env.error(
                f"mv: cannot move '{src}' to '{dest}': errno {libc.errno.name}"
            )
            libc.free(scratch)
            return 1

        # EXDEV: cross-device move — fall back to copy + unlink.
        env.cov.hit("mv.move.exdev_fallback")
        status = _copy_then_unlink(env, src, dest)
        if status == 0 and verbose:
            emit(env, PROGRAM, out, f"copied '{src}' -> '{dest}'")
        libc.free(scratch)
        return status


def _copy_then_unlink(env: Env, src: str, dest: str) -> int:
    """The recovery path: copy the file, verify durability, remove source."""
    libc = env.libc
    with env.frame("copy_then_unlink"):
        env.cov.hit("mv.copy.enter")
        in_fd = libc.open(src, O_RDONLY)
        if in_fd < 0:
            env.cov.hit("mv.copy.open_src_failed")
            env.error(f"mv: cannot open '{src}': errno {libc.errno.name}")
            return 1
        out_fd = libc.open(dest, O_CREAT | O_WRONLY | O_TRUNC)
        if out_fd < 0:
            env.cov.hit("mv.copy.open_dest_failed")
            env.error(f"mv: cannot create '{dest}': errno {libc.errno.name}")
            libc.close(in_fd)
            return 1

        while True:
            data = libc.read(in_fd, _COPY_CHUNK)
            if data == -1:
                if libc.errno is Errno.EINTR:
                    env.cov.hit("mv.copy.read_retry")
                    continue
                env.cov.hit("mv.copy.read_failed")
                env.error(f"mv: error reading '{src}': errno {libc.errno.name}")
                return _abort_copy(env, in_fd, out_fd, dest)
            if not data:
                break
            written = libc.write(out_fd, data)
            if written < 0:
                if libc.errno is Errno.EINTR:
                    env.cov.hit("mv.copy.write_retry")
                    # Retry the same chunk once; a second failure aborts.
                    written = libc.write(out_fd, data)
                if written < 0:
                    env.cov.hit("mv.copy.write_failed")
                    env.error(
                        f"mv: error writing '{dest}': errno {libc.errno.name}"
                    )
                    return _abort_copy(env, in_fd, out_fd, dest)

        if libc.close(in_fd) != 0:
            env.cov.hit("mv.copy.close_src_failed")  # harmless, ignored
        if libc.close(out_fd) != 0:
            # Data may not have reached the destination: do NOT unlink src.
            env.cov.hit("mv.copy.close_dest_failed")
            env.error(f"mv: error closing '{dest}': errno {libc.errno.name}")
            libc.unlink(dest)
            return 1
        if libc.unlink(src) != 0:
            env.cov.hit("mv.copy.unlink_src_failed")
            env.error(f"mv: cannot remove '{src}': errno {libc.errno.name}")
            return 1
        env.cov.hit("mv.copy.ok")
        return 0


def _abort_copy(env: Env, in_fd: int, out_fd: int, dest: str) -> int:
    """Clean up a half-finished copy without losing the source."""
    libc = env.libc
    with env.frame("abort_copy"):
        env.cov.hit("mv.copy.abort")
        libc.close(in_fd)
        libc.close(out_fd)
        if libc.unlink(dest) != 0:
            env.cov.hit("mv.copy.abort_unlink_failed")
        return 1


def _basename(path: str) -> str:
    return path.rstrip("/").rsplit("/", 1)[-1]
