"""Simulated coreutils: ``ls``, ``ln``, ``mv`` and their default suite."""

from repro.sim.targets.coreutils.ln import ln_main
from repro.sim.targets.coreutils.ls import ls_main
from repro.sim.targets.coreutils.mv import mv_main
from repro.sim.targets.coreutils.target import COREUTILS_FUNCTIONS, CoreutilsTarget

__all__ = [
    "COREUTILS_FUNCTIONS",
    "CoreutilsTarget",
    "ln_main",
    "ls_main",
    "mv_main",
]
