"""Simulated ``ln``: hard links over the simulated filesystem.

Control flow mirrors coreutils ``ln``: copy the target argument, decide
whether the destination is a directory, then link each source —
optionally force-removing an existing destination (``-f``) and
announcing each link (``-v``).  Diagnostics and exit statuses follow the
real tool: any failed link degrades the exit status to 1.
"""

from __future__ import annotations

from repro.sim.process import Env
from repro.sim.targets.coreutils.common import (
    close_stdout,
    copy_arg,
    die,
    emit,
    initialize_main,
    open_stdout,
    xmalloc,
)

__all__ = ["ln_main"]

PROGRAM = "ln"


def ln_main(env: Env, args: list[str]) -> None:
    libc = env.libc
    with env.frame("ln_main"):
        env.cov.hit("ln.main.enter")
        initialize_main(env, PROGRAM)
        force = "-f" in args
        verbose = "-v" in args
        paths = [a for a in args if not a.startswith("-")]
        if len(paths) < 2:
            env.cov.hit("ln.main.usage")
            die(env, PROGRAM, "missing file operand", 1)

        target = paths[-1]
        sources = paths[:-1]
        target_ptr = copy_arg(env, PROGRAM, target)  # malloc #1

        st = libc.stat(target)
        target_is_dir = st is not None and st.is_dir
        if len(sources) > 1 and not target_is_dir:
            env.cov.hit("ln.main.target_not_dir")
            die(env, PROGRAM, f"target '{target}' is not a directory", 1)

        out = open_stdout(env, PROGRAM) if verbose else 0
        status = 0
        for src in sources:
            status = max(
                status, _do_link(env, src, target, target_is_dir, force, verbose, out)
            )
        libc.free(target_ptr)
        if verbose:
            close_stdout(env, PROGRAM, out)
        env.exit(status)


def _do_link(
    env: Env,
    src: str,
    target: str,
    target_is_dir: bool,
    force: bool,
    verbose: bool,
    out: int,
) -> int:
    libc = env.libc
    with env.frame("do_link"):
        env.cov.hit("ln.link.enter")
        dest = f"{target.rstrip('/')}/{_basename(src)}" if target_is_dir else target
        dest_ptr = xmalloc(env, PROGRAM, len(dest.encode()) + 1)  # malloc #2
        libc.heap.store_string(dest_ptr, dest)

        st = libc.stat(src)
        if st is None:
            env.cov.hit("ln.link.src_missing")
            env.error(
                f"ln: failed to access '{src}': errno {libc.errno.name}"
            )
            libc.free(dest_ptr)
            return 1

        if force:
            env.cov.hit("ln.link.force")
            if libc.stat(dest) is not None:
                if libc.unlink(dest) != 0:
                    env.cov.hit("ln.link.force_unlink_failed")
                    env.error(
                        f"ln: cannot remove '{dest}': errno {libc.errno.name}"
                    )
                    libc.free(dest_ptr)
                    return 1

        if libc.link(src, dest) != 0:
            env.cov.hit("ln.link.failed")
            env.error(
                f"ln: failed to create hard link '{dest}': errno {libc.errno.name}"
            )
            libc.free(dest_ptr)
            return 1

        if verbose:
            env.cov.hit("ln.link.verbose")
            emit(env, PROGRAM, out, f"'{dest}' => '{src}'")
        libc.free(dest_ptr)
        return 0


def _basename(path: str) -> str:
    return path.rstrip("/").rsplit("/", 1)[-1]
