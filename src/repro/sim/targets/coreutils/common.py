"""Shared runtime for the simulated coreutils (gnulib analogue).

Mirrors the shape of real coreutils startup and error handling:

* :func:`initialize_main` sets the locale and text domain, *ignoring*
  failures exactly as real coreutils do — these injections are the
  "gray columns" visible in the paper's Fig. 1;
* :func:`xmalloc` is the classic wrapper: allocation failure prints a
  diagnostic and exits 1 (graceful, but the test still fails — these
  are the out-of-memory scenarios Table 6 hunts for);
* stdout is a real stdio stream over ``/dev/stdout``, so output errors
  (``fputs``/``fclose`` failing with ENOSPC/EIO) are injectable, and
  :func:`close_stdout` dies on close failure like coreutils'
  ``close_stdout`` atexit hook.
"""

from __future__ import annotations

from repro.sim.crashes import ExitProgram
from repro.sim.heap import NULL
from repro.sim.process import Env

__all__ = [
    "STDOUT_PATH",
    "initialize_main",
    "xmalloc",
    "copy_arg",
    "open_stdout",
    "emit",
    "close_stdout",
    "die",
    "invoke",
]

STDOUT_PATH = "/dev/stdout"


def initialize_main(env: Env, program: str) -> None:
    """Locale/i18n startup; failures are deliberately ignored."""
    libc = env.libc
    with env.frame("initialize_main"):
        env.cov.hit("coreutils.init.enter")
        if libc.setlocale("en_US.UTF-8") is None:
            # Real coreutils fall back to the C locale silently.
            env.cov.hit("coreutils.init.locale_fallback")
        if libc.bindtextdomain(program, "/usr/share/locale") is None:
            env.cov.hit("coreutils.init.bindtextdomain_failed")
        if libc.textdomain(program) is None:
            env.cov.hit("coreutils.init.textdomain_failed")


def die(env: Env, program: str, message: str, code: int = 1) -> None:
    """Print a diagnostic to stderr and exit — the ``error(1, ...)`` idiom."""
    env.error(f"{program}: {message}")
    env.exit(code)


def xmalloc(env: Env, program: str, size: int) -> int:
    """``xmalloc``: allocation failure is fatal but graceful."""
    ptr = env.libc.malloc(size)
    if ptr == NULL:
        env.cov.hit("coreutils.xmalloc.oom")
        die(env, program, "memory exhausted")
    return ptr


def copy_arg(env: Env, program: str, arg: str) -> int:
    """Copy an argv string onto the heap (how the utilities own args)."""
    ptr = xmalloc(env, program, len(arg.encode()) + 1)
    env.libc.heap.store_string(ptr, arg)
    return ptr


def open_stdout(env: Env, program: str) -> int:
    """Open the stdio stream the utility writes its output to."""
    stream = env.libc.fopen(STDOUT_PATH, "a")
    if stream == NULL:
        env.cov.hit("coreutils.stdout.open_failed")
        die(env, program, "cannot open standard output", 2)
    return stream


def emit(env: Env, program: str, stream: int, text: str) -> None:
    """Write one output line; a write error is fatal (exit 1)."""
    if env.libc.fputs(text + "\n", stream) < 0:
        env.cov.hit("coreutils.stdout.write_error")
        die(env, program, "write error")


def close_stdout(env: Env, program: str, stream: int) -> None:
    """Flush-and-close stdout; failure is fatal, like coreutils."""
    libc = env.libc
    if libc.fflush(stream) != 0:
        env.cov.hit("coreutils.stdout.flush_error")
        die(env, program, "write error: flushing standard output")
    if libc.fclose(stream) != 0:
        env.cov.hit("coreutils.stdout.close_error")
        die(env, program, "write error: closing standard output")


def invoke(env: Env, main, args: list[str]) -> int:
    """Run a utility main and return its exit status (test-script glue).

    Catches only the graceful :class:`ExitProgram` unwind — crashes
    propagate to the test runner, which records them as crashes.
    """
    try:
        main(env, args)
    except ExitProgram as exc:
        return exc.code
    return 0
