"""Simulated ``ls``: directory listing over the simulated filesystem.

A compact but faithful port of the coreutils ``ls`` control flow: locale
startup, argument copying, stdio output with fatal write errors, a
growing entry array (``malloc``/``realloc``), per-entry ``stat`` for
``-l``, ``opendir``/``readdir``/``closedir`` iteration, and ``chdir``
based recursion for ``-R``.  Error handling matches the real tool's
conventions: failure to access a command-line argument exits 2; failure
to access an entry inside a directory is reported and degrades the exit
status to 1; ``closedir`` failures are ignored.
"""

from __future__ import annotations

from repro.sim.errnos import Errno
from repro.sim.heap import NULL
from repro.sim.process import Env
from repro.sim.targets.coreutils.common import (
    close_stdout,
    copy_arg,
    die,
    emit,
    initialize_main,
    open_stdout,
    xmalloc,
)

__all__ = ["ls_main"]

PROGRAM = "ls"


def ls_main(env: Env, args: list[str]) -> None:
    libc = env.libc
    with env.frame("ls_main"):
        env.cov.hit("ls.main.enter")
        initialize_main(env, PROGRAM)
        flags: set[str] = set()
        paths: list[str] = []
        for arg in args:
            if arg.startswith("-"):
                flags.update(arg[1:])
            else:
                paths.append(arg)
        arg_ptrs = [copy_arg(env, PROGRAM, p) for p in paths]
        if "R" in flags:
            env.cov.hit("ls.main.recursive")
            if libc.getcwd() is None:
                die(env, PROGRAM, "cannot get current directory", 2)
        out = open_stdout(env, PROGRAM)
        if not paths:
            paths = ["."]
        status = 0
        label = len(paths) > 1 or "R" in flags
        for path in paths:
            status = max(status, _list_argument(env, out, path, flags, label))
        for ptr in arg_ptrs:
            libc.free(ptr)
        close_stdout(env, PROGRAM, out)
        env.exit(status)


def _list_argument(env: Env, out: int, path: str, flags: set[str], label: bool) -> int:
    """List one command-line argument (file or directory)."""
    libc = env.libc
    with env.frame("list_argument"):
        st = libc.stat(path)
        if st is None:
            env.cov.hit("ls.arg.stat_failed")
            env.error(f"ls: cannot access '{path}': errno {libc.errno.name}")
            return 2
        if not st.is_dir:
            env.cov.hit("ls.arg.plain_file")
            emit(env, PROGRAM, out, _format_entry(path, st, flags))
            return 0
        return _list_directory(env, out, path, flags, label)


def _list_directory(env: Env, out: int, path: str, flags: set[str], label: bool) -> int:
    libc = env.libc
    with env.frame("list_directory"):
        env.cov.hit("ls.dir.enter")
        if label:
            emit(env, PROGRAM, out, f"{path}:")
        dirp = libc.opendir(path)
        if dirp == NULL:
            env.cov.hit("ls.dir.opendir_failed")
            env.error(f"ls: cannot open directory '{path}': errno {libc.errno.name}")
            return 2

        # Growing entry array, as real ls grows its cwd_file vector.
        capacity = 4
        array = xmalloc(env, PROGRAM, capacity * 8)
        names: list[str] = []
        libc.errno = Errno.OK
        while True:
            name = libc.readdir(dirp)
            if name is None:
                break
            if name.startswith(".") and "a" not in flags:
                env.cov.hit("ls.dir.skip_hidden")
                continue
            if len(names) == capacity:
                env.cov.hit("ls.dir.grow")
                capacity *= 2
                new_array = libc.realloc(array, capacity * 8)
                if new_array == NULL:
                    env.cov.hit("ls.dir.grow_oom")
                    die(env, PROGRAM, "memory exhausted")
                array = new_array
            names.append(name)
        read_error = libc.errno is Errno.EBADF
        if libc.closedir(dirp) != 0:
            # Real ls ignores closedir failures.
            env.cov.hit("ls.dir.closedir_failed")
        if read_error:
            env.cov.hit("ls.dir.readdir_failed")
            env.error(f"ls: reading directory '{path}': errno EBADF")
            libc.free(array)
            return 1

        names.sort()
        status = 0
        for name in names:
            if "l" in flags:
                env.cov.hit("ls.dir.long_entry")
                full = _join(path, name)
                st = libc.stat(full)
                if st is None:
                    env.cov.hit("ls.dir.entry_stat_failed")
                    env.error(f"ls: cannot access '{full}': errno {libc.errno.name}")
                    status = 1
                    continue
                emit(env, PROGRAM, out, _format_entry(name, st, flags))
            else:
                emit(env, PROGRAM, out, name)
        libc.free(array)

        if "R" in flags:
            status = max(status, _recurse(env, out, path, names, flags))
        return status


def _recurse(env: Env, out: int, path: str, names: list[str], flags: set[str]) -> int:
    """``-R``: descend into subdirectories via chdir, like fts."""
    libc = env.libc
    with env.frame("ls_recurse"):
        status = 0
        for name in names:
            full = _join(path, name)
            st = libc.stat(full)
            if st is None:
                env.cov.hit("ls.recurse.stat_failed")
                env.error(f"ls: cannot access '{full}': errno {libc.errno.name}")
                status = 1
                continue
            if not st.is_dir:
                continue
            env.cov.hit("ls.recurse.descend")
            if libc.chdir(full) != 0:
                env.cov.hit("ls.recurse.chdir_failed")
                env.error(f"ls: cannot chdir into '{full}': errno {libc.errno.name}")
                status = 1
                continue
            status = max(status, _list_directory(env, out, ".", flags, True))
            if libc.chdir("/work") != 0:
                # Cannot return to the starting directory: fatal, as in fts.
                env.cov.hit("ls.recurse.chdir_back_failed")
                die(env, PROGRAM, "cannot return to starting directory", 2)
        return status


def _format_entry(name: str, st, flags: set[str]) -> str:
    if "l" in flags:
        kind = "d" if st.is_dir else "-"
        return f"{kind}rw-r--r-- {st.nlink} {st.size:>6} {name}"
    return name


def _join(path: str, name: str) -> str:
    if path == ".":
        return name
    return path.rstrip("/") + "/" + name
