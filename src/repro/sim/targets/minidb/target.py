"""The MiniDB target: 1,147 generated tests over 19 functions × 100 calls.

Φ_MySQL = 1,147 × 19 × 100 = 2,179,300 faults — the same size and axes
as the paper's MySQL space (§7, "X_test = (1..1147) and
X_call = (1..100)").  The suite is generated parametrically, grouped by
subsystem (connect / create / insert / select / update / delete / index
/ binlog / errmsg / admin) exactly as real MySQL's suite groups by
functionality; the grouping is what puts exploitable structure on the
test axis.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.process import Env
from repro.sim.targets.minidb.engine import ERRMSG_PATH, ERROR_CODES, MiniDb
from repro.sim.targets.minidb.net import serve_pings
from repro.sim.targets.minidb.storage import (
    create_index,
    delete_rows,
    index_lookup,
    insert_row,
    mi_create,
    mi_drop,
    select_rows,
    update_rows,
)
from repro.sim.targets.minidb.wal import BINLOG_PATH, Binlog
from repro.sim.testsuite import Target, TestCase, TestSuite

__all__ = ["MiniDbTarget", "MINIDB_FUNCTIONS"]

#: X_func for the MiniDB space (19 functions, category-grouped order).
MINIDB_FUNCTIONS: tuple[str, ...] = (
    "malloc",
    "open",
    "close",
    "read",
    "write",
    "fsync",
    "fopen",
    "fclose",
    "fputs",
    "fflush",
    "stat",
    "unlink",
    "rename",
    "getrlimit",
    "clock_gettime",
    "socket",
    "accept",
    "recv",
    "send",
)

#: group name -> number of generated tests; totals 1,147.
GROUP_SIZES = {
    "connect": 50,
    "create": 150,
    "insert": 200,
    "select": 200,
    "update": 100,
    "delete": 100,
    "index": 100,
    "binlog": 80,
    "errmsg": 47,
    "admin": 120,
}


def _booted(env: Env) -> MiniDb:
    """Boot a server; a handled boot failure fails the test."""
    db = MiniDb(env)
    if not db.boot():
        env.exit(1)
    return db


# --------------------------------------------------------------------------
# per-group test bodies (each builder returns a closure over its params)
# --------------------------------------------------------------------------

def _connect_body(i: int) -> Callable[[Env], None]:
    pings = 1 + i % 12
    flaky = i % 10 >= 7

    def body(env: Env) -> None:
        db = _booted(env)
        for p in range(pings):
            env.libc.net_inbox.append(f"ping-{p}".encode())
        served = serve_pings(env, db, pings, flaky=flaky)
        db.shutdown()
        env.check(served == pings, f"served {served}/{pings} pings")
    return body


def _create_body(i: int) -> Callable[[Env], None]:
    columns = 1 + i % 8
    tables = 1 + i % 3

    def body(env: Env) -> None:
        db = _booted(env)
        for t in range(tables):
            ok = mi_create(env, db, f"t{t}", columns)
            env.check(ok, f"create t{t} failed")
        env.check(len(db.tables) == tables, "catalog count wrong")
        for t in range(tables):
            env.check(env.fs.is_file(f"/var/minidb/t{t}.MYI"), f"t{t}.MYI missing")
        db.shutdown()
    return body


def _insert_body(i: int) -> Callable[[Env], None]:
    rows = 10 + (i % 40) * 3
    scratch = i % 2 == 1  # half the tests warm up a scratch table first

    def body(env: Env) -> None:
        db = _booted(env)
        if scratch:
            env.check(mi_create(env, db, "scratch", 1), "scratch create failed")
        env.check(mi_create(env, db, "t", 2), "create failed")
        for r in range(rows):
            env.check(insert_row(env, db, "t", (f"k{r}", f"v{r}")), f"insert {r} failed")
        got = select_rows(env, db, "t")
        env.check(got is not None and len(got) == rows,
                  f"expected {rows} rows, got {got if got is None else len(got)}")
        db.shutdown()
    return body


def _select_body(i: int) -> Callable[[Env], None]:
    rows = 10 + (i % 30) * 3
    column = i % 2

    def body(env: Env) -> None:
        db = _booted(env)
        env.check(mi_create(env, db, "t", 2), "create failed")
        for r in range(rows):
            env.check(insert_row(env, db, "t", (f"k{r % 3}", f"v{r}")), "insert failed")
        needle = "k0" if column == 0 else f"v{rows - 1}"
        got = select_rows(env, db, "t", column, needle)
        expected = (
            sum(1 for r in range(rows) if r % 3 == 0) if column == 0 else 1
        )
        env.check(got is not None and len(got) == expected,
                  f"filtered select expected {expected}")
        db.shutdown()
    return body


def _update_body(i: int) -> Callable[[Env], None]:
    rows = 10 + (i % 25) * 4

    def body(env: Env) -> None:
        db = _booted(env)
        env.check(mi_create(env, db, "t", 2), "create failed")
        for r in range(rows):
            env.check(insert_row(env, db, "t", ("old", f"v{r}")), "insert failed")
        changed = update_rows(env, db, "t", 0, "old", "new")
        env.check(changed == rows, f"updated {changed}/{rows}")
        got = select_rows(env, db, "t", 0, "new")
        env.check(got is not None and len(got) == rows, "post-update select wrong")
        db.shutdown()
    return body


def _delete_body(i: int) -> Callable[[Env], None]:
    rows = 10 + (i % 25) * 4

    def body(env: Env) -> None:
        db = _booted(env)
        env.check(mi_create(env, db, "t", 2), "create failed")
        for r in range(rows):
            key = "drop" if r % 2 == 0 else "keep"
            env.check(insert_row(env, db, "t", (key, f"v{r}")), "insert failed")
        expected_deleted = sum(1 for r in range(rows) if r % 2 == 0)
        deleted = delete_rows(env, db, "t", 0, "drop")
        env.check(deleted == expected_deleted,
                  f"deleted {deleted}, expected {expected_deleted}")
        got = select_rows(env, db, "t")
        env.check(got is not None and len(got) == rows - expected_deleted,
                  "post-delete count wrong")
        db.shutdown()
    return body


def _index_body(i: int) -> Callable[[Env], None]:
    rows = 10 + (i % 20) * 5

    def body(env: Env) -> None:
        db = _booted(env)
        env.check(mi_create(env, db, "t", 2), "create failed")
        for r in range(rows):
            env.check(insert_row(env, db, "t", (f"k{r % 2}", f"v{r}")), "insert failed")
        env.check(create_index(env, db, "t", 0), "create index failed")
        count = index_lookup(env, db, "t", 0, "k0")
        expected = sum(1 for r in range(rows) if r % 2 == 0)
        env.check(count == expected, f"index lookup {count} != {expected}")
        db.shutdown()
    return body


def _binlog_body(i: int) -> Callable[[Env], None]:
    entries = 10 + (i % 55) * 2
    rotate = i % 4 == 3

    def body(env: Env) -> None:
        db = _booted(env)
        binlog = Binlog(env, db)
        for e in range(entries):
            env.check(binlog.append(f"txn-{e}"), f"binlog append {e} failed")
        if rotate:
            env.check(binlog.rotate(), "binlog rotation failed")
            env.check(env.fs.is_file(f"{BINLOG_PATH}.1"), "archived binlog missing")
        binlog.close()
        db.shutdown()
        if not rotate:
            content = env.fs.read_file(BINLOG_PATH).decode()
            env.check(content.count("txn-") == entries, "binlog entries missing")
    return body


def _errmsg_body(i: int) -> Callable[[Env], None]:
    """Tests that deliberately provoke statement errors.

    These are the tests whose workload reaches ``my_error`` — the crash
    site of the planted errmsg.sys bug — even without any *further*
    injected fault.
    """
    kind = i % 4

    def body(env: Env) -> None:
        db = _booted(env)
        if kind == 0:
            got = select_rows(env, db, "missing")
            env.check(got is None, "select from missing table should error")
        elif kind == 1:
            env.check(mi_create(env, db, "dup", 2), "first create failed")
            env.check(not mi_create(env, db, "dup", 2),
                      "duplicate create should error")
        elif kind == 2:
            env.check(not mi_drop(env, db, "ghost"), "drop missing should error")
        else:
            env.check(mi_create(env, db, "t", 2), "create failed")
            env.check(index_lookup(env, db, "t", 0, "x") == -1,
                      "lookup without index should error")
        env.check(bool(db.statement_errors), "no statement error recorded")
        db.shutdown()
    return body


def _admin_body(i: int) -> Callable[[Env], None]:
    kind = i % 4

    def body(env: Env) -> None:
        db = _booted(env)
        libc = env.libc
        if kind == 0:
            # Connection-pool sizing: reaches the unchecked-getrlimit hang.
            slots = db.size_connection_pool(requested=8 + i % 16)
            env.check(slots > 0, "pool sized to zero")
        elif kind == 1:
            # Table statistics via stat().
            env.check(mi_create(env, db, "t", 2), "create failed")
            st = libc.stat("/var/minidb/t.MYD")
            env.check(st is not None, "cannot stat data file")
            st_index = libc.stat("/var/minidb/t.MYI")
            env.check(st_index is not None and st_index.size > 0,
                      "index header missing")
        elif kind == 2:
            # Flush: general log durability.
            db.log("admin flush marker")
            env.check(libc.fflush(db.log_stream) == 0, "log flush failed")
        else:
            # Tighten and restore the descriptor limit.
            before = libc.getrlimit("NOFILE")
            env.check(before > 0, "getrlimit failed")
            env.check(libc.setrlimit("NOFILE", before) == 0, "setrlimit failed")
        db.shutdown()
    return body


_BUILDERS: dict[str, Callable[[int], Callable[[Env], None]]] = {
    "connect": _connect_body,
    "create": _create_body,
    "insert": _insert_body,
    "select": _select_body,
    "update": _update_body,
    "delete": _delete_body,
    "index": _index_body,
    "binlog": _binlog_body,
    "errmsg": _errmsg_body,
    "admin": _admin_body,
}


class MiniDbTarget(Target):
    """MiniDB 5.1 and its generated 1,147-test suite (Φ_MySQL, §7.1)."""

    name = "minidb"
    version = "5.1.44"

    def build_suite(self) -> TestSuite:
        tests: list[TestCase] = []
        test_id = 1
        for group, size in GROUP_SIZES.items():
            builder = _BUILDERS[group]
            for i in range(size):
                tests.append(TestCase(
                    id=test_id,
                    name=f"{group}-{i:03d}",
                    group=group,
                    body=builder(i),
                ))
                test_id += 1
        return TestSuite(tests)

    def setup(self, env: Env, test: TestCase) -> None:
        fs = env.fs
        for d in ("/usr", "/usr/share", "/usr/share/minidb", "/var", "/var/minidb"):
            fs.mkdir(d)
        catalog = b"".join(
            f"error {name}".encode().ljust(32, b"\x00") for name in ERROR_CODES
        )
        fs.create_file(ERRMSG_PATH, catalog)

    def libc_functions(self) -> tuple[str, ...]:
        return MINIDB_FUNCTIONS
