"""MiniDB storage engine (the MyISAM analogue).

Tables live as ``<name>.MYI`` (index header) + ``<name>.MYD`` (data
rows) under the data directory.  Rows are newline-terminated
pipe-separated text records; indexes are sorted value lists rewritten on
insert.  Every environment interaction goes through the simulated libc,
so the whole engine is injectable.

**The Fig. 6 double-unlock bug (MySQL bug #53268)** is planted in
:func:`mi_create`, preserving the original's control flow: a single
shared error-recovery block releases ``THR_LOCK_myisam`` — correct for
every failure *before* the success-path unlock, wrong for a failure of
the final ``my_close``, which jumps to the recovery block *after* the
lock was already released and aborts in the mutex error check.
"""

from __future__ import annotations

from repro.sim.crashes import AbortCrash
from repro.sim.errnos import Errno
from repro.sim.filesystem import O_APPEND, O_CREAT, O_RDONLY, O_TRUNC, O_WRONLY
from repro.sim.heap import NULL
from repro.sim.process import Env
from repro.sim.targets.minidb.engine import DATADIR, MiniDb

__all__ = [
    "mi_create",
    "mi_drop",
    "insert_row",
    "select_rows",
    "update_rows",
    "delete_rows",
    "create_index",
    "index_lookup",
]

_MYI_HEADER = b"MYI\x01"


def _myi(name: str) -> str:
    return f"{DATADIR}/{name}.MYI"


def _myd(name: str) -> str:
    return f"{DATADIR}/{name}.MYD"


def _mnx(name: str, column: int) -> str:
    return f"{DATADIR}/{name}.{column}.MNX"


def mi_create(env: Env, db: MiniDb, name: str, columns: int) -> bool:
    """Create a table.  Faithful port of the buggy mi_create.c flow.

    Returns True on success; False for handled failures (after
    reporting a statement error).  Can abort the process via the planted
    double-unlock when the final close fails.
    """
    libc = env.libc
    with env.frame("mi_create"):
        env.cov.hit("minidb.create.enter")
        if name in db.tables:
            env.cov.hit("minidb.create.exists")
            db.report_error("ER_TABLE_EXISTS")
            return False

        db.thr_lock.lock()

        file = libc.open(_myi(name), O_CREAT | O_WRONLY | O_TRUNC)
        if file < 0:
            env.cov.hit("minidb.create.open_failed")
            # Error before the success-path unlock: recovery block is correct.
            return _mi_create_err(env, db, name)

        header = _MYI_HEADER + bytes([columns]) + b"\x00" * 27
        if libc.write(file, header) < 0:
            env.cov.hit("minidb.create.write_failed")
            libc.close(file)
            return _mi_create_err(env, db, name)

        # mi_create.c:830 — unlock on the success path...
        db.thr_lock.unlock()
        # mi_create.c:831 — ...then close, jumping to the shared recovery
        # block if it fails:
        if libc.close(file) != 0:
            env.cov.hit("minidb.create.close_failed")
            return _mi_create_err(env, db, name)  # BUG: double unlock

        data_fd = libc.open(_myd(name), O_CREAT | O_WRONLY | O_TRUNC)
        if data_fd < 0:
            env.cov.hit("minidb.create.data_open_failed")
            libc.unlink(_myi(name))
            db.report_error("ER_DISK_FULL")
            return False
        if libc.close(data_fd) != 0:
            env.cov.hit("minidb.create.data_close_failed")  # empty file: benign

        db.tables[name] = columns
        db.log(f"CREATE TABLE {name} ({columns} cols)")
        env.cov.hit("minidb.create.ok")
        return True


def _mi_create_err(env: Env, db: MiniDb, name: str) -> bool:
    """mi_create.c:836 — the single shared error-recovery block."""
    libc = env.libc
    with env.frame("mi_create_err"):
        env.cov.hit("minidb.create.recovery")
        # mi_create.c:837 — release the lock.  Correct for early failures;
        # a double unlock (-> abort) when reached after the line-830 unlock.
        db.thr_lock.unlock()
        libc.unlink(_myi(name))
        db.report_error("ER_DISK_FULL")
        return False


def mi_drop(env: Env, db: MiniDb, name: str) -> bool:
    libc = env.libc
    with env.frame("mi_drop"):
        env.cov.hit("minidb.drop.enter")
        if name not in db.tables:
            env.cov.hit("minidb.drop.missing")
            db.report_error("ER_NO_SUCH_TABLE")
            return False
        ok = True
        if libc.unlink(_myi(name)) != 0:
            env.cov.hit("minidb.drop.unlink_myi_failed")
            ok = False
        if libc.unlink(_myd(name)) != 0:
            env.cov.hit("minidb.drop.unlink_myd_failed")
            ok = False
        del db.tables[name]
        if not ok:
            db.report_error("ER_DISK_FULL")
            return False
        db.log(f"DROP TABLE {name}")
        env.cov.hit("minidb.drop.ok")
        return True


def insert_row(env: Env, db: MiniDb, name: str, values: tuple[str, ...]) -> bool:
    libc = env.libc
    with env.frame("mi_write"):
        env.cov.hit("minidb.insert.enter")
        if name not in db.tables:
            db.report_error("ER_NO_SUCH_TABLE")
            return False
        record = ("|".join(values) + "\n").encode()
        buffer_ptr = libc.malloc(len(record))
        if buffer_ptr == NULL:
            env.cov.hit("minidb.insert.oom")
            db.report_error("ER_OUT_OF_MEMORY")
            return False
        libc.heap.store(buffer_ptr, 0, record)
        fd = libc.open(_myd(name), O_WRONLY | O_APPEND)
        if fd < 0:
            env.cov.hit("minidb.insert.open_failed")
            libc.free(buffer_ptr)
            db.report_error("ER_DISK_FULL")
            return False
        written = libc.write(fd, record)
        if written < 0 and libc.errno is Errno.EINTR:
            env.cov.hit("minidb.insert.write_retry")
            written = libc.write(fd, record)
        if written < 0:
            env.cov.hit("minidb.insert.write_failed")
            libc.close(fd)
            libc.free(buffer_ptr)
            db.report_error("ER_DISK_FULL")
            return False
        libc.free(buffer_ptr)
        if libc.close(fd) != 0:
            env.cov.hit("minidb.insert.close_failed")
            db.report_error("ER_DISK_FULL")
            return False
        db.log(f"INSERT {name}")
        env.cov.hit("minidb.insert.ok")
        return True


def _read_all_rows(env: Env, db: MiniDb, name: str) -> list[tuple[str, ...]] | None:
    """Shared scan; None signals a reported statement error."""
    libc = env.libc
    with env.frame("mi_scan"):
        fd = libc.open(_myd(name), O_RDONLY)
        if fd < 0:
            env.cov.hit("minidb.scan.open_failed")
            db.report_error("ER_NO_SUCH_TABLE")
            return None
        raw = b""
        while True:
            chunk = libc.read(fd, 512)
            if chunk == -1:
                if libc.errno is Errno.EINTR:
                    env.cov.hit("minidb.scan.read_retry")
                    continue
                env.cov.hit("minidb.scan.read_failed")
                libc.close(fd)
                db.report_error("ER_DISK_FULL")
                return None
            if not chunk:
                break
            raw += bytes(chunk)
        if libc.close(fd) != 0:
            env.cov.hit("minidb.scan.close_failed")  # data already read
        rows = [
            tuple(line.split("|"))
            for line in raw.decode(errors="replace").splitlines()
            if line
        ]
        return rows


def select_rows(
    env: Env, db: MiniDb, name: str, column: int | None = None, value: str | None = None
) -> list[tuple[str, ...]] | None:
    with env.frame("mi_rkey" if column is not None else "mi_rrnd"):
        env.cov.hit("minidb.select.enter")
        if name not in db.tables:
            db.report_error("ER_NO_SUCH_TABLE")
            return None
        rows = _read_all_rows(env, db, name)
        if rows is None:
            return None
        if column is not None:
            rows = [r for r in rows if len(r) > column and r[column] == value]
            env.cov.hit("minidb.select.filtered")
        db.log(f"SELECT {name} -> {len(rows)} rows")
        env.cov.hit("minidb.select.ok")
        return rows


def _rewrite_rows(env: Env, db: MiniDb, name: str, rows: list[tuple[str, ...]]) -> bool:
    """Write rows to a temp file and rename over — crash-safe update."""
    libc = env.libc
    with env.frame("mi_rewrite"):
        tmp = _myd(name) + ".TMD"
        fd = libc.open(tmp, O_CREAT | O_WRONLY | O_TRUNC)
        if fd < 0:
            env.cov.hit("minidb.rewrite.open_failed")
            db.report_error("ER_DISK_FULL")
            return False
        payload = "".join("|".join(r) + "\n" for r in rows).encode()
        if payload and libc.write(fd, payload) < 0:
            env.cov.hit("minidb.rewrite.write_failed")
            libc.close(fd)
            libc.unlink(tmp)
            db.report_error("ER_DISK_FULL")
            return False
        if libc.fsync(fd) != 0:
            # Deliberate abort: a failed fsync means the on-disk state is
            # unknowable, so continuing risks silent corruption (the same
            # policy InnoDB applies — srv_fatal_semaphore / fsync panic).
            env.cov.hit("minidb.rewrite.fsync_failed")
            raise AbortCrash(
                "fsync failed during table rewrite — aborting to avoid "
                "corrupting the data file",
                env.stack.snapshot(),
            )
        if libc.close(fd) != 0:
            env.cov.hit("minidb.rewrite.close_failed")
            libc.unlink(tmp)
            db.report_error("ER_DISK_FULL")
            return False
        if libc.rename(tmp, _myd(name)) != 0:
            env.cov.hit("minidb.rewrite.rename_failed")
            libc.unlink(tmp)
            db.report_error("ER_DISK_FULL")
            return False
        env.cov.hit("minidb.rewrite.ok")
        return True


def update_rows(
    env: Env, db: MiniDb, name: str, column: int, old: str, new: str
) -> int:
    """Returns the number of updated rows, or -1 on a statement error."""
    with env.frame("mi_update"):
        env.cov.hit("minidb.update.enter")
        if name not in db.tables:
            db.report_error("ER_NO_SUCH_TABLE")
            return -1
        rows = _read_all_rows(env, db, name)
        if rows is None:
            return -1
        changed = 0
        updated: list[tuple[str, ...]] = []
        for row in rows:
            if len(row) > column and row[column] == old:
                row = row[:column] + (new,) + row[column + 1:]
                changed += 1
            updated.append(row)
        if changed and not _rewrite_rows(env, db, name, updated):
            return -1
        db.log(f"UPDATE {name}: {changed} rows")
        env.cov.hit("minidb.update.ok")
        return changed


def delete_rows(env: Env, db: MiniDb, name: str, column: int, value: str) -> int:
    """Returns the number of deleted rows, or -1 on a statement error."""
    with env.frame("mi_delete"):
        env.cov.hit("minidb.delete.enter")
        if name not in db.tables:
            db.report_error("ER_NO_SUCH_TABLE")
            return -1
        rows = _read_all_rows(env, db, name)
        if rows is None:
            return -1
        kept = [r for r in rows if not (len(r) > column and r[column] == value)]
        deleted = len(rows) - len(kept)
        if deleted and not _rewrite_rows(env, db, name, kept):
            return -1
        db.log(f"DELETE {name}: {deleted} rows")
        env.cov.hit("minidb.delete.ok")
        return deleted


def create_index(env: Env, db: MiniDb, name: str, column: int) -> bool:
    libc = env.libc
    with env.frame("mi_create_index"):
        env.cov.hit("minidb.index.enter")
        if name not in db.tables:
            db.report_error("ER_NO_SUCH_TABLE")
            return False
        rows = _read_all_rows(env, db, name)
        if rows is None:
            return False
        keys = sorted(r[column] for r in rows if len(r) > column)
        fd = libc.open(_mnx(name, column), O_CREAT | O_WRONLY | O_TRUNC)
        if fd < 0:
            env.cov.hit("minidb.index.open_failed")
            db.report_error("ER_DISK_FULL")
            return False
        payload = ("\n".join(keys) + "\n").encode() if keys else b""
        if payload and libc.write(fd, payload) < 0:
            env.cov.hit("minidb.index.write_failed")
            libc.close(fd)
            libc.unlink(_mnx(name, column))
            db.report_error("ER_DISK_FULL")
            return False
        if libc.close(fd) != 0:
            env.cov.hit("minidb.index.close_failed")
            db.report_error("ER_DISK_FULL")
            return False
        db.log(f"CREATE INDEX {name}.{column}")
        env.cov.hit("minidb.index.ok")
        return True


def index_lookup(env: Env, db: MiniDb, name: str, column: int, value: str) -> int:
    """Count key occurrences via the index file; -1 on statement error."""
    libc = env.libc
    with env.frame("mi_rkey_index"):
        env.cov.hit("minidb.lookup.enter")
        fd = libc.open(_mnx(name, column), O_RDONLY)
        if fd < 0:
            env.cov.hit("minidb.lookup.no_index")
            db.report_error("ER_BAD_STATEMENT")
            return -1
        raw = b""
        while True:
            chunk = libc.read(fd, 256)
            if chunk == -1:
                if libc.errno is Errno.EINTR:
                    continue
                env.cov.hit("minidb.lookup.read_failed")
                libc.close(fd)
                db.report_error("ER_DISK_FULL")
                return -1
            if not chunk:
                break
            raw += bytes(chunk)
        libc.close(fd)
        keys = raw.decode(errors="replace").splitlines()
        env.cov.hit("minidb.lookup.ok")
        return sum(1 for k in keys if k == value)
