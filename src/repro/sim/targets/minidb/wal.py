"""MiniDB binary log (the binlog/WAL analogue).

A dedicated append-only stream with explicit durability points
(``fflush`` per transaction group) and rotation (close + rename +
reopen).  Failures on the durability path are statement errors; rotation
is written so that a failed rename leaves the old log intact (real
recovery code worth exercising).
"""

from __future__ import annotations

from repro.sim.crashes import AbortCrash
from repro.sim.heap import NULL
from repro.sim.process import Env
from repro.sim.targets.minidb.engine import DATADIR, MiniDb

__all__ = ["Binlog"]

BINLOG_PATH = f"{DATADIR}/binlog"


class Binlog:
    """The server's binary log, opened lazily."""

    def __init__(self, env: Env, db: MiniDb) -> None:
        self.env = env
        self.db = db
        self.stream = 0
        self.rotations = 0

    def open(self) -> bool:
        env = self.env
        libc = env.libc
        with env.frame("binlog_open"):
            self.stream = libc.fopen(BINLOG_PATH, "a")
            if self.stream == NULL:
                env.cov.hit("minidb.binlog.open_failed")
                self.db.report_error("ER_DISK_FULL")
                return False
            env.cov.hit("minidb.binlog.open")
            return True

    def append(self, entry: str, durable: bool = True) -> bool:
        """Append one transaction record.

        A failed binlog write is *fatal by design*: replicas must never
        diverge from the primary, so the server deliberately aborts
        (MySQL's ``binlog_error_action=ABORT_SERVER``).  The paper notes
        that many of the MySQL "crashes" AFEX counts "result from MySQL
        aborting the current operation due to the injected fault" — this
        is that class of crash.
        """
        env = self.env
        libc = env.libc
        with env.frame("binlog_append"):
            if self.stream == 0 and not self.open():
                return False
            if libc.fputs(entry + "\n", self.stream) < 0:
                env.cov.hit("minidb.binlog.write_failed")
                raise AbortCrash(
                    "binlog write failed — aborting server "
                    "(binlog_error_action=ABORT_SERVER)",
                    env.stack.snapshot(),
                )
            if durable and libc.fflush(self.stream) != 0:
                env.cov.hit("minidb.binlog.flush_failed")
                raise AbortCrash(
                    "binlog flush failed — aborting server "
                    "(binlog_error_action=ABORT_SERVER)",
                    env.stack.snapshot(),
                )
            env.cov.hit("minidb.binlog.appended")
            return True

    def rotate(self) -> bool:
        """Close, archive as ``binlog.<n>``, reopen a fresh log."""
        env = self.env
        libc = env.libc
        with env.frame("binlog_rotate"):
            env.cov.hit("minidb.binlog.rotate")
            if self.stream != 0:
                if libc.fclose(self.stream) != 0:
                    env.cov.hit("minidb.binlog.rotate_close_failed")
                    # Stream is gone either way (glibc semantics).
                self.stream = 0
            archived = f"{BINLOG_PATH}.{self.rotations + 1}"
            if libc.rename(BINLOG_PATH, archived) != 0:
                env.cov.hit("minidb.binlog.rotate_rename_failed")
                # Old log stays in place; reopen it and report the error.
                self.open()
                self.db.report_error("ER_DISK_FULL")
                return False
            self.rotations += 1
            return self.open()

    def close(self) -> None:
        env = self.env
        libc = env.libc
        with env.frame("binlog_close"):
            if self.stream != 0:
                if libc.fflush(self.stream) != 0:
                    env.cov.hit("minidb.binlog.close_flush_failed")
                libc.fclose(self.stream)
                self.stream = 0
