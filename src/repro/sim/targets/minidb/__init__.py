"""MiniDB: the MySQL stand-in with the paper's two recovery bugs."""

from repro.sim.targets.minidb.engine import DATADIR, ERRMSG_PATH, ERROR_CODES, MiniDb
from repro.sim.targets.minidb.target import GROUP_SIZES, MINIDB_FUNCTIONS, MiniDbTarget
from repro.sim.targets.minidb.wal import BINLOG_PATH, Binlog

__all__ = [
    "BINLOG_PATH",
    "Binlog",
    "DATADIR",
    "ERRMSG_PATH",
    "ERROR_CODES",
    "GROUP_SIZES",
    "MINIDB_FUNCTIONS",
    "MiniDb",
    "MiniDbTarget",
]
