"""MiniDB server core: boot, error messages, connection pool.

The MySQL 5.1 stand-in.  Two recovery bugs from the paper are planted
faithfully:

**errmsg.sys bug** (MySQL bug #25097, §7.1): ``init_errmessage`` reads
the error-message catalog at boot.  If the read fails, the recovery code
*correctly logs* the failure — and then the server proceeds anyway,
leaving the in-heap message table unallocated (NULL).  The first time
any statement needs an error message, ``my_error`` dereferences that
NULL pointer and the server segfaults.  A single injected ``read``
failure at boot thus crashes exactly those tests whose workload raises
a database error — a ridge along the test axis that the fitness-guided
explorer can latch onto.

**connection-pool hang** (an unchecked ``getrlimit``): pool sizing
trusts ``getrlimit``'s return value.  In C the ``-1`` error return,
stored into an unsigned count, becomes huge; here the sizing loop
(``while slots_initialized != slots``) never terminates and trips the
step-budget hang detector.  This is the "hang bug" class the §6.4
impact metric scores at 10 points.

The double-unlock bug (MySQL bug #53268, Fig. 6) lives in
:mod:`repro.sim.targets.minidb.storage`.
"""

from __future__ import annotations

from repro.sim.filesystem import O_RDONLY
from repro.sim.heap import NULL
from repro.sim.process import Env
from repro.sim.sync import Mutex

__all__ = ["MiniDb", "ERRMSG_PATH", "DATADIR", "ERROR_CODES"]

ERRMSG_PATH = "/usr/share/minidb/errmsg.sys"
DATADIR = "/var/minidb"
LOG_PATH = "/var/minidb/minidb.log"

#: error codes -> index into the errmsg catalog (32 bytes per message).
ERROR_CODES = {
    "ER_NO_SUCH_TABLE": 0,
    "ER_TABLE_EXISTS": 1,
    "ER_DUP_KEY": 2,
    "ER_OUT_OF_MEMORY": 3,
    "ER_DISK_FULL": 4,
    "ER_LOCK_FAILED": 5,
    "ER_BAD_STATEMENT": 6,
    "ER_NET_ERROR": 7,
}
_MSG_SLOT = 32


class MiniDb:
    """One simulated mysqld process bound to a test Env."""

    def __init__(self, env: Env) -> None:
        self.env = env
        self.thr_lock = Mutex("THR_LOCK_myisam", env.stack.snapshot)
        #: heap pointer to the parsed error-message table (NULL = the bug).
        self.errmsg_ptr: int = NULL
        self.log_stream: int = 0
        self.tables: dict[str, int] = {}  # name -> column count (catalog cache)
        self.booted = False
        self.statement_errors: list[str] = []

    # -- boot -------------------------------------------------------------------

    def boot(self) -> bool:
        """Start the server; returns False on a handled boot failure."""
        env = self.env
        with env.frame("mysqld_main"):
            env.cov.hit("minidb.boot.enter")
            self._init_errmessage()
            if not self._open_log():
                env.cov.hit("minidb.boot.log_failed")
                return False
            self.booted = True
            env.cov.hit("minidb.boot.ok")
            return True

    def _init_errmessage(self) -> None:
        """Load errmsg.sys.  Contains MySQL bug #25097."""
        env = self.env
        libc = env.libc
        with env.frame("init_errmessage"):
            env.cov.hit("minidb.errmsg.enter")
            fd = libc.open(ERRMSG_PATH, O_RDONLY)
            if fd < 0:
                # Recovery code: correct logging of the failure...
                env.cov.hit("minidb.errmsg.open_failed")
                env.error(f"minidb: cannot open {ERRMSG_PATH}")
                # ...but execution continues with errmsg_ptr == NULL.
                return
            data = libc.read(fd, len(ERROR_CODES) * _MSG_SLOT)
            if data == -1:
                # Recovery code: "it correctly logs any encountered error
                # if the read fails" (§7.1) — and then proceeds anyway.
                env.cov.hit("minidb.errmsg.read_failed")
                env.error(f"minidb: error reading {ERRMSG_PATH}: "
                          f"errno {libc.errno.name}")
            else:
                env.cov.hit("minidb.errmsg.loaded")
                self.errmsg_ptr = libc.malloc(len(ERROR_CODES) * _MSG_SLOT)
                if self.errmsg_ptr != NULL:
                    libc.heap.store(self.errmsg_ptr, 0, bytes(data))
                else:
                    env.cov.hit("minidb.errmsg.oom")
                    env.error("minidb: out of memory loading error messages")
            if libc.close(fd) != 0:
                env.cov.hit("minidb.errmsg.close_failed")  # harmless here

    def _open_log(self) -> bool:
        env = self.env
        libc = env.libc
        with env.frame("open_general_log"):
            self.log_stream = libc.fopen(LOG_PATH, "a")
            if self.log_stream == NULL:
                env.error(f"minidb: cannot open log: errno {libc.errno.name}")
                return False
            env.cov.hit("minidb.log.open")
            return True

    # -- error reporting (the #25097 crash site) ------------------------------------

    def report_error(self, code: str) -> str:
        """``my_error``: look up + log an error message.

        Dereferences the errmsg table — segfaults if init_errmessage's
        recovery path left it NULL.
        """
        env = self.env
        libc = env.libc
        with env.frame("my_error"):
            env.cov.hit("minidb.error.report")
            slot = ERROR_CODES.get(code, len(ERROR_CODES) - 1)
            # MySQL bug #25097: no NULL check on the message table.
            raw = libc.heap.load(self.errmsg_ptr, slot * _MSG_SLOT, _MSG_SLOT)
            message = raw.split(b"\x00", 1)[0].decode(errors="replace") or code
            self.statement_errors.append(code)
            self.log(f"ERROR {code}: {message}")
            return message

    def log(self, entry: str) -> None:
        env = self.env
        libc = env.libc
        with env.frame("general_log_write"):
            if self.log_stream == 0:
                return
            if libc.fputs(entry + "\n", self.log_stream) < 0:
                env.cov.hit("minidb.log.write_failed")  # logging is best-effort

    # -- connection pool (the hang bug) -----------------------------------------------

    def size_connection_pool(self, requested: int = 32) -> int:
        """Size the connection pool from RLIMIT_NOFILE.

        Planted hang: ``getrlimit``'s -1 error return is used unchecked
        as the slot count (in C it would wrap to SIZE_MAX); the
        initialization loop then never terminates.
        """
        env = self.env
        libc = env.libc
        with env.frame("init_connection_pool"):
            env.cov.hit("minidb.pool.enter")
            slots = libc.getrlimit("NOFILE")
            # BUG: no `if slots < 0` check.
            if slots > requested:
                slots = requested
            initialized = 0
            while initialized != slots:
                libc.clock_gettime()  # stamp each slot's creation time
                initialized += 1
            env.cov.hit("minidb.pool.sized")
            return slots

    # -- shutdown --------------------------------------------------------------------

    def shutdown(self) -> None:
        env = self.env
        libc = env.libc
        with env.frame("mysqld_shutdown"):
            if self.log_stream:
                if libc.fflush(self.log_stream) != 0:
                    env.cov.hit("minidb.shutdown.flush_failed")
                libc.fclose(self.log_stream)
                self.log_stream = 0
            if self.errmsg_ptr != NULL:
                libc.free(self.errmsg_ptr)
                self.errmsg_ptr = NULL
            env.cov.hit("minidb.shutdown.done")
