"""MiniDB network front-end: the connection/ping path.

Includes the deliberately *timing-flaky* retry logic that gives the
paper's impact-precision metric (§5) something real to measure: when a
``recv`` fails with ECONNRESET, the server decides whether the client
reconnected in time by consulting per-run scheduling jitter
(``env.rng``, seeded by the trial number).  The same injected fault
therefore sometimes degrades to a handled retry and sometimes to a
statement error — its impact varies across trials, i.e. it has finite
precision, unlike the fully deterministic storage faults.
"""

from __future__ import annotations

from repro.sim.errnos import Errno
from repro.sim.process import Env
from repro.sim.targets.minidb.engine import MiniDb

__all__ = ["serve_pings"]


def serve_pings(env: Env, db: MiniDb, count: int, flaky: bool = False) -> int:
    """Accept ``count`` queued client pings; returns how many succeeded.

    Callers enqueue ``count`` ping payloads into ``env.libc.net_inbox``
    beforehand (the test harness plays the clients).
    """
    libc = env.libc
    with env.frame("net_serve"):
        env.cov.hit("minidb.net.enter")
        sock = libc.socket()
        if sock < 0:
            env.cov.hit("minidb.net.socket_failed")
            db.report_error("ER_NET_ERROR")
            return 0
        if libc.bind(sock, 3306) != 0 or libc.listen(sock) != 0:
            env.cov.hit("minidb.net.bind_failed")
            db.report_error("ER_NET_ERROR")
            libc.close_socket(sock)
            return 0
        served = 0
        for _ in range(count):
            conn = libc.accept(sock)
            if conn < 0:
                if libc.errno is Errno.EINTR:
                    env.cov.hit("minidb.net.accept_retry")
                    conn = libc.accept(sock)
                if conn < 0:
                    env.cov.hit("minidb.net.accept_failed")
                    db.report_error("ER_NET_ERROR")
                    continue
            payload = libc.recv(conn)
            if payload == -1:
                if (
                    flaky
                    and libc.errno is Errno.ECONNRESET
                    and env.rng.random() < 0.5
                ):
                    # The client's reconnect raced in: retry wins.
                    env.cov.hit("minidb.net.flaky_retry")
                    payload = libc.recv(conn)
                if payload == -1:
                    env.cov.hit("minidb.net.recv_failed")
                    db.report_error("ER_NET_ERROR")
                    libc.close_socket(conn)
                    continue
            if libc.send(conn, b"OK " + bytes(payload)) < 0:
                env.cov.hit("minidb.net.send_failed")
                db.report_error("ER_NET_ERROR")
            else:
                served += 1
                env.cov.hit("minidb.net.pong")
            libc.close_socket(conn)
        libc.close_socket(sock)
        return served
