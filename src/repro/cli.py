"""The ``afex`` command-line interface.

Subcommands mirror the prototype workflow of §6.4:

* ``afex targets`` — list bundled systems under test;
* ``afex profile --target NAME`` — run the callsite analyzer and print a
  fault-space description in the Fig. 3 DSL (§6.4 step 2);
* ``afex run`` — explore a fault space with a chosen strategy, impact
  metric weights, and search target, then print the result summary and
  top faults (§6.4 steps 6-8).

Example::

    afex run --target coreutils --strategy fitness --iterations 250 --seed 1
"""

from __future__ import annotations

import argparse
import sys

from repro.core.dsl import parse_fault_space
from repro.core.faultspace import FaultSpace
from repro.core.impact import standard_impact
from repro.core.runner import TargetRunner
from repro.core.search import strategy_by_name
from repro.core.session import ExplorationSession
from repro.core.targets import IterationBudget
from repro.injection.callsite import profile_target
from repro.sim.targets import target_by_name
from repro.util.tables import TextTable

__all__ = ["main", "build_parser"]

_TARGETS = (
    "coreutils", "minidb", "httpd", "docstore", "docstore-0.8", "docstore-2.0",
    "replkv",
)
_STRATEGIES = ("fitness", "random", "exhaustive", "genetic")
_FABRICS = ("serial", "threads", "processes", "virtual", "socket")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _batch_size(text: str) -> "int | str":
    if text == "auto":
        return "auto"
    try:
        return _positive_int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be a positive int or 'auto', got {text!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="afex",
        description="AFEX: fitness-guided black-box fault-injection testing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("targets", help="list bundled systems under test")

    profile = sub.add_parser(
        "profile", help="derive a fault-space description from a target"
    )
    profile.add_argument("--target", required=True, choices=_TARGETS)
    profile.add_argument(
        "--max-call", type=int, default=None,
        help="cap for the call-number axis (default: observed maximum)",
    )

    run = sub.add_parser("run", help="explore a target's fault space")
    run.add_argument("--target", required=True, choices=_TARGETS)
    run.add_argument("--strategy", default="fitness", choices=_STRATEGIES)
    run.add_argument("--iterations", type=int, default=250)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--space", default=None,
        help="path to a fault-space description file (default: derived "
        "from the target's known functions, calls 0-2)",
    )
    run.add_argument("--max-call", type=int, default=2,
                     help="call-axis upper bound for the default space")
    run.add_argument(
        "--fault-model", default="errno", metavar="SPEC",
        help="fault-model plugin spec: a registered model name or a "
        "'+'-composition such as 'errno+disk' (composition order is "
        "canonicalized, so 'disk+errno' is the same campaign); the "
        "default space gains each model's axes (default: errno)",
    )
    run.add_argument("--top", type=int, default=10,
                     help="how many top-impact faults to print")
    run.add_argument("--feedback", action="store_true",
                     help="enable the redundancy feedback loop (§7.4); "
                     "with --online-quality the live novelty signal is "
                     "used instead of the batch similarity weight")
    run.add_argument(
        "--online-quality", action="store_true",
        help="cluster results incrementally as they arrive (§5), report "
        "live non-redundancy, and persist the cluster state in "
        "checkpoints",
    )
    run.add_argument(
        "--cluster-distance", type=int, default=1, metavar="N",
        help="edit-distance bound for online clustering (default 1)",
    )
    run.add_argument(
        "--similarity-threshold", type=float, default=0.0, metavar="S",
        help="similarity below S counts as fully novel for the live "
        "feedback signal (default 0.0)",
    )
    run.add_argument(
        "--fabric", default="serial", choices=_FABRICS,
        help="execution fabric: in-process serial loop, GIL-bound "
        "thread pool, multi-core process pool, the deterministic "
        "virtual-time cluster model, or the networked multi-node "
        "socket fabric (default: serial)",
    )
    run.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="with --fabric socket: endpoint the manager listens on "
        "(port 0 binds an ephemeral port, printed at startup; "
        "default 127.0.0.1:0)",
    )
    run.add_argument(
        "--nodes", type=_positive_int, default=1,
        help="with --fabric socket: explorer-node processes to wait "
        "for before exploring (start them with `afex node`; default 1)",
    )
    run.add_argument(
        "--node-wait", type=float, default=60.0, metavar="SECONDS",
        help="with --fabric socket: how long to wait for --nodes "
        "registrations before giving up (default 60)",
    )
    run.add_argument(
        "--min-nodes", type=_positive_int, default=None, metavar="M",
        help="with --fabric socket: start exploring once M nodes have "
        "registered instead of waiting for all --nodes; the rest may "
        "join mid-campaign (implies --allow-join)",
    )
    run.add_argument(
        "--allow-join", action="store_true",
        help="with --fabric socket: accept new explorer nodes after "
        "the campaign has started (the manager re-slices the remaining "
        "fault space for the joiner); without it the fleet is sealed "
        "at first dispatch — reconnects are always allowed",
    )
    run.add_argument(
        "--batch-size", type=_batch_size, default=None,
        help="speculative candidates proposed per round before feedback "
        "(default: 1 for the serial fabric, worker count otherwise); "
        "'auto' sizes rounds adaptively from observed per-test latency "
        "on parallel fabrics",
    )
    run.add_argument(
        "--workers", type=_positive_int, default=4,
        help="node managers / worker processes for parallel fabrics",
    )
    run.add_argument(
        "--cache", default=None, metavar="PATH",
        help="persistent JSON result cache; duplicate executions across "
        "runs are replayed from it for free",
    )
    run.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="write versioned resume snapshots to PATH between rounds",
    )
    run.add_argument(
        "--checkpoint-every", type=_positive_int, default=25,
        help="snapshot interval in executed tests (with --checkpoint; "
        "default 25)",
    )
    run.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume a killed run from a checkpoint written with "
        "--checkpoint; target/strategy/seed/batch flags must match the "
        "original run",
    )
    run.add_argument(
        "--dispatch-deadline", type=float, default=None, metavar="SECONDS",
        help="per-dispatch deadline on parallel fabrics; hung dispatches "
        "are re-queued and retried (default: wait forever)",
    )
    run.add_argument(
        "--profile", action="store_true",
        help="collect metrics during the run, print the registry table, "
        "and write the machine-readable summary to BENCH_obs.json",
    )
    run.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the metrics registry as Prometheus exposition text "
        "(implies metrics collection)",
    )
    run.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="record structured span events (JSON lines) so the run's "
        "rounds are reconstructable (implies metrics collection)",
    )
    run.add_argument(
        "--report-json", default=None, metavar="PATH",
        help="write the machine-readable campaign outcome document "
        "(the same JSON `afex submit` returns) to PATH",
    )

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant campaign service (REST/JSON API)",
    )
    serve.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="endpoint the API listens on (port 0 binds an ephemeral "
        "port, printed at startup; default 127.0.0.1:0)",
    )
    serve.add_argument(
        "--store", default="afex-service.db", metavar="PATH",
        help="SQLite result store; campaigns and deduplicated results "
        "survive restarts (default afex-service.db)",
    )
    serve.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="directory for server-side campaign checkpoints "
        "(default: the store's directory)",
    )
    serve.add_argument(
        "--workers", type=_positive_int, default=2,
        help="campaigns executed concurrently (default 2)",
    )
    serve.add_argument(
        "--tenant", action="append", default=None,
        metavar="NAME[:PRIORITY[:QUOTA]]",
        help="declare a tenant with a scheduling priority (higher runs "
        "first; default 0) and a concurrent-campaign quota (default "
        "--default-quota); repeatable.  Unknown tenants are admitted "
        "with priority 0",
    )
    serve.add_argument(
        "--default-quota", type=_positive_int, default=1,
        help="concurrent-campaign quota for undeclared tenants "
        "(default 1)",
    )
    serve.add_argument(
        "--checkpoint-every", type=int, default=10,
        help="server-side checkpoint interval in executed tests; 0 "
        "disables mid-campaign snapshots (default 10)",
    )
    serve.add_argument(
        "--node-wait", type=float, default=60.0, metavar="SECONDS",
        help="how long socket-fabric campaigns wait for their spawned "
        "explorer nodes (default 60)",
    )
    serve.add_argument(
        "--no-spawn-nodes", action="store_true",
        help="do not spawn `afex node` workers for socket-fabric "
        "campaigns (operate them out of band)",
    )

    submit = sub.add_parser(
        "submit", help="submit a campaign to a running `afex serve`"
    )
    submit.add_argument(
        "--endpoint", required=True, metavar="HOST:PORT",
        help="service endpoint printed by `afex serve`",
    )
    submit.add_argument("--tenant", required=True)
    submit.add_argument("--target", required=True, choices=_TARGETS)
    submit.add_argument("--strategy", default="fitness", choices=_STRATEGIES)
    submit.add_argument("--iterations", type=int, default=250)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--fault-model", default="errno", metavar="SPEC")
    submit.add_argument("--max-call", type=int, default=2)
    submit.add_argument("--fabric", default="serial", choices=_FABRICS)
    submit.add_argument("--workers", type=_positive_int, default=4)
    submit.add_argument(
        "--nodes", type=_positive_int, default=1,
        help="with --fabric socket: explorer nodes the service spawns",
    )
    submit.add_argument("--batch-size", type=_positive_int, default=None)
    submit.add_argument("--online-quality", action="store_true")
    submit.add_argument("--top", type=int, default=10)
    submit.add_argument("--label", default="")
    submit.add_argument(
        "--priority", type=int, default=None,
        help="override the tenant's scheduling priority for this job",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the campaign finishes and print its outcome",
    )
    submit.add_argument(
        "--timeout", type=float, default=600.0,
        help="with --wait: give up after SECONDS (default 600)",
    )
    submit.add_argument(
        "--json", action="store_true",
        help="print the raw job envelope instead of the summary lines",
    )

    jobs = sub.add_parser(
        "jobs", help="list campaigns known to a running `afex serve`"
    )
    jobs.add_argument("--endpoint", required=True, metavar="HOST:PORT")
    jobs.add_argument("--tenant", default=None)
    jobs.add_argument(
        "--state", default=None,
        choices=("queued", "running", "done", "failed"),
    )
    jobs.add_argument("--limit", type=_positive_int, default=200)
    jobs.add_argument("--json", action="store_true")

    results_cmd = sub.add_parser(
        "results", help="query the service's deduplicated result archive"
    )
    results_cmd.add_argument("--endpoint", required=True,
                             metavar="HOST:PORT")
    results_cmd.add_argument(
        "--campaign", default=None, metavar="JOB_ID",
        help="one campaign's results in execution order (with impact)",
    )
    results_cmd.add_argument("--target", default=None)
    results_cmd.add_argument("--crashed", action="store_true",
                             help="only crashing results")
    results_cmd.add_argument("--failed", action="store_true",
                             help="only failing results")
    results_cmd.add_argument("--min-impact", type=float, default=None)
    results_cmd.add_argument("--limit", type=_positive_int, default=100)
    results_cmd.add_argument("--json", action="store_true")

    structure = sub.add_parser(
        "map", help="print a Fig. 1-style fault-space structure map"
    )
    structure.add_argument("--target", required=True, choices=_TARGETS)
    structure.add_argument("--call", type=int, default=1,
                           help="which call number to fail (default 1)")
    structure.add_argument("--tests", default=None,
                           help="comma-separated test ids (default: all)")

    full_report = sub.add_parser(
        "report",
        help="explore, then emit the full §6.3 report with replay scripts",
    )
    full_report.add_argument("--target", required=True, choices=_TARGETS)
    full_report.add_argument("--strategy", default="fitness",
                             choices=_STRATEGIES)
    full_report.add_argument("--iterations", type=int, default=250)
    full_report.add_argument("--seed", type=int, default=0)
    full_report.add_argument("--max-call", type=int, default=2)
    full_report.add_argument("--top", type=int, default=10)
    full_report.add_argument("--trials", type=int, default=5,
                             help="re-execution trials for impact precision")
    full_report.add_argument(
        "--out", default=None,
        help="directory to write the report and replay scripts into",
    )

    node = sub.add_parser(
        "node",
        help="run an explorer node that serves a socket-fabric manager",
    )
    node.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="manager endpoint printed by `afex run --fabric socket`",
    )
    node.add_argument("--target", required=True, choices=_TARGETS)
    node.add_argument(
        "--name", default=None,
        help="node name for registration (default: hostname-pid); "
        "reconnects under the same name resume the registration",
    )
    node.add_argument(
        "--capacity", type=_positive_int, default=4,
        help="parallel slots this node advertises (default 4)",
    )
    node.add_argument(
        "--fault-model", default="errno", metavar="SPEC",
        help="fault-model plugin spec this node executes plans under; "
        "must match the manager's --fault-model (default: errno)",
    )
    node.add_argument(
        "--heartbeat-interval", type=float, default=1.0, metavar="SECONDS",
        help="seconds between wire heartbeats (default 1)",
    )
    node.add_argument(
        "--wire-version", type=int, default=None, choices=(1, 2, 3),
        help="highest wire protocol version to offer the manager "
        "(default: the newest this build speaks; pin 1 to exercise "
        "the JSON back-compat data plane)",
    )
    node.add_argument(
        "--reconnect-attempts", type=_positive_int, default=30,
        help="connection attempts (with exponential backoff) before "
        "giving up (default 30)",
    )
    node.add_argument(
        "--drain-after", type=_positive_int, default=None, metavar="N",
        help="leave the fleet gracefully after executing N tests: the "
        "node sends a drain frame, finishes its in-flight work, and "
        "exits when the manager deregisters it (needs a v3 manager)",
    )

    replay_cmd = sub.add_parser(
        "replay",
        help="deterministically re-execute a stored result by crash id, "
        "with a call-level provenance explanation",
    )
    replay_cmd.add_argument(
        "crash_id", metavar="CRASH_ID",
        help="scenario digest (any unambiguous hex prefix) printed in "
        "reports, replay scripts, and `afex results`",
    )
    replay_cmd.add_argument(
        "--store", default=None, metavar="PATH",
        help="resolve against a service SQLite store (afex-service.db)",
    )
    replay_cmd.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="resolve against a campaign checkpoint file",
    )
    replay_cmd.add_argument(
        "--report-json", default=None, metavar="PATH",
        help="resolve against a --report-json outcome document "
        "(coarse: the document stores outcomes, not full payloads)",
    )
    replay_cmd.add_argument(
        "--json", action="store_true",
        help="print the machine-readable replay outcome",
    )

    trace = sub.add_parser(
        "trace",
        help="ltrace-style dump of one test's library calls (no injection)",
    )
    trace.add_argument("--target", required=True, choices=_TARGETS)
    trace.add_argument("--test", type=int, required=True,
                       help="test id to trace (1-based)")
    trace.add_argument("--stacks", action="store_true",
                       help="include the simulated stack for each call")
    return parser


def _default_space(target, max_call: int, fault_model: str = "errno") -> FaultSpace:
    from repro.injection.models import compose_models, model_space

    return model_space(target, compose_models(fault_model), max_call=max_call)


def _cmd_targets() -> int:
    table = TextTable(["name", "version", "tests", "functions"])
    for name in ("coreutils", "minidb", "httpd", "docstore-0.8", "docstore-2.0",
                 "replkv"):
        target = target_by_name(name)
        table.add_row(
            [name, target.version, len(target.suite), len(target.libc_functions())]
        )
    print(table.render())
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    target = target_by_name(args.target)
    profile = profile_target(target)
    print(profile.fault_space_description(max_call=args.max_call))
    return 0


def _explore_on_fabric(args: argparse.Namespace, target, space, strategy):
    """Run the exploration on the requested fabric; returns the results.

    A thin client of :class:`~repro.service.engine.CampaignEngine`:
    the CLI's job is flag parsing and printing — fabric lifecycle,
    checkpointing, and quality/metrics threading live in the engine
    (shared with :class:`~repro.campaign.CampaignJob` and the campaign
    service, which keeps the fabric *warm* across runs; a one-shot
    ``afex run`` closes it on the way out).
    """
    import functools

    from repro.core.cache import ResultCache
    from repro.injection.models import model_injector
    from repro.service.engine import CampaignEngine

    fabric = args.fabric
    if args.cache and fabric in ("processes", "socket"):
        # Worker processes (and remote explorer nodes) each hold their
        # own memo dict; the shared in-memory cache only helps
        # in-process fabrics.
        print(f"note: --cache is ignored on the {fabric} fabric (workers "
              "cannot share an in-memory cache); use serial or threads")
    cache = (ResultCache(path=args.cache)
             if args.cache and fabric not in ("processes", "socket")
             else None)
    checkpoint_path = getattr(args, "checkpoint", None)
    checkpoint_every = getattr(args, "checkpoint_every", 0)
    fault_model = getattr(args, "fault_model", "errno")
    checkpoint_meta = {
        "target": args.target, "strategy": args.strategy,
        "seed": args.seed, "iterations": args.iterations,
        "fabric": fabric, "fault_model": fault_model,
    }
    metrics = tracer = None
    if (getattr(args, "profile", False) or getattr(args, "metrics_out", None)
            or getattr(args, "trace_out", None)):
        from repro.obs import JsonLinesSink, MetricsRegistry, RingBufferSink, Tracer

        metrics = MetricsRegistry()
        sinks: list = [RingBufferSink()]
        if getattr(args, "trace_out", None):
            sinks.append(JsonLinesSink(args.trace_out))
        tracer = Tracer(sinks=sinks)

    wait_count = allow_join = fleet_cache = None
    on_fabric = on_nodes = None
    workers = getattr(args, "workers", 1)
    if fabric == "socket":
        from repro.cluster import FleetResultCache

        min_nodes = getattr(args, "min_nodes", None)
        allow_join = bool(getattr(args, "allow_join", False)) \
            or min_nodes is not None
        # --cache on the socket fabric means *fleet-shared* dedup at
        # the manager (per-node caches cannot see each other's
        # duplicates); the path-backed cache still persists
        # serial-fabric results only.
        fleet_cache = FleetResultCache() if args.cache else None
        workers = args.nodes
        wait_count = args.nodes if min_nodes is None \
            else min(min_nodes, args.nodes)
        model_hint = (f" --fault-model {fault_model}"
                      if fault_model != "errno" else "")

        def on_fabric(net, wanted=wait_count):
            print(f"socket fabric listening on {net.host}:{net.port}; "
                  f"waiting for {wanted} node(s) -- start each with: "
                  f"afex node --connect {net.host}:{net.port} "
                  f"--target {args.target}{model_hint}")

        def on_nodes(registered):
            print(f"socket fabric: {registered} node(s) registered; "
                  "exploring", flush=True)

    engine = CampaignEngine(
        target,
        fabric=fabric,
        workers=workers,
        name="procpool",
        injector=model_injector(fault_model),
        injector_factory=functools.partial(model_injector, fault_model),
        target_factory=functools.partial(target_by_name, args.target),
        cache=cache,
        metrics=metrics,
        tracer=tracer,
        dispatch_deadline=getattr(args, "dispatch_deadline", None),
        listen=getattr(args, "listen", "127.0.0.1:0"),
        node_wait=getattr(args, "node_wait", 60.0),
        wait_count=wait_count,
        allow_join=allow_join,
        fleet_cache=fleet_cache,
        on_fabric=on_fabric,
        on_nodes=on_nodes,
        node_prefix="",
    )
    try:
        run = engine.explore(
            space,
            strategy,
            iterations=args.iterations,
            seed=args.seed,
            batch_size=args.batch_size,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            checkpoint_meta=checkpoint_meta,
            resume_from=getattr(args, "resume", None),
            online_quality=bool(getattr(args, "online_quality", False)),
            cluster_distance=getattr(args, "cluster_distance", 1),
            similarity_threshold=getattr(args, "similarity_threshold", 0.0),
        )
    finally:
        engine.close()
    if cache is not None and args.cache:
        cache.save()
    return (run.results, run.seconds, cache, run.health, run.quality,
            metrics, tracer)


def _cmd_run(args: argparse.Namespace) -> int:
    if getattr(args, "batch_size", None) == "auto":
        if args.fabric == "serial":
            print("--batch-size auto needs a parallel fabric "
                  "(threads, processes, virtual, socket)")
            return 2
        if getattr(args, "checkpoint", None) or getattr(args, "resume", None):
            print("--batch-size auto cannot be combined with "
                  "--checkpoint/--resume: replay requires a fixed "
                  "batch size")
            return 2
    from repro.errors import InjectionError
    from repro.injection.models import canonical_spec

    try:
        args.fault_model = canonical_spec(getattr(args, "fault_model", "errno"))
    except InjectionError as exc:
        print(f"--fault-model: {exc}")
        return 2
    if getattr(args, "resume", None):
        from repro.core.checkpoint import load_checkpoint

        meta = load_checkpoint(args.resume).meta or {}
        recorded = meta.get("fault_model", "errno")
        if recorded != args.fault_model:
            print(f"--resume checkpoint was written under --fault-model "
                  f"{recorded!r}, not {args.fault_model!r}; the campaigns "
                  "are not comparable")
            return 2
    target = target_by_name(args.target)
    if args.space:
        with open(args.space) as handle:
            space = parse_fault_space(handle.read())
    else:
        space = _default_space(target, args.max_call, args.fault_model)
    strategy = strategy_by_name(args.strategy)
    if getattr(args, "feedback", False):
        from repro.core.search import FitnessGuidedSearch
        from repro.quality import RedundancyFeedback

        if not isinstance(strategy, FitnessGuidedSearch):
            print("--feedback requires the fitness strategy")
            return 2
        if getattr(args, "online_quality", False):
            # With the streaming clustering stage on, the incremental
            # novelty signal replaces the quadratic batch similarity
            # weight — same §7.4 loop, O(1) amortized per result.
            strategy.use_novelty = True
        else:
            strategy.fitness_weight = RedundancyFeedback()
    results, elapsed, cache, health, quality, metrics, tracer = (
        _explore_on_fabric(args, target, space, strategy)
    )

    from repro.core.checkpoint import history_digest

    summary = results.summary()
    table = TextTable(["metric", "value"], title=f"afex run: {target.describe()}")
    for key, value in summary.items():
        table.add_row([key, value])
    table.add_row(["space size", space.size()])
    table.add_row(["fabric", args.fabric])
    table.add_row(["throughput (tests/s)",
                   f"{len(results) / elapsed:.0f}" if elapsed > 0 else "inf"])
    if cache is not None:
        stats = cache.stats()
        table.add_row(["cache hits/misses",
                       f"{stats['hits']}/{stats['misses']}"])
    if health is not None:
        table.add_row(["fabric health", health.describe()])
    if quality is not None:
        stats = quality.stats()
        table.add_row(["live clusters", stats["clusters"]])
        table.add_row(["non-redundant",
                       f"{100 * stats['novelty_ratio']:.0f}%"])
        table.add_row(["distances computed/avoided",
                       f"{stats['comparisons']}/"
                       f"{stats['comparisons_avoided']}"])
    print(table.render())
    # Stable content digest of the result history: two runs print the
    # same line iff their histories are byte-identical (what the CI
    # kill-and-resume round-trip greps for).
    print(f"history digest: {history_digest(list(results))}")
    if getattr(args, "report_json", None):
        from pathlib import Path

        from repro.core.cache import write_json_atomically
        from repro.service.documents import campaign_document

        document = campaign_document(
            results,
            campaign={
                "target": args.target, "strategy": args.strategy,
                "iterations": args.iterations, "seed": args.seed,
                "fault_model": args.fault_model, "fabric": args.fabric,
                "batch_size": args.batch_size,
            },
            elapsed_seconds=elapsed,
            space_size=space.size(),
            fabric_health=health,
            quality_stats=quality.stats() if quality is not None else None,
            cache_stats=cache.stats() if cache is not None else None,
            top=args.top,
        )
        write_json_atomically(Path(args.report_json), document)
        print(f"report: {args.report_json}")
    if args.checkpoint:
        print(f"checkpoint: {args.checkpoint} "
              f"(resume with --resume {args.checkpoint})")
    if tracer is not None:
        tracer.close()
        if args.trace_out:
            print(f"trace: {args.trace_out}")
    if metrics is not None:
        _export_metrics(args, metrics, elapsed, len(results))

    top = results.top(args.top)
    if top:
        detail = TextTable(
            ["impact", "fault", "outcome"], title=f"top {len(top)} faults"
        )
        for test in top:
            detail.add_row([f"{test.impact:.1f}", str(test.fault), test.result.summary()])
        print()
        print(detail.render())
    return 0


def _export_metrics(
    args: argparse.Namespace, metrics, elapsed: float, tests: int
) -> None:
    """Render/persist the run's metrics per the --profile/--metrics-out flags."""
    from pathlib import Path

    from repro.obs import profile_payload, render_table, to_prometheus

    if getattr(args, "metrics_out", None):
        Path(args.metrics_out).write_text(to_prometheus(metrics))
        print(f"metrics: {args.metrics_out}")
    if getattr(args, "profile", False):
        from repro.core.cache import write_json_atomically

        print()
        print(render_table(metrics, title=f"metrics: afex run {args.target}"))
        payload = profile_payload(metrics, meta={
            "target": args.target,
            "fabric": args.fabric,
            "iterations": args.iterations,
            "seed": args.seed,
            "tests": tests,
            "elapsed_seconds": elapsed,
        })
        out = Path("BENCH_obs.json")
        write_json_atomically(out, payload)
        print(f"profile: {out}")


def _cmd_map(args: argparse.Namespace) -> int:
    from repro.reporting import render_structure_map, structure_map

    target = target_by_name(args.target)
    functions = list(target.libc_functions())
    if args.tests:
        test_ids = [int(t) for t in args.tests.split(",")]
    else:
        test_ids = list(target.suite.ids)
    grid = structure_map(target, functions, test_ids=test_ids,
                         call_number=args.call)
    print(f"structure map for {target.describe()}, call #{args.call} "
          f"('#' = test failure):\n")
    print(render_structure_map(grid, functions, test_ids))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core.search import FitnessGuidedSearch
    from repro.quality import RedundancyFeedback, build_report

    target = target_by_name(args.target)
    runner = TargetRunner(target)
    strategy = strategy_by_name(args.strategy)
    if isinstance(strategy, FitnessGuidedSearch):
        strategy.fitness_weight = RedundancyFeedback()
    session = ExplorationSession(
        runner=runner,
        space=_default_space(target, args.max_call),
        metric=standard_impact(),
        strategy=strategy,
        target=IterationBudget(args.iterations),
        rng=args.seed,
    )
    results = session.run()
    report = build_report(
        results,
        runner,
        args.target,
        strategy_name=args.strategy,
        top_n=args.top,
        precision_trials=args.trials,
    )
    print(report.render())
    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / "report.txt").write_text(report.render() + "\n")
        for name, source in report.replay_scripts.items():
            (out_dir / name).write_text(source)
        print(f"\nwrote report + {len(report.replay_scripts)} replay "
              f"scripts to {out_dir}/")
    return 0


def _parse_tenant_flag(text: str):
    from repro.service.server import TenantConfig

    name, _, rest = text.partition(":")
    priority_text, _, quota_text = rest.partition(":")
    return TenantConfig(
        name,
        priority=int(priority_text) if priority_text else 0,
        max_concurrent=int(quota_text) if quota_text else 1,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.server import CampaignService, serve
    from repro.service.store import ResultStore

    host, _, port_text = args.listen.partition(":")
    try:
        tenants = [_parse_tenant_flag(t) for t in (args.tenant or [])]
    except ValueError as exc:
        print(f"--tenant: {exc}")
        return 2
    store = ResultStore(args.store)
    service = CampaignService(
        store,
        data_dir=args.data_dir,
        tenants=tenants,
        workers=args.workers,
        default_quota=args.default_quota,
        checkpoint_every=args.checkpoint_every,
        node_wait=args.node_wait,
        spawn_nodes=not args.no_spawn_nodes,
    )
    requeued = store.counters()["queued"]
    if requeued:
        print(f"campaign service: resuming {requeued} incomplete job(s) "
              "from the store", flush=True)

    def on_listen(bound_host, bound_port):
        print(f"campaign service listening on {bound_host}:{bound_port} "
              f"(store: {args.store}) -- submit with: afex submit "
              f"--endpoint {bound_host}:{bound_port} --tenant NAME "
              "--target TARGET", flush=True)

    try:
        asyncio.run(serve(
            service, host or "127.0.0.1",
            int(port_text) if port_text else 0,
            on_listen=on_listen,
        ))
    except KeyboardInterrupt:
        print("campaign service: interrupted; store is durable, "
              "restart resumes incomplete jobs")
    return 0


def _job_lines(job: dict) -> list[str]:
    lines = [
        f"job {job['id']}: {job['state']} (tenant {job['tenant']}, "
        f"priority {job['priority']})"
    ]
    if job.get("digest"):
        lines.append(f"history digest: {job['digest']}")
    summary = job.get("summary") or {}
    if summary:
        lines.append(
            f"verdict: {summary.get('verdict', '?')} -- "
            f"{summary.get('tests', 0)} tests, "
            f"{summary.get('failed', 0)} failed, "
            f"{summary.get('crashes', 0)} crashes, "
            f"{summary.get('hangs', 0)} hangs"
        )
    if job.get("error"):
        lines.append(f"error: {job['error']}")
    return lines


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ReportError
    from repro.service.server import ServiceClient
    from repro.service.spec import CampaignSpec

    try:
        spec = CampaignSpec(
            target=args.target,
            strategy=args.strategy,
            iterations=args.iterations,
            seed=args.seed,
            fault_model=args.fault_model,
            max_call=args.max_call,
            fabric=args.fabric,
            workers=args.workers,
            nodes=args.nodes,
            batch_size=args.batch_size,
            online_quality=args.online_quality,
            top=args.top,
            label=args.label,
        )
    except ReportError as exc:
        print(f"bad campaign spec: {exc}")
        return 2
    client = ServiceClient(args.endpoint)
    try:
        job = client.submit(
            args.tenant, spec, priority=args.priority, label=args.label
        )
        if args.wait:
            job = client.wait(job["id"], timeout=args.timeout)
    except ReportError as exc:
        print(str(exc))
        return 1
    if args.json:
        print(json.dumps(job, indent=2, sort_keys=True))
    else:
        for line in _job_lines(job):
            print(line)
        if not args.wait:
            print(f"poll with: afex jobs --endpoint {args.endpoint} "
                  f"--tenant {args.tenant}")
    return 0 if job["state"] != "failed" else 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ReportError
    from repro.service.server import ServiceClient

    client = ServiceClient(args.endpoint)
    try:
        jobs = client.jobs(
            tenant=args.tenant, state=args.state, limit=args.limit
        )
    except ReportError as exc:
        print(str(exc))
        return 1
    if args.json:
        print(json.dumps(jobs, indent=2, sort_keys=True))
        return 0
    table = TextTable(
        ["job", "tenant", "state", "priority", "verdict", "tests",
         "digest"],
        title="campaign service jobs",
    )
    for job in jobs:
        summary = job.get("summary") or {}
        digest = job.get("digest") or ""
        table.add_row([
            job["id"], job["tenant"], job["state"], job["priority"],
            summary.get("verdict", "-"), summary.get("tests", "-"),
            digest[:12] or "-",
        ])
    print(table.render())
    return 0


def _cmd_results(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ReportError
    from repro.service.server import ServiceClient

    client = ServiceClient(args.endpoint)
    try:
        rows = client.results(
            campaign=args.campaign,
            target=args.target,
            crashed="1" if args.crashed else None,
            failed="1" if args.failed else None,
            min_impact=args.min_impact,
            limit=args.limit,
        )
    except ReportError as exc:
        print(str(exc))
        return 1
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    table = TextTable(
        ["digest", "target", "fault model", "outcome", "impact",
         "first campaign"],
        title="deduplicated result archive",
    )
    for row in rows:
        outcome = ("crash" if row["crashed"]
                   else "hang" if row["hung"]
                   else "fail" if row["failed"] else "pass")
        impact = row.get("impact")
        table.add_row([
            row["digest"][:12], row["target"], row["fault_model"],
            outcome,
            "-" if impact is None else f"{impact:.1f}",
            row["first_campaign"],
        ])
    print(table.render())
    return 0


def _cmd_node(args: argparse.Namespace) -> int:
    import functools

    from repro.cluster import PROTOCOL_VERSION, ExplorerNode, RetryPolicy
    from repro.errors import ClusterError, InjectionError
    from repro.injection.models import canonical_spec, model_injector

    try:
        spec = canonical_spec(args.fault_model)
    except InjectionError as exc:
        print(f"--fault-model: {exc}")
        return 2
    node = ExplorerNode(
        args.connect,
        functools.partial(target_by_name, args.target),
        injector_factory=functools.partial(model_injector, spec),
        name=args.name,
        capacity=args.capacity,
        heartbeat_interval=args.heartbeat_interval,
        wire_version=(
            PROTOCOL_VERSION if args.wire_version is None
            else args.wire_version
        ),
        drain_after=args.drain_after,
        reconnect_policy=RetryPolicy(
            max_attempts=args.reconnect_attempts,
            base_delay=0.05,
            max_delay=2.0,
        ),
    )
    print(f"explorer node {node.name!r} (capacity {args.capacity}) "
          f"serving {args.connect}")
    try:
        node.run()
    except ClusterError as exc:
        print(f"node stopped: {exc}")
        return 1
    except KeyboardInterrupt:
        node.stop()
    print(f"node {node.name!r} finished: {node.describe()}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import json

    from repro.core.cache import result_to_payload
    from repro.errors import ReplayError
    from repro.replay import format_outcome, replay, result_digest

    if not (args.store or args.checkpoint or args.report_json):
        print("afex replay: pass at least one of --store, --checkpoint, "
              "--report-json to resolve the crash id against")
        return 2
    store = None
    if args.store:
        from pathlib import Path

        from repro.service.store import ResultStore

        if not Path(args.store).exists():
            print(f"afex replay: no store at {args.store}")
            return 2
        store = ResultStore(args.store)
    try:
        outcome = replay(
            args.crash_id,
            store=store,
            checkpoint=args.checkpoint,
            report=args.report_json,
        )
    except ReplayError as exc:
        print(f"afex replay: {exc}")
        return 2
    if args.json:
        print(json.dumps({
            "crash_id": outcome.source.crash_id,
            "source": outcome.source.source,
            "target": f"{outcome.source.target_name}/"
                      f"{outcome.source.target_version}",
            "fault_model": outcome.source.fault_model,
            "matches": outcome.matches,
            "divergences": [
                {"key": key, "recorded": recorded, "replayed": replayed}
                for key, recorded, replayed in outcome.divergences
            ],
            "explanation": outcome.explanation,
            "result_digest": result_digest(outcome.result),
            "result": result_to_payload(outcome.result),
        }, indent=2, sort_keys=True))
    else:
        print(format_outcome(outcome))
    return 0 if outcome.matches else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.sim.process import run_test

    target = target_by_name(args.target)
    test = target.suite[args.test]
    result = run_test(target, test, trace=True, trace_stacks=args.stacks)
    print(f"trace of {target.name} test #{test.id} ({test.name}): "
          f"{result.steps} library calls, {result.summary()}\n")
    for record in result.trace:
        line = f"{record.seq:5d}  {record.function}()  [call #{record.call_number}]"
        if args.stacks and record.stack:
            line += "   " + " > ".join(record.stack)
        print(line)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "targets":
        return _cmd_targets()
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "map":
        return _cmd_map(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "node":
        return _cmd_node(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "jobs":
        return _cmd_jobs(args)
    if args.command == "results":
        return _cmd_results(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":
    sys.exit(main())
