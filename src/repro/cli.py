"""The ``afex`` command-line interface.

Subcommands mirror the prototype workflow of §6.4:

* ``afex targets`` — list bundled systems under test;
* ``afex profile --target NAME`` — run the callsite analyzer and print a
  fault-space description in the Fig. 3 DSL (§6.4 step 2);
* ``afex run`` — explore a fault space with a chosen strategy, impact
  metric weights, and search target, then print the result summary and
  top faults (§6.4 steps 6-8).

Example::

    afex run --target coreutils --strategy fitness --iterations 250 --seed 1
"""

from __future__ import annotations

import argparse
import sys

from repro.core.dsl import parse_fault_space
from repro.core.faultspace import FaultSpace
from repro.core.impact import standard_impact
from repro.core.runner import TargetRunner
from repro.core.search import strategy_by_name
from repro.core.session import ExplorationSession
from repro.core.targets import IterationBudget
from repro.injection.callsite import profile_target
from repro.sim.targets import target_by_name
from repro.util.tables import TextTable

__all__ = ["main", "build_parser"]

_TARGETS = (
    "coreutils", "minidb", "httpd", "docstore", "docstore-0.8", "docstore-2.0",
    "replkv",
)
_STRATEGIES = ("fitness", "random", "exhaustive", "genetic")
_FABRICS = ("serial", "threads", "processes", "virtual", "socket")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _batch_size(text: str) -> "int | str":
    if text == "auto":
        return "auto"
    try:
        return _positive_int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be a positive int or 'auto', got {text!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="afex",
        description="AFEX: fitness-guided black-box fault-injection testing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("targets", help="list bundled systems under test")

    profile = sub.add_parser(
        "profile", help="derive a fault-space description from a target"
    )
    profile.add_argument("--target", required=True, choices=_TARGETS)
    profile.add_argument(
        "--max-call", type=int, default=None,
        help="cap for the call-number axis (default: observed maximum)",
    )

    run = sub.add_parser("run", help="explore a target's fault space")
    run.add_argument("--target", required=True, choices=_TARGETS)
    run.add_argument("--strategy", default="fitness", choices=_STRATEGIES)
    run.add_argument("--iterations", type=int, default=250)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--space", default=None,
        help="path to a fault-space description file (default: derived "
        "from the target's known functions, calls 0-2)",
    )
    run.add_argument("--max-call", type=int, default=2,
                     help="call-axis upper bound for the default space")
    run.add_argument(
        "--fault-model", default="errno", metavar="SPEC",
        help="fault-model plugin spec: a registered model name or a "
        "'+'-composition such as 'errno+disk' (composition order is "
        "canonicalized, so 'disk+errno' is the same campaign); the "
        "default space gains each model's axes (default: errno)",
    )
    run.add_argument("--top", type=int, default=10,
                     help="how many top-impact faults to print")
    run.add_argument("--feedback", action="store_true",
                     help="enable the redundancy feedback loop (§7.4); "
                     "with --online-quality the live novelty signal is "
                     "used instead of the batch similarity weight")
    run.add_argument(
        "--online-quality", action="store_true",
        help="cluster results incrementally as they arrive (§5), report "
        "live non-redundancy, and persist the cluster state in "
        "checkpoints",
    )
    run.add_argument(
        "--cluster-distance", type=int, default=1, metavar="N",
        help="edit-distance bound for online clustering (default 1)",
    )
    run.add_argument(
        "--similarity-threshold", type=float, default=0.0, metavar="S",
        help="similarity below S counts as fully novel for the live "
        "feedback signal (default 0.0)",
    )
    run.add_argument(
        "--fabric", default="serial", choices=_FABRICS,
        help="execution fabric: in-process serial loop, GIL-bound "
        "thread pool, multi-core process pool, the deterministic "
        "virtual-time cluster model, or the networked multi-node "
        "socket fabric (default: serial)",
    )
    run.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="with --fabric socket: endpoint the manager listens on "
        "(port 0 binds an ephemeral port, printed at startup; "
        "default 127.0.0.1:0)",
    )
    run.add_argument(
        "--nodes", type=_positive_int, default=1,
        help="with --fabric socket: explorer-node processes to wait "
        "for before exploring (start them with `afex node`; default 1)",
    )
    run.add_argument(
        "--node-wait", type=float, default=60.0, metavar="SECONDS",
        help="with --fabric socket: how long to wait for --nodes "
        "registrations before giving up (default 60)",
    )
    run.add_argument(
        "--min-nodes", type=_positive_int, default=None, metavar="M",
        help="with --fabric socket: start exploring once M nodes have "
        "registered instead of waiting for all --nodes; the rest may "
        "join mid-campaign (implies --allow-join)",
    )
    run.add_argument(
        "--allow-join", action="store_true",
        help="with --fabric socket: accept new explorer nodes after "
        "the campaign has started (the manager re-slices the remaining "
        "fault space for the joiner); without it the fleet is sealed "
        "at first dispatch — reconnects are always allowed",
    )
    run.add_argument(
        "--batch-size", type=_batch_size, default=None,
        help="speculative candidates proposed per round before feedback "
        "(default: 1 for the serial fabric, worker count otherwise); "
        "'auto' sizes rounds adaptively from observed per-test latency "
        "on parallel fabrics",
    )
    run.add_argument(
        "--workers", type=_positive_int, default=4,
        help="node managers / worker processes for parallel fabrics",
    )
    run.add_argument(
        "--cache", default=None, metavar="PATH",
        help="persistent JSON result cache; duplicate executions across "
        "runs are replayed from it for free",
    )
    run.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="write versioned resume snapshots to PATH between rounds",
    )
    run.add_argument(
        "--checkpoint-every", type=_positive_int, default=25,
        help="snapshot interval in executed tests (with --checkpoint; "
        "default 25)",
    )
    run.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume a killed run from a checkpoint written with "
        "--checkpoint; target/strategy/seed/batch flags must match the "
        "original run",
    )
    run.add_argument(
        "--dispatch-deadline", type=float, default=None, metavar="SECONDS",
        help="per-dispatch deadline on parallel fabrics; hung dispatches "
        "are re-queued and retried (default: wait forever)",
    )
    run.add_argument(
        "--profile", action="store_true",
        help="collect metrics during the run, print the registry table, "
        "and write the machine-readable summary to BENCH_obs.json",
    )
    run.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the metrics registry as Prometheus exposition text "
        "(implies metrics collection)",
    )
    run.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="record structured span events (JSON lines) so the run's "
        "rounds are reconstructable (implies metrics collection)",
    )

    structure = sub.add_parser(
        "map", help="print a Fig. 1-style fault-space structure map"
    )
    structure.add_argument("--target", required=True, choices=_TARGETS)
    structure.add_argument("--call", type=int, default=1,
                           help="which call number to fail (default 1)")
    structure.add_argument("--tests", default=None,
                           help="comma-separated test ids (default: all)")

    full_report = sub.add_parser(
        "report",
        help="explore, then emit the full §6.3 report with replay scripts",
    )
    full_report.add_argument("--target", required=True, choices=_TARGETS)
    full_report.add_argument("--strategy", default="fitness",
                             choices=_STRATEGIES)
    full_report.add_argument("--iterations", type=int, default=250)
    full_report.add_argument("--seed", type=int, default=0)
    full_report.add_argument("--max-call", type=int, default=2)
    full_report.add_argument("--top", type=int, default=10)
    full_report.add_argument("--trials", type=int, default=5,
                             help="re-execution trials for impact precision")
    full_report.add_argument(
        "--out", default=None,
        help="directory to write the report and replay scripts into",
    )

    node = sub.add_parser(
        "node",
        help="run an explorer node that serves a socket-fabric manager",
    )
    node.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="manager endpoint printed by `afex run --fabric socket`",
    )
    node.add_argument("--target", required=True, choices=_TARGETS)
    node.add_argument(
        "--name", default=None,
        help="node name for registration (default: hostname-pid); "
        "reconnects under the same name resume the registration",
    )
    node.add_argument(
        "--capacity", type=_positive_int, default=4,
        help="parallel slots this node advertises (default 4)",
    )
    node.add_argument(
        "--fault-model", default="errno", metavar="SPEC",
        help="fault-model plugin spec this node executes plans under; "
        "must match the manager's --fault-model (default: errno)",
    )
    node.add_argument(
        "--heartbeat-interval", type=float, default=1.0, metavar="SECONDS",
        help="seconds between wire heartbeats (default 1)",
    )
    node.add_argument(
        "--wire-version", type=int, default=None, choices=(1, 2, 3),
        help="highest wire protocol version to offer the manager "
        "(default: the newest this build speaks; pin 1 to exercise "
        "the JSON back-compat data plane)",
    )
    node.add_argument(
        "--reconnect-attempts", type=_positive_int, default=30,
        help="connection attempts (with exponential backoff) before "
        "giving up (default 30)",
    )
    node.add_argument(
        "--drain-after", type=_positive_int, default=None, metavar="N",
        help="leave the fleet gracefully after executing N tests: the "
        "node sends a drain frame, finishes its in-flight work, and "
        "exits when the manager deregisters it (needs a v3 manager)",
    )

    trace = sub.add_parser(
        "trace",
        help="ltrace-style dump of one test's library calls (no injection)",
    )
    trace.add_argument("--target", required=True, choices=_TARGETS)
    trace.add_argument("--test", type=int, required=True,
                       help="test id to trace (1-based)")
    trace.add_argument("--stacks", action="store_true",
                       help="include the simulated stack for each call")
    return parser


def _default_space(target, max_call: int, fault_model: str = "errno") -> FaultSpace:
    from repro.injection.models import compose_models, model_space

    return model_space(target, compose_models(fault_model), max_call=max_call)


def _cmd_targets() -> int:
    table = TextTable(["name", "version", "tests", "functions"])
    for name in ("coreutils", "minidb", "httpd", "docstore-0.8", "docstore-2.0",
                 "replkv"):
        target = target_by_name(name)
        table.add_row(
            [name, target.version, len(target.suite), len(target.libc_functions())]
        )
    print(table.render())
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    target = target_by_name(args.target)
    profile = profile_target(target)
    print(profile.fault_space_description(max_call=args.max_call))
    return 0


def _explore_on_fabric(args: argparse.Namespace, target, space, strategy):
    """Run the exploration on the requested fabric; returns the results."""
    import time

    from repro.core.cache import ResultCache

    fabric = args.fabric
    if args.cache and fabric in ("processes", "socket"):
        # Worker processes (and remote explorer nodes) each hold their
        # own memo dict; the shared in-memory cache only helps
        # in-process fabrics.
        print(f"note: --cache is ignored on the {fabric} fabric (workers "
              "cannot share an in-memory cache); use serial or threads")
    cache = (ResultCache(path=args.cache)
             if args.cache and fabric not in ("processes", "socket")
             else None)
    resume = None
    if getattr(args, "resume", None):
        from repro.core.checkpoint import load_checkpoint

        resume = load_checkpoint(args.resume)
    checkpoint_path = getattr(args, "checkpoint", None)
    checkpoint_every = getattr(args, "checkpoint_every", 0)
    fault_model = getattr(args, "fault_model", "errno")
    checkpoint_meta = {
        "target": args.target, "strategy": args.strategy,
        "seed": args.seed, "iterations": args.iterations,
        "fabric": fabric, "fault_model": fault_model,
    }
    metrics = tracer = None
    if (getattr(args, "profile", False) or getattr(args, "metrics_out", None)
            or getattr(args, "trace_out", None)):
        from repro.obs import JsonLinesSink, MetricsRegistry, RingBufferSink, Tracer

        metrics = MetricsRegistry()
        sinks: list = [RingBufferSink()]
        if getattr(args, "trace_out", None):
            sinks.append(JsonLinesSink(args.trace_out))
        tracer = Tracer(sinks=sinks)
    online = bool(getattr(args, "online_quality", False))
    quality_kwargs = dict(
        online_quality=online,
        cluster_distance=getattr(args, "cluster_distance", 1),
        similarity_threshold=getattr(args, "similarity_threshold", 0.0),
    )
    health = None
    quality = None
    started = time.perf_counter()
    from repro.injection.models import model_injector

    if fabric == "serial":
        session = ExplorationSession(
            runner=TargetRunner(target, model_injector(fault_model),
                                cache=cache, metrics=metrics, tracer=tracer),
            space=space,
            metric=standard_impact(),
            strategy=strategy,
            target=IterationBudget(args.iterations),
            rng=args.seed,
            batch_size=args.batch_size or 1,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            checkpoint_meta=checkpoint_meta,
            resume_from=resume,
            metrics=metrics,
            tracer=tracer,
            **quality_kwargs,
        )
        results = session.run()
        quality = session.quality
    else:
        import functools

        from repro.cluster import (
            ClusterExplorer,
            FaultTolerantFabric,
            LocalCluster,
            NodeManager,
            ProcessPoolCluster,
            RetryPolicy,
            VirtualCluster,
        )

        deadline = getattr(args, "dispatch_deadline", None)
        pool = None
        net = None
        if fabric == "socket":
            from repro.cluster import FleetResultCache, SocketFabric

            min_nodes = getattr(args, "min_nodes", None)
            allow_join = bool(getattr(args, "allow_join", False)) \
                or min_nodes is not None
            net = SocketFabric(
                getattr(args, "listen", "127.0.0.1:0"),
                expected_nodes=args.nodes,
                allow_join=allow_join,
                # --cache on the socket fabric means *fleet-shared*
                # dedup at the manager (per-node caches cannot see each
                # other's duplicates); the path-backed cache still
                # persists serial-fabric results only.
                fleet_cache=FleetResultCache() if args.cache else None,
            )
            wanted = args.nodes if min_nodes is None \
                else min(min_nodes, args.nodes)
            model_hint = (f" --fault-model {fault_model}"
                          if fault_model != "errno" else "")
            print(f"socket fabric listening on {net.host}:{net.port}; "
                  f"waiting for {wanted} node(s) -- start each with: "
                  f"afex node --connect {net.host}:{net.port} "
                  f"--target {args.target}{model_hint}")
            try:
                registered = net.wait_for_nodes(
                    count=wanted,
                    timeout=getattr(args, "node_wait", 60.0))
                print(f"socket fabric: {registered} node(s) registered; "
                      "exploring", flush=True)
            except BaseException:
                net.close()
                raise
            cluster = FaultTolerantFabric(
                net, policy=RetryPolicy(), dispatch_deadline=deadline,
            )
        elif fabric == "processes":
            # The pool carries its own retry/deadline machinery.
            cluster = pool = ProcessPoolCluster(
                functools.partial(target_by_name, args.target),
                workers=args.workers,
                dispatch_deadline=deadline,
                injector_factory=functools.partial(model_injector, fault_model),
            )
        else:
            managers = [
                NodeManager(f"node{i}", target,
                            injector=model_injector(fault_model),
                            cache=cache, metrics=metrics)
                for i in range(args.workers)
            ]
            inner = (LocalCluster(managers) if fabric == "threads"
                     else VirtualCluster(managers))
            cluster = FaultTolerantFabric(
                inner, policy=RetryPolicy(), dispatch_deadline=deadline,
            )
        explorer = ClusterExplorer(
            cluster,
            space,
            standard_impact(),
            strategy,
            IterationBudget(args.iterations),
            rng=args.seed,
            batch_size=args.batch_size,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            checkpoint_meta=checkpoint_meta,
            resume_from=resume,
            metrics=metrics,
            tracer=tracer,
            **quality_kwargs,
        )
        try:
            results = explorer.run()
        finally:
            if pool is not None:
                pool.close()
            if net is not None:
                net.close()
        health = explorer.health
        quality = explorer.quality
    elapsed = time.perf_counter() - started
    if cache is not None and args.cache:
        cache.save()
    return results, elapsed, cache, health, quality, metrics, tracer


def _cmd_run(args: argparse.Namespace) -> int:
    if getattr(args, "batch_size", None) == "auto":
        if args.fabric == "serial":
            print("--batch-size auto needs a parallel fabric "
                  "(threads, processes, virtual, socket)")
            return 2
        if getattr(args, "checkpoint", None) or getattr(args, "resume", None):
            print("--batch-size auto cannot be combined with "
                  "--checkpoint/--resume: replay requires a fixed "
                  "batch size")
            return 2
    from repro.errors import InjectionError
    from repro.injection.models import canonical_spec

    try:
        args.fault_model = canonical_spec(getattr(args, "fault_model", "errno"))
    except InjectionError as exc:
        print(f"--fault-model: {exc}")
        return 2
    if getattr(args, "resume", None):
        from repro.core.checkpoint import load_checkpoint

        meta = load_checkpoint(args.resume).meta or {}
        recorded = meta.get("fault_model", "errno")
        if recorded != args.fault_model:
            print(f"--resume checkpoint was written under --fault-model "
                  f"{recorded!r}, not {args.fault_model!r}; the campaigns "
                  "are not comparable")
            return 2
    target = target_by_name(args.target)
    if args.space:
        with open(args.space) as handle:
            space = parse_fault_space(handle.read())
    else:
        space = _default_space(target, args.max_call, args.fault_model)
    strategy = strategy_by_name(args.strategy)
    if getattr(args, "feedback", False):
        from repro.core.search import FitnessGuidedSearch
        from repro.quality import RedundancyFeedback

        if not isinstance(strategy, FitnessGuidedSearch):
            print("--feedback requires the fitness strategy")
            return 2
        if getattr(args, "online_quality", False):
            # With the streaming clustering stage on, the incremental
            # novelty signal replaces the quadratic batch similarity
            # weight — same §7.4 loop, O(1) amortized per result.
            strategy.use_novelty = True
        else:
            strategy.fitness_weight = RedundancyFeedback()
    results, elapsed, cache, health, quality, metrics, tracer = (
        _explore_on_fabric(args, target, space, strategy)
    )

    from repro.core.checkpoint import history_digest

    summary = results.summary()
    table = TextTable(["metric", "value"], title=f"afex run: {target.describe()}")
    for key, value in summary.items():
        table.add_row([key, value])
    table.add_row(["space size", space.size()])
    table.add_row(["fabric", args.fabric])
    table.add_row(["throughput (tests/s)",
                   f"{len(results) / elapsed:.0f}" if elapsed > 0 else "inf"])
    if cache is not None:
        stats = cache.stats()
        table.add_row(["cache hits/misses",
                       f"{stats['hits']}/{stats['misses']}"])
    if health is not None:
        table.add_row(["fabric health", health.describe()])
    if quality is not None:
        stats = quality.stats()
        table.add_row(["live clusters", stats["clusters"]])
        table.add_row(["non-redundant",
                       f"{100 * stats['novelty_ratio']:.0f}%"])
        table.add_row(["distances computed/avoided",
                       f"{stats['comparisons']}/"
                       f"{stats['comparisons_avoided']}"])
    print(table.render())
    # Stable content digest of the result history: two runs print the
    # same line iff their histories are byte-identical (what the CI
    # kill-and-resume round-trip greps for).
    print(f"history digest: {history_digest(list(results))}")
    if args.checkpoint:
        print(f"checkpoint: {args.checkpoint} "
              f"(resume with --resume {args.checkpoint})")
    if tracer is not None:
        tracer.close()
        if args.trace_out:
            print(f"trace: {args.trace_out}")
    if metrics is not None:
        _export_metrics(args, metrics, elapsed, len(results))

    top = results.top(args.top)
    if top:
        detail = TextTable(
            ["impact", "fault", "outcome"], title=f"top {len(top)} faults"
        )
        for test in top:
            detail.add_row([f"{test.impact:.1f}", str(test.fault), test.result.summary()])
        print()
        print(detail.render())
    return 0


def _export_metrics(
    args: argparse.Namespace, metrics, elapsed: float, tests: int
) -> None:
    """Render/persist the run's metrics per the --profile/--metrics-out flags."""
    from pathlib import Path

    from repro.obs import profile_payload, render_table, to_prometheus

    if getattr(args, "metrics_out", None):
        Path(args.metrics_out).write_text(to_prometheus(metrics))
        print(f"metrics: {args.metrics_out}")
    if getattr(args, "profile", False):
        from repro.core.cache import write_json_atomically

        print()
        print(render_table(metrics, title=f"metrics: afex run {args.target}"))
        payload = profile_payload(metrics, meta={
            "target": args.target,
            "fabric": args.fabric,
            "iterations": args.iterations,
            "seed": args.seed,
            "tests": tests,
            "elapsed_seconds": elapsed,
        })
        out = Path("BENCH_obs.json")
        write_json_atomically(out, payload)
        print(f"profile: {out}")


def _cmd_map(args: argparse.Namespace) -> int:
    from repro.reporting import render_structure_map, structure_map

    target = target_by_name(args.target)
    functions = list(target.libc_functions())
    if args.tests:
        test_ids = [int(t) for t in args.tests.split(",")]
    else:
        test_ids = list(target.suite.ids)
    grid = structure_map(target, functions, test_ids=test_ids,
                         call_number=args.call)
    print(f"structure map for {target.describe()}, call #{args.call} "
          f"('#' = test failure):\n")
    print(render_structure_map(grid, functions, test_ids))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core.search import FitnessGuidedSearch
    from repro.quality import RedundancyFeedback, build_report

    target = target_by_name(args.target)
    runner = TargetRunner(target)
    strategy = strategy_by_name(args.strategy)
    if isinstance(strategy, FitnessGuidedSearch):
        strategy.fitness_weight = RedundancyFeedback()
    session = ExplorationSession(
        runner=runner,
        space=_default_space(target, args.max_call),
        metric=standard_impact(),
        strategy=strategy,
        target=IterationBudget(args.iterations),
        rng=args.seed,
    )
    results = session.run()
    report = build_report(
        results,
        runner,
        args.target,
        strategy_name=args.strategy,
        top_n=args.top,
        precision_trials=args.trials,
    )
    print(report.render())
    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / "report.txt").write_text(report.render() + "\n")
        for name, source in report.replay_scripts.items():
            (out_dir / name).write_text(source)
        print(f"\nwrote report + {len(report.replay_scripts)} replay "
              f"scripts to {out_dir}/")
    return 0


def _cmd_node(args: argparse.Namespace) -> int:
    import functools

    from repro.cluster import PROTOCOL_VERSION, ExplorerNode, RetryPolicy
    from repro.errors import ClusterError, InjectionError
    from repro.injection.models import canonical_spec, model_injector

    try:
        spec = canonical_spec(args.fault_model)
    except InjectionError as exc:
        print(f"--fault-model: {exc}")
        return 2
    node = ExplorerNode(
        args.connect,
        functools.partial(target_by_name, args.target),
        injector_factory=functools.partial(model_injector, spec),
        name=args.name,
        capacity=args.capacity,
        heartbeat_interval=args.heartbeat_interval,
        wire_version=(
            PROTOCOL_VERSION if args.wire_version is None
            else args.wire_version
        ),
        drain_after=args.drain_after,
        reconnect_policy=RetryPolicy(
            max_attempts=args.reconnect_attempts,
            base_delay=0.05,
            max_delay=2.0,
        ),
    )
    print(f"explorer node {node.name!r} (capacity {args.capacity}) "
          f"serving {args.connect}")
    try:
        node.run()
    except ClusterError as exc:
        print(f"node stopped: {exc}")
        return 1
    except KeyboardInterrupt:
        node.stop()
    print(f"node {node.name!r} finished: {node.describe()}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.sim.process import run_test

    target = target_by_name(args.target)
    test = target.suite[args.test]
    result = run_test(target, test, trace=True, trace_stacks=args.stacks)
    print(f"trace of {target.name} test #{test.id} ({test.name}): "
          f"{result.steps} library calls, {result.summary()}\n")
    for record in result.trace:
        line = f"{record.seq:5d}  {record.function}()  [call #{record.call_number}]"
        if args.stacks and record.stack:
            line += "   " + " > ".join(record.stack)
        print(line)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "targets":
        return _cmd_targets()
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "map":
        return _cmd_map(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "node":
        return _cmd_node(args)
    if args.command == "trace":
        return _cmd_trace(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":
    sys.exit(main())
