"""Exploration results: the output side of AFEX (§6.3).

A :class:`ResultSet` holds every executed test with its fault, outcome,
and impact, and provides the analyses the prototype reports: counts of
failed tests and crashes, redundancy clusters (with representatives),
rankings by severity, and generated replay scripts that reproduce an
injection outside the explorer — the "test suites" output the paper
highlights as saving "considerable human time in constructing regression
test suites."
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterator, Sequence

from repro.core.fault import Fault
from repro.quality.clustering import RedundancyClusters, cluster_stacks
from repro.sim.process import RunResult

__all__ = ["ExecutedTest", "ResultSet"]


@dataclass(frozen=True)
class ExecutedTest:
    """One executed fault-injection test and its evaluation."""

    index: int  # execution order, 0-based
    fault: Fault
    result: RunResult
    impact: float
    fitness: float  # impact after feedback weighting (== impact without)

    @property
    def failed(self) -> bool:
        return self.result.failed

    @property
    def crashed(self) -> bool:
        return self.result.crashed

    @property
    def hung(self) -> bool:
        return self.result.hung


class ResultSet:
    """Ordered collection of executed tests with quality analyses."""

    def __init__(self, executed: Sequence[ExecutedTest]) -> None:
        self._executed = list(executed)

    def __len__(self) -> int:
        return len(self._executed)

    def __iter__(self) -> Iterator[ExecutedTest]:
        return iter(self._executed)

    def __getitem__(self, index: int) -> ExecutedTest:
        return self._executed[index]

    # -- counts (the numbers Tables 1-5 report) ---------------------------------

    def failed_tests(self) -> list[ExecutedTest]:
        return [t for t in self._executed if t.failed]

    def crashes(self) -> list[ExecutedTest]:
        return [t for t in self._executed if t.crashed]

    def hangs(self) -> list[ExecutedTest]:
        return [t for t in self._executed if t.hung]

    def failed_count(self) -> int:
        return sum(1 for t in self._executed if t.failed)

    def crash_count(self) -> int:
        return sum(1 for t in self._executed if t.crashed)

    def coverage_union(self) -> frozenset[str]:
        blocks: set[str] = set()
        for t in self._executed:
            blocks |= t.result.coverage
        return frozenset(blocks)

    def matching(self, predicate: Callable[[ExecutedTest], bool]) -> list[ExecutedTest]:
        return [t for t in self._executed if predicate(t)]

    # -- ranking ----------------------------------------------------------------

    def top(self, n: int) -> list[ExecutedTest]:
        """The n highest-impact tests (severity ranking, §1)."""
        return sorted(self._executed, key=lambda t: t.impact, reverse=True)[:n]

    # -- redundancy (§5) -----------------------------------------------------------

    def cluster(
        self,
        of: Callable[[ExecutedTest], bool] | None = None,
        max_distance: int = 1,
    ) -> RedundancyClusters:
        """Cluster (a filtered subset of) tests by injection-point stack."""
        subset = self._executed if of is None else [t for t in self._executed if of(t)]
        stacks = [
            tuple(t.result.injection_stack) if t.result.injection_stack else None
            for t in subset
        ]
        return cluster_stacks(stacks, max_distance=max_distance)

    def unique_failures(self, max_distance: int = 0) -> int:
        """Failures with distinct injection-point stack traces (Table 5)."""
        return self.cluster(of=lambda t: t.failed, max_distance=max_distance).cluster_count

    def unique_crashes(self, max_distance: int = 0) -> int:
        """Crashes with distinct injection-point stack traces (Table 5)."""
        return self.cluster(of=lambda t: t.crashed, max_distance=max_distance).cluster_count

    def cluster_representatives(
        self, of: Callable[[ExecutedTest], bool] | None = None, max_distance: int = 1
    ) -> list[ExecutedTest]:
        """One test per redundancy cluster, ready for a regression suite."""
        subset = self._executed if of is None else [t for t in self._executed if of(t)]
        clusters = self.cluster(of=of, max_distance=max_distance)
        return [subset[i] for i in clusters.representatives()]

    # -- replay scripts (§6.3 "Test Suites") ------------------------------------------

    def replay_script(
        self, test: ExecutedTest, target_name: str, crash_id: str | None = None
    ) -> str:
        """Source of a standalone script reproducing one injection.

        When ``crash_id`` is given (the store's scenario-key digest for
        this result) it is embedded in the header so the script and the
        one-command path stay cross-referenced: ``afex replay <id>``
        against the producing store or checkpoint reproduces the same
        scenario with call-level provenance.
        """
        plan_text = test.result.plan.format() or "# (no injection)"
        plan_lines = "\n".join(plan_text.splitlines())
        crash_line = f"\nCrash id:  {crash_id}" if crash_id else ""
        replay_hint = (
            f"\n# One-command equivalent (against the producing store or"
            f"\n# checkpoint): afex replay {crash_id}\n"
            if crash_id
            else ""
        )
        return f'''"""Auto-generated AFEX replay script.

Fault:     {test.fault}
Outcome:   {test.result.summary()}
Impact:    {test.impact:.2f}{crash_line}
"""
{replay_hint}

from repro.injection.plan import InjectionPlan
from repro.sim.process import run_test
from repro.sim.targets import target_by_name

PLAN = InjectionPlan.parse("""\\
{plan_lines}
""")

def replay():
    target = target_by_name("{target_name}")
    test = target.suite[{test.result.test_id}]
    return run_test(target, test, PLAN)

if __name__ == "__main__":
    result = replay()
    print(result.summary())
'''

    def regression_suite(
        self,
        target_name: str,
        of: Callable[[ExecutedTest], bool] | None = None,
        max_distance: int = 1,
        crash_id_for: Callable[[ExecutedTest], str | None] | None = None,
    ) -> dict[str, str]:
        """Replay scripts for one representative per redundancy cluster.

        Returns a mapping of suggested file name -> script source.
        ``crash_id_for`` optionally maps each representative to its
        stable crash id so the scripts embed an ``afex replay`` hint.
        """
        scripts: dict[str, str] = {}
        for rep in self.cluster_representatives(of=of, max_distance=max_distance):
            name = f"replay_{rep.index:05d}.py"
            crash_id = crash_id_for(rep) if crash_id_for is not None else None
            scripts[name] = self.replay_script(rep, target_name, crash_id=crash_id)
        return scripts

    # -- persistence (§6.3: results outlive the exploration session) -----------------

    def to_json(self) -> str:
        """Serialize the result set (summaries, not full traces).

        Faults, outcomes, impacts, coverage, and injection stacks are
        preserved — everything the quality analyses consume — so a saved
        run can be re-clustered, re-ranked, and re-reported later
        without re-executing anything.
        """
        import json

        payload = []
        for t in self._executed:
            entry = {
                "index": t.index,
                "fault": {
                    "subspace": t.fault.subspace,
                    "attributes": [[n, v] for n, v in t.fault.attributes],
                },
                "impact": t.impact,
                "fitness": t.fitness,
                "result": {
                    "test_id": t.result.test_id,
                    "test_name": t.result.test_name,
                    "plan": t.result.plan.format(),
                    "exit_code": t.result.exit_code,
                    "crash_kind": t.result.crash_kind,
                    "crash_message": t.result.crash_message,
                    "crash_stack": list(t.result.crash_stack or []) or None,
                    "injection_stack":
                        list(t.result.injection_stack or []) or None,
                    "injected": t.result.injected,
                    "coverage": sorted(t.result.coverage),
                    "steps": t.result.steps,
                    "open_fds": t.result.open_fds,
                    "leaked_heap_bytes": t.result.leaked_heap_bytes,
                    "failure_message": t.result.failure_message,
                    "measurements": t.result.measurements,
                },
            }
            if t.result.provenance:
                # Optional key, only when non-empty: keeps saved sets
                # from provenance-off runs byte-identical to before.
                entry["result"]["provenance"] = [
                    list(record) for record in t.result.provenance
                ]
            payload.append(entry)
        return json.dumps({"version": 1, "tests": payload})

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        """Rebuild a result set saved with :meth:`to_json`."""
        import json

        from repro.injection.plan import InjectionPlan
        from repro.sim.libc import ProvenanceRecord

        def _value(raw):
            # JSON turns tuples into lists; restore the range-call shape.
            return tuple(raw) if isinstance(raw, list) else raw

        data = json.loads(text)
        executed = []
        for entry in data["tests"]:
            raw_fault = entry["fault"]
            fault = Fault(
                raw_fault["subspace"],
                tuple((n, _value(v)) for n, v in raw_fault["attributes"]),
            )
            raw = entry["result"]
            result = RunResult(
                test_id=raw["test_id"],
                test_name=raw["test_name"],
                plan=InjectionPlan.parse(raw["plan"]),
                exit_code=raw["exit_code"],
                crash_kind=raw["crash_kind"],
                crash_message=raw["crash_message"],
                crash_stack=tuple(raw["crash_stack"])
                if raw["crash_stack"] else None,
                injection_stack=tuple(raw["injection_stack"])
                if raw["injection_stack"] else None,
                injected=raw["injected"],
                coverage=frozenset(raw["coverage"]),
                steps=raw["steps"],
                open_fds=raw.get("open_fds", 0),
                leaked_heap_bytes=raw.get("leaked_heap_bytes", 0),
                failure_message=raw["failure_message"],
                measurements=dict(raw["measurements"]),
                provenance=tuple(
                    ProvenanceRecord.from_raw(row)
                    for row in raw.get("provenance", ())
                ),
            )
            executed.append(ExecutedTest(
                index=entry["index"],
                fault=fault,
                result=result,
                impact=entry["impact"],
                fitness=entry["fitness"],
            ))
        return cls(executed)

    def save(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path) -> "ResultSet":
        from pathlib import Path

        return cls.from_json(Path(path).read_text())

    # -- summary ---------------------------------------------------------------------

    def summary(self) -> dict[str, float]:
        return {
            "tests": len(self._executed),
            "failed": self.failed_count(),
            "crashes": self.crash_count(),
            "hangs": len(self.hangs()),
            "covered_blocks": len(self.coverage_union()),
            "max_impact": max((t.impact for t in self._executed), default=0.0),
        }
