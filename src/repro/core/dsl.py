"""The fault-space description language (paper Fig. 3).

Grammar, verbatim from the paper::

    syntax    = {space};
    space     = (subtype | parameter)+ ";";
    subtype   = identifier;
    parameter = identifier ":"
                ( "{" identifier ("," identifier)+ "}"
                | "[" number "," number "]"
                | "<" number "," number ">" );

* subspaces are separated by ``;``;
* ``{ a, b, c }`` is an explicit value set (identifiers);
* ``[ lo , hi ]`` is an integer interval sampled for single numbers;
* ``< lo , hi >`` is an interval sampled for entire *sub-intervals*
  (values become ``(lo, hi)`` pairs, see
  :meth:`repro.core.axis.Axis.from_subintervals`);
* a bare identifier names the subspace (the grammar's *subtype*).

Extensions kept deliberately minimal: ``#`` starts a comment, and a set
may contain a single identifier (the paper's own Fig. 4 example space
uses singleton sets like ``errno : { ENOMEM }``, which the strict
grammar would reject).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.axis import Axis
from repro.core.faultspace import FaultSpace, Subspace
from repro.errors import DslError

__all__ = ["parse_fault_space", "format_fault_space", "tokenize"]


# --------------------------------------------------------------------------
# lexer
# --------------------------------------------------------------------------

_PUNCT = set("{}[]<>,:;")


@dataclass(frozen=True)
class _Token:
    kind: str  # "ident" | "number" | one of the punctuation chars
    text: str
    line: int
    column: int


def tokenize(source: str) -> list[_Token]:
    """Split DSL source into tokens, tracking positions for diagnostics."""
    tokens: list[_Token] = []
    for line_no, line in enumerate(source.splitlines(), start=1):
        i = 0
        while i < len(line):
            ch = line[i]
            if ch == "#":
                break
            if ch.isspace():
                i += 1
                continue
            if ch in _PUNCT:
                tokens.append(_Token(ch, ch, line_no, i + 1))
                i += 1
                continue
            if ch.isdigit():
                start = i
                while i < len(line) and line[i].isdigit():
                    i += 1
                tokens.append(_Token("number", line[start:i], line_no, start + 1))
                continue
            if ch.isalpha() or ch == "_":
                start = i
                while i < len(line) and (line[i].isalnum() or line[i] == "_"):
                    i += 1
                tokens.append(_Token("ident", line[start:i], line_no, start + 1))
                continue
            if ch == "-" and i + 1 < len(line) and line[i + 1].isdigit():
                # negative numbers appear in retval axes, e.g. [ -1 , 0 ]
                start = i
                i += 1
                while i < len(line) and line[i].isdigit():
                    i += 1
                tokens.append(_Token("number", line[start:i], line_no, start + 1))
                continue
            raise DslError(f"unexpected character {ch!r}", line_no, i + 1)
    return tokens


# --------------------------------------------------------------------------
# parser
# --------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: list[_Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> _Token | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise DslError("unexpected end of input")
        self._pos += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise DslError(
                f"expected {kind!r}, found {token.text!r}", token.line, token.column
            )
        return token

    def parse(self) -> FaultSpace:
        subspaces: list[Subspace] = []
        anon = 0
        while self._peek() is not None:
            label_parts: list[str] = []
            axes: list[Axis] = []
            while True:
                token = self._peek()
                if token is None:
                    raise DslError("subspace not terminated with ';'")
                if token.kind == ";":
                    self._next()
                    break
                name_token = self._expect("ident")
                after = self._peek()
                if after is not None and after.kind == ":":
                    self._next()
                    axes.append(self._parse_axis(name_token))
                else:
                    label_parts.append(name_token.text)
            if not axes:
                raise DslError(
                    "subspace has no parameters",
                    name_token.line,
                    name_token.column,
                )
            if label_parts:
                label = ".".join(label_parts)
            else:
                label = f"s{anon}"
                anon += 1
            subspaces.append(Subspace(label, axes))
        if not subspaces:
            raise DslError("empty fault space description")
        return FaultSpace(subspaces)

    def _set_member(self):
        """A set element: an identifier (string) or a number (int).

        The strict Fig. 3 grammar allows only identifiers in sets, but
        the paper's own Fig. 4 example writes ``retval : { 0 }`` — we
        follow the example.
        """
        token = self._next()
        if token.kind == "ident":
            return token.text
        if token.kind == "number":
            return int(token.text)
        raise DslError(
            f"expected identifier or number in set, found {token.text!r}",
            token.line,
            token.column,
        )

    def _parse_axis(self, name_token: _Token) -> Axis:
        opener = self._next()
        if opener.kind == "{":
            values = [self._set_member()]
            while True:
                token = self._next()
                if token.kind == "}":
                    break
                if token.kind != ",":
                    raise DslError(
                        f"expected ',' or '}}' in set, found {token.text!r}",
                        token.line,
                        token.column,
                    )
                values.append(self._set_member())
            return Axis(name_token.text, values)
        if opener.kind == "[":
            low = int(self._expect("number").text)
            self._expect(",")
            high = int(self._expect("number").text)
            self._expect("]")
            if high < low:
                raise DslError(
                    f"interval [{low}, {high}] is empty",
                    opener.line,
                    opener.column,
                )
            return Axis.from_range(name_token.text, low, high)
        if opener.kind == "<":
            low = int(self._expect("number").text)
            self._expect(",")
            high = int(self._expect("number").text)
            self._expect(">")
            if high < low:
                raise DslError(
                    f"interval <{low}, {high}> is empty",
                    opener.line,
                    opener.column,
                )
            return Axis.from_subintervals(name_token.text, low, high)
        raise DslError(
            f"expected '{{', '[' or '<' after '{name_token.text} :', "
            f"found {opener.text!r}",
            opener.line,
            opener.column,
        )


def parse_fault_space(source: str) -> FaultSpace:
    """Parse a fault-space description (Fig. 3 grammar) into a FaultSpace."""
    return _Parser(tokenize(source)).parse()


# --------------------------------------------------------------------------
# writer
# --------------------------------------------------------------------------


def format_fault_space(space: FaultSpace) -> str:
    """Render a FaultSpace back into DSL text.

    Integer axes that cover a contiguous range render as ``[ lo , hi ]``;
    everything else renders as an explicit value set.  Sub-interval axes
    render as ``< lo , hi >``.
    """
    chunks: list[str] = []
    for sub in space.subspaces:
        lines: list[str] = []
        if sub.label and not sub.label.startswith("s"):
            lines.append(sub.label)
        elif sub.label and not sub.label[1:].isdigit():
            lines.append(sub.label)
        for axis in sub.axes:
            lines.append(f"{axis.name} : {_format_axis_values(axis)}")
        chunks.append("\n".join(lines) + " ;")
    return "\n".join(chunks) + "\n"


def _format_axis_values(axis: Axis) -> str:
    values = axis.values
    if _is_subinterval_axis(values):
        lo = values[0][0]
        hi = values[-1][1]
        return f"< {lo} , {hi} >"
    if all(isinstance(v, int) for v in values):
        lo, hi = min(values), max(values)
        if list(values) == list(range(lo, hi + 1)):
            return f"[ {lo} , {hi} ]"
    rendered = ", ".join(str(v) for v in values)
    return f"{{ {rendered} }}"


def _is_subinterval_axis(values: tuple) -> bool:
    if not values or not all(
        isinstance(v, tuple) and len(v) == 2 for v in values
    ):
        return False
    lo = values[0][0]
    hi = values[-1][1]
    expected = [
        (a, b) for a in range(lo, hi + 1) for b in range(a, hi + 1)
    ]
    return list(values) == expected
