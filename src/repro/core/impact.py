"""Impact metrics: I_S : Φ → R, the fitness the search climbs (§2, §6.4).

The paper's recipe (§6.4 step 3): "allocate scores to each event of
interest, such as 1 point for each newly covered basic block, 10 points
for each hang bug found, 20 points for each crash."
:func:`standard_impact` builds exactly that metric.

Metrics score :class:`~repro.sim.process.RunResult` objects.  The
coverage component is *stateful* (it rewards blocks never seen in this
exploration session), so a fresh metric must be created per session —
:class:`~repro.core.session.ExplorationSession` asserts this by
accepting a factory or a not-yet-used metric.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.sim.process import RunResult

__all__ = [
    "ImpactMetric",
    "FailedTestImpact",
    "CrashImpact",
    "HangImpact",
    "CoverageImpact",
    "MeasurementImpact",
    "SlowdownImpact",
    "InvariantImpact",
    "ResourceLeakImpact",
    "CompositeImpact",
    "measure_leak_baseline",
    "measure_step_baseline",
    "standard_impact",
]


class ImpactMetric(ABC):
    """Maps a run outcome to a scalar impact."""

    @abstractmethod
    def score(self, result: RunResult) -> float:
        """The impact of the run (higher = more interesting to a tester)."""

    def __call__(self, result: RunResult) -> float:
        return self.score(result)


class FailedTestImpact(ImpactMetric):
    """Points when the test fails (for any reason, including crashes)."""

    def __init__(self, points: float = 5.0) -> None:
        self.points = points

    def score(self, result: RunResult) -> float:
        return self.points if result.failed else 0.0


class CrashImpact(ImpactMetric):
    """Points for process crashes (segfault / abort)."""

    def __init__(self, points: float = 20.0) -> None:
        self.points = points

    def score(self, result: RunResult) -> float:
        return self.points if result.crashed else 0.0


class HangImpact(ImpactMetric):
    """Points for hangs (step-budget exhaustion, self-deadlock)."""

    def __init__(self, points: float = 10.0) -> None:
        self.points = points

    def score(self, result: RunResult) -> float:
        return self.points if result.hung else 0.0


class CoverageImpact(ImpactMetric):
    """Points per basic block never covered before in this session.

    Stateful: remembers every block seen across scored runs, so early
    tests that open new territory score high and repeats score zero —
    this is what pushes the search to keep coverage growing alongside
    impact (§3's aging discussion, §7 impact metric).
    """

    def __init__(self, points_per_block: float = 1.0) -> None:
        self.points_per_block = points_per_block
        self._seen: set[str] = set()

    @property
    def blocks_seen(self) -> frozenset[str]:
        return frozenset(self._seen)

    def score(self, result: RunResult) -> float:
        new = result.coverage - self._seen
        self._seen |= result.coverage
        return self.points_per_block * len(new)


class MeasurementImpact(ImpactMetric):
    """Scores a named sensor measurement (e.g. latency degradation)."""

    def __init__(self, name: str, scale: float = 1.0, default: float = 0.0) -> None:
        self.name = name
        self.scale = scale
        self.default = default

    def score(self, result: RunResult) -> float:
        return self.scale * result.measurements.get(self.name, self.default)


class SlowdownImpact(ImpactMetric):
    """Scores performance degradation against a per-test baseline.

    §6 motivates exploration targets like "the top-50 worst faults
    performance-wise (i.e., faults that affect system performance the
    most)".  Execution cost here is the simulated step count (libc
    calls), which rises under injected faults exactly when the target
    burns work on retries, fallbacks, and re-processing.  The score is
    ``scale * max(0, steps/baseline - 1)`` — relative slowdown.

    Build the baseline with :func:`measure_step_baseline`.
    """

    def __init__(self, baseline: dict[int, int], scale: float = 10.0) -> None:
        if not baseline:
            raise ValueError("slowdown impact needs a non-empty baseline")
        if any(steps <= 0 for steps in baseline.values()):
            raise ValueError("baseline step counts must be positive")
        self.baseline = dict(baseline)
        self.scale = scale

    def score(self, result: RunResult) -> float:
        baseline = self.baseline.get(result.test_id)
        if baseline is None:
            return 0.0
        slowdown = result.steps / baseline - 1.0
        return self.scale * max(0.0, slowdown)


class InvariantImpact(ImpactMetric):
    """Points per violated always-true property (§7's fault-injection-
    oriented assertions — "under no circumstances should a file transfer
    be only partially completed when the system stops").

    These are the most severe findings a recovery test can produce:
    acknowledged state was lost or torn.  The default weight therefore
    exceeds even the crash weight.
    """

    def __init__(self, points: float = 30.0) -> None:
        self.points = points

    def score(self, result: RunResult) -> float:
        return self.points * len(result.invariant_violations)


class ResourceLeakImpact(ImpactMetric):
    """Scores resource leaks left behind by the run.

    A fault whose error path forgets to close descriptors or free
    buffers does not fail any test — it quietly poisons long-running
    processes.  The simulated world tracks both resources exactly, so
    leaks relative to a fault-free baseline are directly scorable.
    Baselines come from :func:`measure_leak_baseline`; without one,
    absolute end-of-run usage is scored (fine for programs that should
    exit clean).
    """

    def __init__(
        self,
        fd_points: float = 5.0,
        byte_points: float = 0.01,
        baseline: dict[int, tuple[int, int]] | None = None,
    ) -> None:
        self.fd_points = fd_points
        self.byte_points = byte_points
        self.baseline = dict(baseline) if baseline else {}

    def score(self, result: RunResult) -> float:
        base_fds, base_bytes = self.baseline.get(result.test_id, (0, 0))
        leaked_fds = max(0, result.open_fds - base_fds)
        leaked_bytes = max(0, result.leaked_heap_bytes - base_bytes)
        return self.fd_points * leaked_fds + self.byte_points * leaked_bytes


def measure_leak_baseline(target) -> dict[int, tuple[int, int]]:
    """Fault-free (open fds, heap bytes) per test at program end."""
    from repro.sim.process import run_test

    baseline = {}
    for test in target.suite:
        result = run_test(target, test)
        baseline[test.id] = (result.open_fds, result.leaked_heap_bytes)
    return baseline


def measure_step_baseline(target) -> dict[int, int]:
    """Fault-free step counts per test, for :class:`SlowdownImpact`."""
    from repro.sim.process import run_test

    return {
        test.id: max(run_test(target, test).steps, 1)
        for test in target.suite
    }


class CompositeImpact(ImpactMetric):
    """Sum of component metrics."""

    def __init__(self, components: Sequence[ImpactMetric]) -> None:
        if not components:
            raise ValueError("composite impact needs at least one component")
        self.components = tuple(components)

    def score(self, result: RunResult) -> float:
        return sum(component.score(result) for component in self.components)


def standard_impact(
    coverage_points: float = 1.0,
    failed_test_points: float = 5.0,
    hang_points: float = 10.0,
    crash_points: float = 20.0,
) -> CompositeImpact:
    """The paper's §6.4 example metric, freshly stateful."""
    return CompositeImpact(
        [
            CoverageImpact(coverage_points),
            FailedTestImpact(failed_test_points),
            HangImpact(hang_points),
            CrashImpact(crash_points),
        ]
    )
