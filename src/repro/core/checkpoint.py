"""Versioned campaign checkpoints: crash-resumable exploration.

A long certification campaign that dies at generation 9,000 should not
restart at generation zero — least of all in a tool whose thesis is
that recovery code must be exercised.  This module snapshots a running
exploration's state to a versioned JSON file and restores it so that a
killed campaign, resumed, produces a result history **byte-identical**
to an uninterrupted run with the same seed.

The snapshot holds the *observable* state of the session: the full
result history (fault, impact, and the same
:class:`~repro.sim.process.RunResult` wire payload the result cache
uses), the RNG state, a fingerprint of the fault space, the batch
size, and free-form caller metadata (target name, strategy, seed,
cache statistics).  Strategy internals are deliberately *not*
serialized — every bundled strategy is a deterministic function of
``(space, rng, observations)``, so resume **replays** the recorded
history through a freshly-bound strategy: each replayed round re-asks
the strategy for its proposals, checks them against the record (a
divergence means code drift or a foreign checkpoint and raises
:class:`~repro.errors.CheckpointError`), feeds back the recorded
results without executing anything, and finally verifies the RNG
landed in exactly the recorded state.  Replay of ``n`` tests costs
``n`` cache-speed observations, no simulator time.

Checkpoint files are written atomically (temp file + fsync +
``os.replace`` — see
:func:`~repro.core.cache.write_json_atomically`), so the fault being
survived — a kill mid-write — cannot corrupt the very file that
enables surviving it.
"""

from __future__ import annotations

import hashlib
import json
import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.cache import (
    result_from_payload,
    result_to_payload,
    write_json_atomically,
)
from repro.core.fault import Fault
from repro.core.faultspace import FaultSpace
from repro.core.results import ExecutedTest
from repro.errors import CheckpointError

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointWriter",
    "space_fingerprint",
    "build_checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "replay_history",
    "history_digest",
]

#: bump on any incompatible change to the checkpoint schema.
CHECKPOINT_VERSION = 1
_KIND = "afex-checkpoint"


def _canonical(value: object) -> object:
    """JSON-stable view of an attribute value (tuples become lists)."""
    if isinstance(value, tuple):
        return [_canonical(v) for v in value]
    return value


def _decanonical(value: object) -> object:
    """Inverse of :func:`_canonical`: JSON lists become tuples again."""
    if isinstance(value, list):
        return tuple(_decanonical(v) for v in value)
    return value


def space_fingerprint(space: FaultSpace) -> dict[str, object]:
    """A cheap identity for a fault space: axes and total size.

    Enough to reject resuming a checkpoint against the wrong space
    before replay even starts (replay itself then catches any deeper
    mismatch fault by fault).
    """
    return {
        "axes": sorted(space.axis_names()),
        "size": space.size(),
    }


def _executed_to_payload(test: ExecutedTest) -> dict[str, object]:
    return {
        "fault": {
            "subspace": test.fault.subspace,
            "attributes": [
                [name, _canonical(value)]
                for name, value in test.fault.attributes
            ],
        },
        "impact": test.impact,
        "fitness": test.fitness,
        "result": result_to_payload(test.result),
    }


def _executed_from_payload(payload: dict, index: int) -> ExecutedTest:
    fault_data = payload["fault"]
    fault = Fault(
        subspace=fault_data["subspace"],
        attributes=tuple(
            (name, _decanonical(value))
            for name, value in fault_data["attributes"]
        ),
    )
    return ExecutedTest(
        index=index,
        fault=fault,
        result=result_from_payload(payload["result"]),
        impact=payload["impact"],
        fitness=payload["fitness"],
    )


def _rng_state_to_json(state: object) -> list:
    version, internal, gauss_next = state  # type: ignore[misc]
    return [version, list(internal), gauss_next]


def _rng_state_from_json(data: Sequence) -> tuple:
    return (data[0], tuple(data[1]), data[2])


@dataclass
class Checkpoint:
    """One snapshot of a running exploration, ready to resume from."""

    version: int
    batch_size: int
    space: dict[str, object]
    executed: list[dict]
    rng_state: list | None = None
    #: free-form caller configuration (target, strategy, seed, fabric,
    #: iterations, cache statistics) — round-tripped verbatim.
    meta: dict[str, object] = field(default_factory=dict)

    @property
    def iterations(self) -> int:
        """How many executed tests the snapshot holds."""
        return len(self.executed)

    def restore_executed(self) -> list[ExecutedTest]:
        """The recorded result history, as live :class:`ExecutedTest`s."""
        return [
            _executed_from_payload(payload, index)
            for index, payload in enumerate(self.executed)
        ]

    def digest(self) -> str:
        """Content digest of the recorded history (see
        :func:`history_digest`)."""
        return _digest_payloads(self.executed)

    def as_payload(self) -> dict[str, object]:
        return {
            "kind": _KIND,
            "version": self.version,
            "batch_size": self.batch_size,
            "space": self.space,
            "executed": self.executed,
            "rng_state": self.rng_state,
            "meta": self.meta,
        }


def build_checkpoint(
    executed: Sequence[ExecutedTest],
    rng: random.Random,
    space: FaultSpace,
    batch_size: int,
    meta: dict[str, object] | None = None,
) -> Checkpoint:
    """Snapshot a session's state between two exploration rounds."""
    return Checkpoint(
        version=CHECKPOINT_VERSION,
        batch_size=batch_size,
        space=space_fingerprint(space),
        executed=[_executed_to_payload(test) for test in executed],
        rng_state=_rng_state_to_json(rng.getstate()),
        meta=dict(meta or {}),
    )


def save_checkpoint(path: str | Path, checkpoint: Checkpoint) -> Path:
    """Atomically persist a checkpoint; returns the written path."""
    destination = Path(path)
    write_json_atomically(destination, checkpoint.as_payload())
    return destination


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Read and validate a checkpoint written by :func:`save_checkpoint`."""
    source = Path(path)
    try:
        data = json.loads(source.read_text())
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {source}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"unreadable checkpoint {source}: {exc}"
        ) from exc
    if not isinstance(data, dict) or data.get("kind") != _KIND:
        raise CheckpointError(f"{source} is not an AFEX checkpoint")
    version = data.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {source} has version {version!r}; this build "
            f"reads version {CHECKPOINT_VERSION}"
        )
    try:
        return Checkpoint(
            version=version,
            batch_size=int(data["batch_size"]),
            space=dict(data["space"]),
            executed=list(data["executed"]),
            rng_state=data.get("rng_state"),
            meta=dict(data.get("meta") or {}),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"malformed checkpoint {source}: {exc!r}"
        ) from exc


def replay_history(
    checkpoint: Checkpoint,
    strategy: object,
    batch_size: int,
    space: FaultSpace,
    account: Callable[[Fault, object], ExecutedTest],
    rng: random.Random | None = None,
) -> int:
    """Drive a freshly-bound strategy through the recorded history.

    ``account`` is the session's scoring path — ``(fault, result) ->
    ExecutedTest`` — called with each *recorded* result so the
    strategy, impact metric, and result history end up in exactly the
    state they had when the checkpoint was written, without touching
    the simulator.  Returns the number of replayed tests.

    Raises :class:`CheckpointError` when the checkpoint cannot belong
    to this configuration: wrong space, wrong batch size, a strategy
    that proposes different faults (code drift), an impact that scores
    differently, or an RNG that lands in a different state.
    """
    fingerprint = space_fingerprint(space)
    if checkpoint.space != fingerprint:
        raise CheckpointError(
            f"checkpoint space {checkpoint.space} does not match the "
            f"session's space {fingerprint}"
        )
    if checkpoint.batch_size != batch_size:
        raise CheckpointError(
            f"checkpoint was written at batch_size="
            f"{checkpoint.batch_size}, session uses {batch_size}; "
            "resume with the original batch size for byte-identical "
            "trajectories"
        )
    recorded = checkpoint.restore_executed()
    replayed = 0
    while replayed < len(recorded):
        batch = strategy.propose_batch(batch_size)  # type: ignore[attr-defined]
        if not batch:
            raise CheckpointError(
                "strategy exhausted the space during replay; the "
                "checkpoint records more history than this "
                "configuration can produce"
            )
        for fault in batch:
            if replayed >= len(recorded):
                raise CheckpointError(
                    "strategy proposed past the recorded history; the "
                    "checkpoint was not written on a round boundary "
                    "for this batch size"
                )
            record = recorded[replayed]
            if fault != record.fault:
                raise CheckpointError(
                    f"replay diverged at test #{replayed}: strategy "
                    f"proposed {fault}, checkpoint recorded "
                    f"{record.fault} — the checkpoint belongs to a "
                    "different configuration or code version"
                )
            executed = account(fault, record.result)
            if executed.impact != record.impact:
                raise CheckpointError(
                    f"replay diverged at test #{replayed}: impact "
                    f"scored {executed.impact}, checkpoint recorded "
                    f"{record.impact}"
                )
            replayed += 1
    if rng is not None and checkpoint.rng_state is not None:
        if rng.getstate() != _rng_state_from_json(checkpoint.rng_state):
            raise CheckpointError(
                "RNG state after replay does not match the checkpoint; "
                "a stochastic component drifted and the resumed run "
                "would not be byte-identical"
            )
    return replayed


class CheckpointWriter:
    """Periodic snapshot policy: write every N executed tests.

    Sessions call :meth:`maybe_write` between rounds; the writer
    snapshots whenever at least ``every`` new tests accumulated since
    the last write (and always on ``force=True``, used at session
    end).  ``every=0`` disables periodic writes but still allows the
    final forced one.
    """

    def __init__(
        self,
        path: str | Path,
        every: int,
        space: FaultSpace,
        batch_size: int,
        meta: dict[str, object] | None = None,
        meta_provider: Callable[[], dict[str, object]] | None = None,
    ) -> None:
        if every < 0:
            raise CheckpointError(
                f"checkpoint interval must be >= 0, got {every}"
            )
        self.path = Path(path)
        self.every = every
        self.space = space
        self.batch_size = batch_size
        self.meta = dict(meta or {})
        self.meta_provider = meta_provider
        #: iteration count at the last write.
        self.last_written = -1
        self.writes = 0

    def maybe_write(
        self,
        executed: Sequence[ExecutedTest],
        rng: random.Random,
        force: bool = False,
    ) -> bool:
        due = (
            self.every > 0
            and len(executed) - max(self.last_written, 0) >= self.every
        )
        if not (due or (force and len(executed) != self.last_written)):
            return False
        meta = dict(self.meta)
        if self.meta_provider is not None:
            meta.update(self.meta_provider())
        save_checkpoint(self.path, build_checkpoint(
            executed, rng, self.space, self.batch_size, meta=meta,
        ))
        self.last_written = len(executed)
        self.writes += 1
        return True


def _digest_payloads(payloads: Sequence[dict]) -> str:
    canonical = json.dumps(payloads, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def history_digest(executed: Sequence[ExecutedTest]) -> str:
    """Content digest of a result history.

    Two runs with byte-identical histories — same faults, same
    impacts, same simulated outcomes, in the same order — produce the
    same digest; this is what the kill-and-resume round-trip in CI
    compares against an uninterrupted run.  Wall-clock noise (report
    costs) is excluded by construction: the digest covers the same
    wire payloads the checkpoint persists.
    """
    return _digest_payloads([_executed_to_payload(t) for t in executed])
