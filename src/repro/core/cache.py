"""Content-addressed memoization of test executions.

Every run in the simulated world is deterministic given
``(target, test, injection plan, trial, step budget)`` — see
:mod:`repro.sim.process`.  Fault-space exploration nevertheless
re-executes the same points constantly: ablation sweeps re-run identical
faults under every strategy variant, campaigns re-certify the same
system against overlapping spaces, report generation re-executes top
faults for precision trials, and replay re-runs everything.  A
:class:`ResultCache` makes all of those duplicates free.

The cache is keyed on the *content* of an execution:
``(target id, fault vector, trial, step budget)`` where the target id
also folds in the injector name (two injectors may compile the same
attribute dict into different plans).  Entries are LRU-evicted beyond
``capacity`` and can be persisted to JSON, so a warm cache survives
process boundaries — a second campaign over the same jobs replays from
disk instead of the simulator.

Soundness caveat (documented in docs/ARCHITECTURE.md): the cache is
only valid while target code is unchanged.  The target id embeds
``name/version``, so bumping a target's ``version`` invalidates its
entries naturally; editing a target in place without bumping the
version requires clearing the cache.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import warnings
from collections import OrderedDict
from pathlib import Path

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import RunResult

__all__ = [
    "CacheKey",
    "ResultCache",
    "result_to_payload",
    "result_from_payload",
    "write_json_atomically",
]

#: a fully-resolved execution identity, suitable as a dict key.
CacheKey = str


def _canonical(value: object) -> object:
    """JSON-stable view of an attribute value (tuples become lists)."""
    if isinstance(value, tuple):
        return [_canonical(v) for v in value]
    return value


class ResultCache:
    """LRU memoization of :class:`~repro.sim.process.RunResult`s.

    Thread-safe: the thread-pool fabric shares one cache across all its
    node managers.  (Process fabrics cannot share the in-memory dict —
    each worker process holds its own; cross-process reuse happens via
    :meth:`save` / :meth:`load` persistence instead.)
    """

    def __init__(self, capacity: int = 4096, path: str | Path | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.path = Path(path) if path is not None else None
        self._entries: "OrderedDict[CacheKey, RunResult]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if self.path is not None and self.path.exists():
            # A cache is an optimization: a corrupt or stale-format file
            # must not kill the run, it just means starting cold.
            try:
                self.load(self.path)
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                warnings.warn(
                    f"ignoring unreadable result cache {self.path}: {exc}",
                    stacklevel=2,
                )
                self._entries.clear()

    # -- keying ----------------------------------------------------------------

    @staticmethod
    def key_for(
        target_id: str,
        subspace: str,
        attributes: tuple[tuple[str, object], ...],
        trial: int,
        step_budget: int,
    ) -> CacheKey:
        """The content address of one execution.

        The key is a canonical JSON string so the same identity is
        computed for live lookups and for entries reloaded from disk
        (JSON cannot distinguish tuples from lists, so values are
        canonicalized before hashing).
        """
        return json.dumps(
            [
                target_id,
                subspace,
                [[name, _canonical(value)] for name, value in attributes],
                trial,
                step_budget,
            ],
            separators=(",", ":"),
        )

    # -- lookup ----------------------------------------------------------------

    def get(self, key: CacheKey) -> "RunResult | None":
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def put(self, key: CacheKey, result: "RunResult") -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = result
                return
            self._entries[key] = result
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        # CPython dict len() happens to be atomic, but a concurrent
        # put() may be mid-eviction; reading under the lock returns a
        # count that actually existed at some instant.
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters (reset only by constructing anew).

        The snapshot is taken under the cache lock, so the four counts
        are mutually consistent — an eviction racing this call can never
        show up in ``evictions`` while the evicted entry still counts in
        ``entries``.
        """
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def bind_metrics(self, registry: "object") -> None:
        """Publish this cache's statistics into a metrics registry.

        Registers a snapshot-time collector on a
        :class:`~repro.obs.metrics.MetricsRegistry` rather than paying
        per-operation increments: the cache already counts hits,
        misses, and evictions, so export pulls those totals into the
        ``cache.*`` gauges (plus the derived ``cache.hit_ratio``)
        whenever a snapshot is taken.  Idempotent per registry.
        """
        bound = getattr(self, "_bound_registries", None)
        if bound is None:
            bound = self._bound_registries = set()
        if id(registry) in bound:
            return
        bound.add(id(registry))

        def _collect(reg) -> None:
            for name, value in self.stats().items():
                reg.gauge(f"cache.{name}").set(value)
            reg.gauge("cache.hit_ratio").set(self.hit_rate)

        registry.register_collector(_collect)  # type: ignore[attr-defined]

    @property
    def hit_rate(self) -> float:
        # Both counters must come from the same instant: a get() racing
        # an unlocked read could bump one but not yet the other and
        # tear the ratio (hits > hits + misses reads > 1.0).
        with self._lock:
            hits, misses = self.hits, self.misses
        total = hits + misses
        return hits / total if total else 0.0

    # -- persistence -----------------------------------------------------------

    def save(self, path: str | Path | None = None) -> None:
        """Persist every live entry as JSON (LRU order preserved).

        The write is atomic: the payload goes to a temporary file in
        the destination directory, is fsynced, and is then renamed over
        the destination with :func:`os.replace` — a crash mid-save can
        leave a stale cache, never a corrupt one.
        """
        destination = Path(path) if path is not None else self.path
        if destination is None:
            raise ValueError("no path given and cache has no default path")
        with self._lock:
            payload = {
                "version": 1,
                "capacity": self.capacity,
                "entries": [
                    [key, _result_to_payload(result)]
                    for key, result in self._entries.items()
                ],
            }
        write_json_atomically(destination, payload)

    def load(self, path: str | Path | None = None) -> int:
        """Merge entries persisted with :meth:`save`; returns the count."""
        source = Path(path) if path is not None else self.path
        if source is None:
            raise ValueError("no path given and cache has no default path")
        data = json.loads(source.read_text())
        loaded = 0
        for key, payload in data["entries"]:
            self.put(key, _result_from_payload(payload))
            loaded += 1
        return loaded


def write_json_atomically(destination: Path, payload: object) -> None:
    """Durably replace ``destination`` with ``payload`` as JSON.

    temp file in the same directory → write → flush → fsync →
    :func:`os.replace`.  The rename is atomic on POSIX, so concurrent
    readers see either the old file or the new one, and a crash at any
    point leaves the previous contents intact.  The temp file is
    removed on failure.
    """
    destination = Path(destination)
    destination.parent.mkdir(parents=True, exist_ok=True)
    fd, temp_name = tempfile.mkstemp(
        dir=destination.parent, prefix=f".{destination.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(json.dumps(payload))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, destination)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def _result_to_payload(result: "RunResult") -> dict:
    """Full-fidelity JSON view of a RunResult (trace excluded).

    Call traces are only populated by explicitly traced runs, which the
    runner never caches, so dropping ``trace`` loses nothing.

    ``provenance`` is only present when non-empty: runs without the
    opt-in provenance log serialize to byte-identical payloads (and
    therefore byte-identical history digests) before and after the
    field existed.
    """
    payload = {
        "test_id": result.test_id,
        "test_name": result.test_name,
        "plan": result.plan.format(),
        "exit_code": result.exit_code,
        "crash_kind": result.crash_kind,
        "crash_message": result.crash_message,
        "crash_stack": list(result.crash_stack) if result.crash_stack else None,
        "injection_stack":
            list(result.injection_stack) if result.injection_stack else None,
        "injected": result.injected,
        "coverage": sorted(result.coverage),
        "steps": result.steps,
        "stdout": list(result.stdout),
        "stderr": list(result.stderr),
        "failure_message": result.failure_message,
        "measurements": result.measurements,
        "call_counts": result.call_counts,
        "open_fds": result.open_fds,
        "leaked_heap_bytes": result.leaked_heap_bytes,
        "invariant_violations": list(result.invariant_violations),
    }
    if result.provenance:
        payload["provenance"] = [list(record) for record in result.provenance]
    return payload


def _result_from_payload(payload: dict) -> "RunResult":
    from repro.injection.plan import InjectionPlan
    from repro.sim.libc import ProvenanceRecord
    from repro.sim.process import RunResult

    return RunResult(
        test_id=payload["test_id"],
        test_name=payload["test_name"],
        plan=InjectionPlan.parse(payload["plan"]),
        exit_code=payload["exit_code"],
        crash_kind=payload["crash_kind"],
        crash_message=payload["crash_message"],
        crash_stack=tuple(payload["crash_stack"])
        if payload["crash_stack"] else None,
        injection_stack=tuple(payload["injection_stack"])
        if payload["injection_stack"] else None,
        injected=payload["injected"],
        coverage=frozenset(payload["coverage"]),
        steps=payload["steps"],
        stdout=tuple(payload["stdout"]),
        stderr=tuple(payload["stderr"]),
        failure_message=payload["failure_message"],
        measurements=dict(payload["measurements"]),
        call_counts={k: int(v) for k, v in payload["call_counts"].items()},
        open_fds=payload["open_fds"],
        leaked_heap_bytes=payload["leaked_heap_bytes"],
        invariant_violations=tuple(payload["invariant_violations"]),
        provenance=tuple(
            ProvenanceRecord.from_raw(row)
            for row in payload.get("provenance", ())
        ),
    )


#: public names for the RunResult wire format — campaign checkpoints
#: (:mod:`repro.core.checkpoint`) persist result history with the exact
#: same serialization the cache uses, so the two files stay mutually
#: intelligible.
result_to_payload = _result_to_payload
result_from_payload = _result_from_payload
