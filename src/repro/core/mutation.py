"""Gaussian attribute mutation (Algorithm 1, lines 7-11).

New attribute values are drawn from a discrete approximation of a
Gaussian centred at the parent's value index with standard deviation
σ = |A_i| / 5 (the paper's evaluation choice; the factor is a
parameter here so the σ ablation bench can vary it).  The Gaussian
"favours φ's closest neighbors without completely dismissing points that
are further away" — contrast :func:`sample_uniform_index`, the naive
alternative used as an ablation baseline.
"""

from __future__ import annotations

import random

from repro.core.fault import Fault
from repro.core.faultspace import FaultSpace
from repro.errors import SearchError

__all__ = [
    "sample_gaussian_index",
    "sample_uniform_index",
    "mutate_fault",
    "DEFAULT_SIGMA_FACTOR",
]

#: σ = |A_i| / 5, as chosen for the paper's evaluation (§3).
DEFAULT_SIGMA_FACTOR = 0.2

_MAX_DRAWS = 64


def sample_gaussian_index(
    rng: random.Random,
    old_index: int,
    cardinality: int,
    sigma: float,
) -> int:
    """A new index != old_index, Gaussian-distributed around it.

    Draws are rounded to the nearest integer and rejected while outside
    ``[0, cardinality)`` or equal to ``old_index``; after a bounded
    number of rejections we fall back to a uniform draw so the function
    always terminates (relevant for cardinality-2 axes with tiny σ).
    """
    if cardinality < 2:
        raise SearchError("cannot mutate along an axis with a single value")
    if not 0 <= old_index < cardinality:
        raise SearchError(
            f"old index {old_index} outside [0, {cardinality})"
        )
    sigma = max(sigma, 0.5)  # keep a usable spread on tiny axes
    for _ in range(_MAX_DRAWS):
        draw = round(rng.gauss(old_index, sigma))
        if 0 <= draw < cardinality and draw != old_index:
            return draw
    return sample_uniform_index(rng, old_index, cardinality)


def sample_uniform_index(
    rng: random.Random, old_index: int, cardinality: int
) -> int:
    """Uniform new index != old_index (the no-locality baseline)."""
    if cardinality < 2:
        raise SearchError("cannot mutate along an axis with a single value")
    draw = rng.randrange(cardinality - 1)
    return draw if draw < old_index else draw + 1


def mutate_fault(
    space: FaultSpace,
    fault: Fault,
    axis_name: str,
    rng: random.Random,
    sigma_factor: float = DEFAULT_SIGMA_FACTOR,
    gaussian: bool = True,
) -> Fault:
    """Clone ``fault`` with ``axis_name`` re-sampled around its old value.

    The returned fault may be a hole; callers (the search strategy)
    re-check validity and retry, since hole shapes are arbitrary.
    """
    subspace = space.subspace_of(fault)
    axis = subspace.axis(axis_name)
    old_index = axis.index_of(fault.value(axis_name))
    if gaussian:
        new_index = sample_gaussian_index(
            rng, old_index, len(axis), sigma_factor * len(axis)
        )
    else:
        new_index = sample_uniform_index(rng, old_index, len(axis))
    return fault.replace(axis_name, axis.value_at(new_index))


def mutable_axes(space: FaultSpace, fault: Fault) -> tuple[str, ...]:
    """Axes of ``fault``'s subspace along which mutation is possible."""
    subspace = space.subspace_of(fault)
    return tuple(a.name for a in subspace.axes if len(a) > 1)
