"""Random exploration: uniform sampling without replacement.

The paper's main baseline (§3): "random exploration constructs random
combinations of attribute values and evaluates the corresponding points
in the fault space."  Like AFEX, it never re-executes a test — the
comparison isolates *guidance*, not deduplication.
"""

from __future__ import annotations

from repro.core.fault import Fault
from repro.core.search.base import SearchStrategy
from repro.errors import SearchError

__all__ = ["RandomSearch"]


class RandomSearch(SearchStrategy):
    """Uniform sampling of the fault space, deduplicated via History."""

    name = "random"

    def propose(self) -> Fault | None:
        return self._random_unseen()

    def propose_batch(self, k: int) -> list[Fault]:
        """``k`` independent uniform draws (no feedback dependence).

        Random proposal never consumes feedback, so a batch is exactly
        ``k`` sequential draws against the shared History — identical
        to serial proposal at any batch size.
        """
        if k < 1:
            raise SearchError(f"batch size must be >= 1, got {k}")
        batch: list[Fault] = []
        for _ in range(k):
            fault = self._random_unseen()
            if fault is None:
                break
            batch.append(fault)
        return batch
