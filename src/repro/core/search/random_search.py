"""Random exploration: uniform sampling without replacement.

The paper's main baseline (§3): "random exploration constructs random
combinations of attribute values and evaluates the corresponding points
in the fault space."  Like AFEX, it never re-executes a test — the
comparison isolates *guidance*, not deduplication.
"""

from __future__ import annotations

from repro.core.fault import Fault
from repro.core.search.base import SearchStrategy

__all__ = ["RandomSearch"]


class RandomSearch(SearchStrategy):
    """Uniform sampling of the fault space, deduplicated via History."""

    name = "random"

    def propose(self) -> Fault | None:
        return self._random_unseen()
