"""Algorithm 1: fitness-guided test generation.

A faithful implementation of the paper's §3, including the machinery the
pseudo-code delegates to prose ("Execution of tests, computation of
fitness and sensitivity, and aging occur outside this algorithm"):

* an initial random batch seeds Qpriority (AFEX step 1);
* parents are sampled from Qpriority proportionally to fitness
  (lines 1-4);
* the mutated attribute is chosen proportionally to normalized
  sensitivity (lines 5-6);
* the new value is drawn from a discrete Gaussian centred on the old
  value with σ = |A_i|/5 (lines 7-9);
* the offspring is deduplicated against History/Qpending (lines 12-14);
* fitness ages multiplicatively each step, and exhausted candidates are
  retired from Qpriority;
* an optional *fitness weight* hook implements the §7.4 result-quality
  feedback loop (redundancy-weighted fitness).

The ablation switches (``gaussian``, ``use_sensitivity``, ``aging``)
exist so benchmarks can quantify each ingredient's contribution — the
design-choice ablations DESIGN.md commits to.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.core.fault import Fault
from repro.core.mutation import (
    DEFAULT_SIGMA_FACTOR,
    mutable_axes,
    mutate_fault,
)
from repro.core.queues import Candidate, PriorityQueue
from repro.core.search.base import SearchStrategy
from repro.core.sensitivity import SensitivityTracker
from repro.errors import SearchError
from repro.sim.process import RunResult

__all__ = ["FitnessGuidedSearch"]

#: attempts at generating a novel offspring before falling back to random.
_MAX_GENERATION_TRIES = 200

#: type of the §7.4 feedback hook: (fault, result, raw_impact) -> fitness.
FitnessWeight = Callable[[Fault, RunResult, float], float]


class FitnessGuidedSearch(SearchStrategy):
    """Stochastic beam search with sensitivity and Gaussian mutation."""

    name = "fitness"

    def __init__(
        self,
        initial_batch: int = 25,
        priority_capacity: int = 50,
        sensitivity_window: int = 20,
        sensitivity_floor: float = 0.05,
        sigma_factor: float = DEFAULT_SIGMA_FACTOR,
        aging_decay: float = 0.97,
        retire_threshold: float = 0.25,
        gaussian: bool = True,
        use_sensitivity: bool = True,
        aging: bool = True,
        fitness_weight: FitnessWeight | None = None,
        use_novelty: bool = False,
        adaptive_sigma: bool = False,
        sigma_shrink: float = 0.93,
        sigma_grow: float = 1.04,
        sigma_bounds: tuple[float, float] = (0.05, 0.5),
        initial_seeds: tuple[Fault, ...] = (),
        eviction: str = "probabilistic",
    ) -> None:
        super().__init__()
        if initial_batch < 1:
            raise SearchError("initial_batch must be >= 1")
        if not sigma_bounds[0] < sigma_bounds[1]:
            raise SearchError(f"invalid sigma bounds {sigma_bounds}")
        self.initial_batch = initial_batch
        self.priority_capacity = priority_capacity
        self.sensitivity_window = sensitivity_window
        self.sensitivity_floor = sensitivity_floor
        self.sigma_factor = sigma_factor
        self.aging_decay = aging_decay
        self.retire_threshold = retire_threshold
        self.gaussian = gaussian
        self.use_sensitivity = use_sensitivity
        self.aging = aging
        self.fitness_weight = fitness_weight
        #: §7.4 live feedback: when True, the novelty signal streamed
        #: from the online clustering engine scales fitness directly —
        #: redundant results decay toward zero weight without the
        #: all-pairs scan the batch ``RedundancyFeedback`` hook pays.
        self.use_novelty = use_novelty
        #: §3 future work: "σ can also be computed dynamically, based on
        #: the evolution of tests in the currently explored vicinity".
        #: When enabled, each axis's σ factor shrinks while mutations
        #: along it keep paying off (exploit the local ridge) and grows
        #: while they don't (widen the net).
        self.adaptive_sigma = adaptive_sigma
        self.sigma_shrink = sigma_shrink
        self.sigma_grow = sigma_grow
        self.sigma_bounds = sigma_bounds
        #: §4: results of static analysis (or any prior knowledge) can
        #: seed the initial generation phase — these faults are proposed
        #: before any random probes, so the search "starts off with
        #: highly relevant tests" and learns the space's structure
        #: sooner.
        self.initial_seeds = tuple(initial_seeds)
        #: Qpriority eviction policy (probabilistic per the paper, or the
        #: strict-min ablation baseline).
        self.eviction = eviction
        # populated on bind():
        self._qpriority: PriorityQueue | None = None
        self._sensitivity: SensitivityTracker | None = None
        self._pending: deque[Fault] = deque()
        self._mutated_axis: dict[Fault, str] = {}
        #: parent fitness at proposal time, for the adaptive-σ comparison.
        self._parent_fitness: dict[Fault, float] = {}
        self._sigma_factors: dict[str, float] = {}
        self._proposed = 0
        #: bound-state cursor into the immutable ``initial_seeds`` tuple.
        self._seed_cursor = 0
        #: batch telemetry: size of each generation emitted via
        #: :meth:`propose_batch` (feedback-staleness accounting).
        self.batch_sizes: list[int] = []

    def bind(self, space, rng) -> None:
        super().bind(space, rng)
        self._qpriority = PriorityQueue(self.priority_capacity, rng,
                                        eviction=self.eviction)
        self._sensitivity = SensitivityTracker(
            space.axis_names(),
            window=self.sensitivity_window,
            floor=self.sensitivity_floor,
        )
        self._sigma_factors = {
            name: self.sigma_factor for name in space.axis_names()
        }
        self._seed_cursor = 0

    # -- generation -------------------------------------------------------------

    def propose(self) -> Fault | None:
        space, rng = self._require_bound()
        if self._pending:
            return self._pending.popleft()
        seed = self._next_seed()
        if seed is not None:
            self._proposed += 1
            return seed
        if self._proposed < self.initial_batch:
            fault = self._random_unseen()
            if fault is not None:
                self._proposed += 1
            return fault
        fault = self._generate_offspring()
        if fault is None:
            # No parents or the vicinity is saturated: widen with a
            # random probe (keeps coverage growing, per §3's aging goal).
            fault = self._random_unseen()
        if fault is not None:
            self._proposed += 1
        return fault

    def propose_batch(self, k: int) -> list[Fault]:
        """One generation of Algorithm 1: ``k`` offspring, no feedback.

        This is precisely the parallelism the paper's prototype exploits
        on EC2 (§6.1): stochastic beam search samples each parent from
        the *current* Qpriority, so ``k`` offspring can be drawn before
        any of their fitnesses are observed.  All ``k`` candidates are
        deduplicated against the shared History/Qpending as they are
        generated, and the batch mixes seeds, initial random probes, and
        offspring exactly as serial proposal would — ``propose_batch(1)``
        is bit-identical to :meth:`propose`.  Larger ``k`` trades
        feedback freshness for dispatch width: parents are up to one
        batch staler than under serial proposal (recorded in
        :attr:`batch_sizes` for the staleness/throughput analyses).
        """
        if k < 1:
            raise SearchError(f"batch size must be >= 1, got {k}")
        batch: list[Fault] = []
        for _ in range(k):
            fault = self.propose()
            if fault is None:
                break
            batch.append(fault)
        if batch:
            self.batch_sizes.append(len(batch))
        return batch

    def _generate_offspring(self) -> Fault | None:
        space, rng = self._require_bound()
        queue = self._queue()
        if len(queue) == 0:
            return None
        for _ in range(_MAX_GENERATION_TRIES):
            parent = queue.sample_parent()
            axes = mutable_axes(space, parent.fault)
            if not axes:
                continue
            axis_name = self._choose_axis(axes)
            offspring = mutate_fault(
                space,
                parent.fault,
                axis_name,
                rng,
                sigma_factor=self._sigma_for(axis_name),
                gaussian=self.gaussian,
            )
            if offspring in self.history:
                continue
            if not space.contains(offspring):
                continue  # landed in a hole
            self.history.add(offspring)
            self._mutated_axis[offspring] = axis_name
            if self.adaptive_sigma:
                self._parent_fitness[offspring] = parent.fitness
            return offspring
        return None

    def _next_seed(self) -> Fault | None:
        """The next unexecuted static-analysis seed, if any remain.

        ``initial_seeds`` is configuration and stays immutable; the
        consumption cursor is bound state (reset on :meth:`bind`), so a
        strategy instance reused across sessions replays its seeds
        instead of silently starting with none.
        """
        space, _ = self._require_bound()
        while self._seed_cursor < len(self.initial_seeds):
            seed = self.initial_seeds[self._seed_cursor]
            self._seed_cursor += 1
            if seed in self.history or not space.contains(seed):
                continue
            self.history.add(seed)
            return seed
        return None

    def _sigma_for(self, axis_name: str) -> float:
        if not self.adaptive_sigma:
            return self.sigma_factor
        return self._sigma_factors.get(axis_name, self.sigma_factor)

    def _choose_axis(self, axes: tuple[str, ...]) -> str:
        """Line 5-6: sensitivity-proportional axis selection."""
        _, rng = self._require_bound()
        if not self.use_sensitivity or len(axes) == 1:
            return rng.choice(axes)
        probabilities = self._tracker().probabilities()
        weights = [probabilities[a] for a in axes]
        total = sum(weights)
        pick = rng.random() * total
        cumulative = 0.0
        for axis_name, weight in zip(axes, weights):
            cumulative += weight
            if pick <= cumulative:
                return axis_name
        return axes[-1]

    # -- feedback ----------------------------------------------------------------

    def observe(
        self,
        fault: Fault,
        impact: float,
        result: RunResult,
        novelty: float | None = None,
    ) -> None:
        queue = self._queue()
        fitness = impact
        if self.fitness_weight is not None:
            fitness = self.fitness_weight(fault, result, impact)
        if self.use_novelty and novelty is not None:
            # §7.4 online: a redundant result (low novelty) seeds fewer
            # offspring; a brand-new cluster keeps its full fitness.
            fitness *= novelty
        mutated_axis = self._mutated_axis.pop(fault, None)
        queue.add(Candidate(fault, impact, fitness, mutated_axis))
        if mutated_axis is not None:
            self._tracker().record(mutated_axis, fitness)
            if self.adaptive_sigma:
                self._adapt_sigma(mutated_axis, fault, fitness)
        if self.aging:
            queue.age(self.aging_decay, self.retire_threshold)

    def _adapt_sigma(self, axis_name: str, fault: Fault, fitness: float) -> None:
        """Shrink σ while the local ridge keeps paying, grow otherwise."""
        parent_fitness = self._parent_fitness.pop(fault, None)
        if parent_fitness is None:
            return
        low, high = self.sigma_bounds
        current = self._sigma_factors.get(axis_name, self.sigma_factor)
        if fitness >= parent_fitness and fitness > 0:
            current *= self.sigma_shrink
        else:
            current *= self.sigma_grow
        self._sigma_factors[axis_name] = min(max(current, low), high)

    # -- introspection ---------------------------------------------------------------

    def sensitivities(self) -> dict[str, float]:
        """Current per-axis sensitivity (used by §7.3-style analyses)."""
        return self._tracker().sensitivities()

    def sigma_factors(self) -> dict[str, float]:
        """Current per-axis σ factors (fixed unless adaptive_sigma)."""
        if not self._sigma_factors:
            raise SearchError("strategy not bound")
        return dict(self._sigma_factors)

    def priority_snapshot(self) -> tuple[Candidate, ...]:
        return self._queue().items

    def _queue(self) -> PriorityQueue:
        if self._qpriority is None:
            raise SearchError("strategy not bound")
        return self._qpriority

    def _tracker(self) -> SensitivityTracker:
        if self._sensitivity is None:
            raise SearchError("strategy not bound")
        return self._sensitivity
