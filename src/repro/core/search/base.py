"""Strategy interface shared by all fault-space explorers.

The session drives a simple generate/observe protocol:

1. :meth:`SearchStrategy.bind` — attach the strategy to a space and RNG;
2. :meth:`SearchStrategy.propose` — the next fault to execute, or
   ``None`` when the strategy has exhausted the space;
3. :meth:`SearchStrategy.observe` — feed back the executed result and
   its impact, which fitness-guided strategies learn from.

Strategies must never propose a fault twice (the paper's History set);
the shared helpers here implement unseen-sampling for that.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.core.fault import Fault
from repro.core.faultspace import FaultSpace
from repro.core.queues import History
from repro.errors import SearchError
from repro.sim.process import RunResult

__all__ = ["SearchStrategy"]

_RANDOM_UNSEEN_TRIES = 2000


class SearchStrategy(ABC):
    """Base class for exploration strategies."""

    #: CLI-friendly strategy name; subclasses override.
    name = "strategy"

    def __init__(self) -> None:
        self.space: FaultSpace | None = None
        self.rng: random.Random | None = None
        self.history = History()

    def bind(self, space: FaultSpace, rng: random.Random) -> None:
        """Attach to the space being explored (called once by the session)."""
        self.space = space
        self.rng = rng

    def _require_bound(self) -> tuple[FaultSpace, random.Random]:
        if self.space is None or self.rng is None:
            raise SearchError(
                f"{type(self).__name__} used before bind(); "
                "strategies must be driven through an ExplorationSession"
            )
        return self.space, self.rng

    @abstractmethod
    def propose(self) -> Fault | None:
        """The next fault to test, or None when nothing is left to try."""

    def propose_batch(self, k: int) -> list[Fault]:
        """Up to ``k`` candidates proposed before any feedback.

        This is the parallel-explorer protocol of §6.1: a whole
        generation of candidates is emitted, dispatched to the cluster,
        and only then does :meth:`observe` feedback arrive — per batch,
        not per test.  The returned list is shorter than ``k`` only when
        the space is exhausted (an empty list means nothing is left).

        The default repeatedly calls :meth:`propose`, which is correct
        for any strategy whose proposal does not *require* interleaved
        feedback; strategies override it to make the batch semantics
        explicit (and, where possible, cheaper).  ``propose_batch(1)``
        must be exactly equivalent to a single :meth:`propose` call so
        that ``batch_size=1`` reproduces serial trajectories bit for
        bit.
        """
        if k < 1:
            raise SearchError(f"batch size must be >= 1, got {k}")
        batch: list[Fault] = []
        for _ in range(k):
            fault = self.propose()
            if fault is None:
                break
            batch.append(fault)
        return batch

    def observe(
        self,
        fault: Fault,
        impact: float,
        result: RunResult,
        novelty: float | None = None,
    ) -> None:
        """Feedback hook: called after each executed test.

        ``novelty`` is the optional live §7.4 signal from the online
        clustering engine (1.0 = nothing similar seen before, 0.0 = an
        exact repeat); the session only passes it when online quality is
        enabled, and strategies only act on it when explicitly opted in
        (``use_novelty``), so default trajectories stay byte-identical.
        """

    # -- shared helpers --------------------------------------------------------

    def _random_unseen(self) -> Fault | None:
        """A uniformly random fault not yet in History.

        Rejection-samples first; if the space is nearly exhausted, falls
        back to scanning the enumeration (only viable — and only
        needed — for small spaces).
        """
        space, rng = self._require_bound()
        if len(self.history) >= space.size():
            return None
        for _ in range(_RANDOM_UNSEEN_TRIES):
            fault = space.random_fault(rng)
            if fault not in self.history:
                self.history.add(fault)
                return fault
        for fault in space.enumerate():
            if fault not in self.history:
                self.history.add(fault)
                return fault
        return None
