"""Fault-space exploration strategies.

* :class:`FitnessGuidedSearch` — the paper's Algorithm 1: stochastic
  beam search with sensitivity-weighted axis choice, Gaussian value
  mutation, and fitness aging.
* :class:`RandomSearch` — uniform sampling without replacement (the
  paper's primary baseline).
* :class:`ExhaustiveSearch` — complete enumeration (feasible only for
  small spaces like Φ_coreutils).
* :class:`GeneticSearch` — the population/crossover algorithm the
  authors "employed ... but abandoned, because we found it inefficient"
  (§3); kept as an honest baseline for that claim.
"""

from repro.core.search.base import SearchStrategy
from repro.core.search.exhaustive import ExhaustiveSearch
from repro.core.search.fitness_guided import FitnessGuidedSearch
from repro.core.search.genetic import GeneticSearch
from repro.core.search.random_search import RandomSearch

__all__ = [
    "ExhaustiveSearch",
    "FitnessGuidedSearch",
    "GeneticSearch",
    "RandomSearch",
    "SearchStrategy",
    "strategy_by_name",
]


def strategy_by_name(name: str, **kwargs) -> SearchStrategy:
    """Instantiate a strategy by CLI-friendly name."""
    registry = {
        "fitness": FitnessGuidedSearch,
        "random": RandomSearch,
        "exhaustive": ExhaustiveSearch,
        "genetic": GeneticSearch,
    }
    cls = registry.get(name)
    if cls is None:
        raise ValueError(f"unknown strategy {name!r}; available: {sorted(registry)}")
    return cls(**kwargs)
