"""The abandoned genetic-algorithm baseline.

§3, "Alternative Algorithms": "In an earlier version of our system, we
employed a genetic algorithm, but abandoned it, because we found it
inefficient.  AFEX aims to optimize for 'ridges' on the fault-impact
hypersurface, and this makes global optimization algorithms (such as
genetic algorithms) difficult to apply."

We keep a textbook GA — fitness-proportional selection, single-point
attribute crossover, per-attribute mutation, generational replacement
with elitism — so that the claim is checkable: the ablation bench races
it against Algorithm 1 on the same spaces.
"""

from __future__ import annotations

from collections import deque

from repro.core.fault import Fault
from repro.core.mutation import mutable_axes, mutate_fault
from repro.core.search.base import SearchStrategy
from repro.errors import SearchError
from repro.sim.process import RunResult

__all__ = ["GeneticSearch"]


class GeneticSearch(SearchStrategy):
    """Generational GA over fault attribute vectors."""

    name = "genetic"

    def __init__(
        self,
        population_size: int = 30,
        mutation_rate: float = 0.2,
        elite: int = 4,
        sigma_factor: float = 0.2,
        use_novelty: bool = False,
    ) -> None:
        super().__init__()
        if population_size < 4:
            raise SearchError("population_size must be >= 4")
        if elite >= population_size:
            raise SearchError("elite must be smaller than the population")
        self.population_size = population_size
        self.mutation_rate = mutation_rate
        self.elite = elite
        self.sigma_factor = sigma_factor
        #: §7.4 live feedback: scale selection fitness by the streamed
        #: novelty signal, so redundant individuals breed less.
        self.use_novelty = use_novelty
        self._pending: deque[Fault] = deque()
        self._evaluated: list[tuple[Fault, float]] = []
        self._generation = 0

    def propose(self) -> Fault | None:
        self._require_bound()
        if not self._pending:
            self._breed()
        space, _ = self._require_bound()
        while self._pending:
            fault = self._pending.popleft()
            if fault not in self.history and space.contains(fault):
                self.history.add(fault)
                return fault
        # Breeding produced only duplicates: widen with random samples.
        return self._random_unseen()

    def observe(
        self,
        fault: Fault,
        impact: float,
        result: RunResult,
        novelty: float | None = None,
    ) -> None:
        fitness = impact
        if self.use_novelty and novelty is not None:
            fitness *= novelty
        self._evaluated.append((fault, fitness))

    # -- GA mechanics -----------------------------------------------------------

    def _breed(self) -> None:
        space, rng = self._require_bound()
        if len(self._evaluated) < self.population_size:
            # Generation 0: random seeding.
            for _ in range(self.population_size):
                fault = space.random_fault(rng)
                self._pending.append(fault)
            return
        self._generation += 1
        ranked = sorted(self._evaluated, key=lambda fi: fi[1], reverse=True)
        parents_pool = ranked[: self.population_size]
        # Elitism: the best few survive unchanged (they are in History, so
        # they won't re-execute; they only contribute genes).
        offspring: list[Fault] = []
        while len(offspring) < self.population_size:
            mother = self._select(parents_pool)
            father = self._select(parents_pool)
            child = self._crossover(mother, father)
            child = self._mutate(child)
            offspring.append(child)
        # Keep the evaluated pool bounded to the fittest individuals.
        self._evaluated = ranked[: self.population_size * 2]
        self._pending.extend(offspring)

    def _select(self, pool: list[tuple[Fault, float]]) -> Fault:
        _, rng = self._require_bound()
        total = sum(max(f, 0.0) + 1e-9 for _, f in pool)
        pick = rng.random() * total
        cumulative = 0.0
        for fault, fitness in pool:
            cumulative += max(fitness, 0.0) + 1e-9
            if pick <= cumulative:
                return fault
        return pool[-1][0]

    def _crossover(self, mother: Fault, father: Fault) -> Fault:
        """Single-point crossover; parents from different subspaces do not mix."""
        _, rng = self._require_bound()
        if mother.subspace != father.subspace or len(mother.attributes) < 2:
            return mother
        point = rng.randrange(1, len(mother.attributes))
        attributes = mother.attributes[:point] + father.attributes[point:]
        return Fault(mother.subspace, attributes)

    def _mutate(self, fault: Fault) -> Fault:
        space, rng = self._require_bound()
        axes = mutable_axes(space, fault)
        for axis_name in axes:
            if rng.random() < self.mutation_rate:
                fault = mutate_fault(
                    space, fault, axis_name, rng, sigma_factor=self.sigma_factor
                )
        return fault
