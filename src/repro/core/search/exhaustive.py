"""Exhaustive exploration: complete enumeration of the fault space.

"This method is complete, but inefficient and, thus, prohibitively slow
for large fault spaces" (§3) — it exists to provide ground truth for
small spaces (Φ_coreutils's 1,653 points in Table 3/6) and to make the
cost contrast measurable.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.fault import Fault
from repro.core.search.base import SearchStrategy

__all__ = ["ExhaustiveSearch"]


class ExhaustiveSearch(SearchStrategy):
    """Row-major enumeration of every valid fault."""

    name = "exhaustive"

    def __init__(self) -> None:
        super().__init__()
        self._iterator: Iterator[Fault] | None = None

    def bind(self, space, rng) -> None:
        super().bind(space, rng)
        self._iterator = space.enumerate()

    def propose(self) -> Fault | None:
        self._require_bound()
        assert self._iterator is not None
        for fault in self._iterator:
            if fault not in self.history:
                self.history.add(fault)
                return fault
        return None
