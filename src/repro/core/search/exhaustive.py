"""Exhaustive exploration: complete enumeration of the fault space.

"This method is complete, but inefficient and, thus, prohibitively slow
for large fault spaces" (§3) — it exists to provide ground truth for
small spaces (Φ_coreutils's 1,653 points in Table 3/6) and to make the
cost contrast measurable.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.fault import Fault
from repro.core.search.base import SearchStrategy
from repro.errors import SearchError

__all__ = ["ExhaustiveSearch"]


class ExhaustiveSearch(SearchStrategy):
    """Row-major enumeration of every valid fault."""

    name = "exhaustive"

    def __init__(self) -> None:
        super().__init__()
        self._iterator: Iterator[Fault] | None = None

    def bind(self, space, rng) -> None:
        super().bind(space, rng)
        self._iterator = space.enumerate()

    def propose(self) -> Fault | None:
        self._require_bound()
        assert self._iterator is not None
        for fault in self._iterator:
            if fault not in self.history:
                self.history.add(fault)
                return fault
        return None

    def propose_batch(self, k: int) -> list[Fault]:
        """The next ``k`` unseen points of the enumeration.

        Enumeration order is fixed a priori, so a batch is simply the
        next slice — the natural work unit for chunked parallel
        dispatch over the whole space.
        """
        if k < 1:
            raise SearchError(f"batch size must be >= 1, got {k}")
        self._require_bound()
        assert self._iterator is not None
        batch: list[Fault] = []
        for fault in self._iterator:
            if fault in self.history:
                continue
            self.history.add(fault)
            batch.append(fault)
            if len(batch) == k:
                break
        return batch
