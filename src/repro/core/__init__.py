"""The paper's primary contribution: fault spaces and fitness-guided search.

Public surface:

* :class:`~repro.core.faultspace.FaultSpace` / :class:`~repro.core.axis.Axis`
  — the hyperspace model of §2 (attribute vectors, Manhattan distance,
  D-vicinities, relative linear density).
* :func:`~repro.core.dsl.parse_fault_space` — the fault-space description
  language of Fig. 3/4.
* :mod:`~repro.core.search` — the exploration strategies: Algorithm 1
  (fitness-guided), random, exhaustive, and the abandoned genetic
  baseline.
* :class:`~repro.core.session.ExplorationSession` — the explorer driving
  a strategy against a target until a search target is met.
"""

from repro.core.axis import Axis
from repro.core.cache import ResultCache
from repro.core.dsl import parse_fault_space
from repro.core.fault import Fault
from repro.core.faultspace import FaultSpace, Subspace
from repro.core.impact import (
    CompositeImpact,
    CoverageImpact,
    CrashImpact,
    FailedTestImpact,
    HangImpact,
    ImpactMetric,
    InvariantImpact,
    ResourceLeakImpact,
    SlowdownImpact,
    measure_leak_baseline,
    measure_step_baseline,
    standard_impact,
)
from repro.core.runner import TargetRunner
from repro.core.search import (
    ExhaustiveSearch,
    FitnessGuidedSearch,
    GeneticSearch,
    RandomSearch,
    SearchStrategy,
)
from repro.core.session import ExplorationSession
from repro.core.results import ExecutedTest, ResultSet
from repro.core.targets import (
    CollectMatching,
    ImpactThreshold,
    IterationBudget,
    SearchTarget,
    TimeBudget,
)

__all__ = [
    "Axis",
    "CollectMatching",
    "CompositeImpact",
    "CoverageImpact",
    "CrashImpact",
    "ExecutedTest",
    "ExhaustiveSearch",
    "ExplorationSession",
    "FailedTestImpact",
    "Fault",
    "FaultSpace",
    "FitnessGuidedSearch",
    "GeneticSearch",
    "HangImpact",
    "ImpactMetric",
    "ImpactThreshold",
    "InvariantImpact",
    "IterationBudget",
    "RandomSearch",
    "ResultCache",
    "ResultSet",
    "SearchStrategy",
    "ResourceLeakImpact",
    "SearchTarget",
    "SlowdownImpact",
    "Subspace",
    "TargetRunner",
    "TimeBudget",
    "measure_leak_baseline",
    "measure_step_baseline",
    "parse_fault_space",
    "standard_impact",
]
