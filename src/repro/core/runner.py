"""Binding fault-space points to concrete test executions.

A :class:`TargetRunner` is the glue the node manager uses: it takes a
fault (named attribute vector), extracts the *workload* attribute
(``test``, selecting a test from the target's default suite), hands the
remaining attributes to the injector plugin, and executes the test under
the resulting plan.

The runner is deliberately the only place that knows the ``test``
attribute is special — the explorer and the strategies treat every axis
uniformly, exactly as AFEX treats its fault space as an opaque
hyperspace.

It is also the only place that consults the
:class:`~repro.core.cache.ResultCache`: every execution in the simulated
world is a pure function of ``(target, fault, trial, step budget)``, so
memoizing here makes duplicate executions free for every caller above —
sessions, cluster managers, campaigns, precision re-trials, and replay.
"""

from __future__ import annotations

from repro.core.cache import ResultCache
from repro.core.fault import Fault
from repro.errors import TargetError
from repro.injection.injector import FaultInjector
from repro.injection.libfi import LibFaultInjector
from repro.sim.libc import DEFAULT_STEP_BUDGET
from repro.sim.process import RunResult, run_test
from repro.sim.testsuite import Target

__all__ = ["TargetRunner", "injection_identity"]


def injection_identity(result: RunResult) -> tuple[str | None, str | None]:
    """``(function, errno name)`` of the fault that fired, if any.

    The simulator records the interposed function as the innermost
    frame of the injection stack; the errno comes from the plan's
    matching atomic fault.  This is the identity the ``sim.*`` metric
    series are labelled with.

    When the fired function has no matching atomic fault — a hooks-only
    or composed fault model, where the injection came from a world hook
    rather than an errno plan — the identity falls back to the hook's
    label (``disk:torn``, ``net:partition``...) instead of mislabelling
    the series with ``none``.
    """
    if not result.injected or not result.injection_stack:
        return None, None
    function = result.injection_stack[-1]
    for fault in result.plan.faults:
        if fault.function == function:
            return function, fault.errno.name
    for hook in getattr(result.plan, "hooks", ()):
        return function, hook.label()
    return function, None


class TargetRunner:
    """Executes fault-space points against a target's test suite."""

    def __init__(
        self,
        target: Target,
        injector: FaultInjector | None = None,
        step_budget: int = DEFAULT_STEP_BUDGET,
        test_attribute: str = "test",
        cache: ResultCache | None = None,
        metrics: "object | None" = None,
        tracer: "object | None" = None,
        provenance: bool = False,
    ) -> None:
        self.target = target
        self.injector = injector or LibFaultInjector()
        self.step_budget = step_budget
        self.test_attribute = test_attribute
        self.cache = cache
        #: when True, every execution records the call-level provenance
        #: log (the replay/explain path; off on the exploration path).
        self.provenance = provenance
        #: optional :class:`~repro.obs.metrics.MetricsRegistry`; when
        #: set, every execution reports ``runner.execute_seconds`` and
        #: the ``sim.injected_calls`` series by function/errno.
        self.metrics = metrics
        #: optional :class:`~repro.obs.trace.Tracer`; when set, every
        #: execution opens ``cache_lookup`` and ``execute`` spans (with
        #: an ``inject`` child when a fault fires) under the caller's
        #: current span.
        self.tracer = tracer
        if metrics is not None:
            # Resolve the per-execution series once: series lookup is a
            # string format plus dict probe, too costly to repeat on a
            # path the <5 % overhead budget covers.
            self._tests_counter = metrics.counter("runner.tests")
            self._execute_hist = metrics.histogram("runner.execute_seconds")
            self._injected_counters: dict[tuple[str, str], object] = {}
            if cache is not None:
                cache.bind_metrics(metrics)

    def _cache_key(self, fault: Fault, trial: int) -> str:
        # The injector participates in the identity: two injectors may
        # compile the same attribute dict into different plans.
        target_id = (
            f"{self.target.name}/{self.target.version}/{self.injector.name}"
        )
        return ResultCache.key_for(
            target_id, fault.subspace, fault.attributes, trial, self.step_budget
        )

    def __call__(self, fault: Fault, trial: int = 0) -> RunResult:
        key = None
        if self.cache is not None:
            if self.tracer is not None:
                with self.tracer.span("cache_lookup") as span:
                    key = self._cache_key(fault, trial)
                    cached = self.cache.get(key)
                    span.set(hit=cached is not None)
            else:
                key = self._cache_key(fault, trial)
                cached = self.cache.get(key)
            if cached is not None:
                return cached
        attributes = fault.as_dict()
        raw_test = attributes.pop(self.test_attribute, None)
        if raw_test is None:
            raise TargetError(
                f"fault {fault} has no {self.test_attribute!r} attribute; "
                "cannot select a workload test"
            )
        test_id = int(raw_test)  # type: ignore[arg-type]
        test = self.target.suite[test_id]
        plan = self.injector.plan_for(attributes)
        span = None
        if self.tracer is not None:
            span = self.tracer.span("execute", test=test_id)
            span.__enter__()
        try:
            if self.metrics is not None:
                clock = self.metrics.clock
                started = clock()
                result = run_test(
                    self.target, test, plan,
                    trial=trial, step_budget=self.step_budget,
                    provenance=self.provenance,
                )
                self._execute_hist.observe(clock() - started)
            else:
                result = run_test(
                    self.target, test, plan,
                    trial=trial, step_budget=self.step_budget,
                    provenance=self.provenance,
                )
            self._observe(result)
        finally:
            if span is not None:
                span.__exit__(None, None, None)
        if self.cache is not None and key is not None:
            self.cache.put(key, result)
        return result

    def _observe(self, result: RunResult) -> None:
        """Report the simulator-layer outcome of one fresh execution.

        Runs inside the ``execute`` span (when tracing), so the
        ``inject`` point event nests under it naturally.
        """
        if self.metrics is None and self.tracer is None:
            return
        function, errno = injection_identity(result)
        if self.metrics is not None:
            self._tests_counter.inc()
            if function is not None:
                key = (function, errno or "none")
                counter = self._injected_counters.get(key)
                if counter is None:
                    counter = self._injected_counters[key] = (
                        self.metrics.counter(
                            "sim.injected_calls", function=key[0],
                            errno=key[1],
                        )
                    )
                counter.inc()  # type: ignore[attr-defined]
        if self.tracer is not None and function is not None:
            # A point event: the simulator does not timestamp the
            # interception itself.
            with self.tracer.span(
                "inject", function=function, errno=errno or "none"
            ):
                pass

    def describe(self) -> str:
        return f"{self.target.describe()} via {self.injector.describe()}"
