"""Binding fault-space points to concrete test executions.

A :class:`TargetRunner` is the glue the node manager uses: it takes a
fault (named attribute vector), extracts the *workload* attribute
(``test``, selecting a test from the target's default suite), hands the
remaining attributes to the injector plugin, and executes the test under
the resulting plan.

The runner is deliberately the only place that knows the ``test``
attribute is special — the explorer and the strategies treat every axis
uniformly, exactly as AFEX treats its fault space as an opaque
hyperspace.

It is also the only place that consults the
:class:`~repro.core.cache.ResultCache`: every execution in the simulated
world is a pure function of ``(target, fault, trial, step budget)``, so
memoizing here makes duplicate executions free for every caller above —
sessions, cluster managers, campaigns, precision re-trials, and replay.
"""

from __future__ import annotations

from repro.core.cache import ResultCache
from repro.core.fault import Fault
from repro.errors import TargetError
from repro.injection.injector import FaultInjector
from repro.injection.libfi import LibFaultInjector
from repro.sim.libc import DEFAULT_STEP_BUDGET
from repro.sim.process import RunResult, run_test
from repro.sim.testsuite import Target

__all__ = ["TargetRunner"]


class TargetRunner:
    """Executes fault-space points against a target's test suite."""

    def __init__(
        self,
        target: Target,
        injector: FaultInjector | None = None,
        step_budget: int = DEFAULT_STEP_BUDGET,
        test_attribute: str = "test",
        cache: ResultCache | None = None,
    ) -> None:
        self.target = target
        self.injector = injector or LibFaultInjector()
        self.step_budget = step_budget
        self.test_attribute = test_attribute
        self.cache = cache

    def _cache_key(self, fault: Fault, trial: int) -> str:
        # The injector participates in the identity: two injectors may
        # compile the same attribute dict into different plans.
        target_id = (
            f"{self.target.name}/{self.target.version}/{self.injector.name}"
        )
        return ResultCache.key_for(
            target_id, fault.subspace, fault.attributes, trial, self.step_budget
        )

    def __call__(self, fault: Fault, trial: int = 0) -> RunResult:
        key = None
        if self.cache is not None:
            key = self._cache_key(fault, trial)
            cached = self.cache.get(key)
            if cached is not None:
                return cached
        attributes = fault.as_dict()
        raw_test = attributes.pop(self.test_attribute, None)
        if raw_test is None:
            raise TargetError(
                f"fault {fault} has no {self.test_attribute!r} attribute; "
                "cannot select a workload test"
            )
        test_id = int(raw_test)  # type: ignore[arg-type]
        test = self.target.suite[test_id]
        plan = self.injector.plan_for(attributes)
        result = run_test(
            self.target,
            test,
            plan,
            trial=trial,
            step_budget=self.step_budget,
        )
        if self.cache is not None and key is not None:
            self.cache.put(key, result)
        return result

    def describe(self) -> str:
        return f"{self.target.describe()} via {self.injector.describe()}"
