"""Search targets: when is an exploration session done (§6.2)?

"Search targets describ[e] what the user wants to search for, in the
form of thresholds on the impact metrics" — plus the operational stops
of §6.4 step 6: "after some specified amount of time, after a number of
tests executed, or after a given threshold is met in terms of code
coverage, bugs found, etc."

A target is consulted after every executed test with the running
session statistics; returning True stops the session.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections.abc import Callable
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.results import ExecutedTest

__all__ = [
    "SearchTarget",
    "IterationBudget",
    "TimeBudget",
    "ImpactThreshold",
    "CollectMatching",
    "AnyOf",
]


class SearchTarget(ABC):
    """Stopping criterion for an exploration session."""

    @abstractmethod
    def done(self, executed: list["ExecutedTest"]) -> bool:
        """Should the session stop, given everything executed so far?"""

    def describe(self) -> str:
        return type(self).__name__


class IterationBudget(SearchTarget):
    """Stop after N executed tests (the paper's "250 test iterations")."""

    def __init__(self, iterations: int) -> None:
        if iterations < 1:
            raise ValueError(f"iteration budget must be >= 1, got {iterations}")
        self.iterations = iterations

    def done(self, executed) -> bool:
        return len(executed) >= self.iterations

    def describe(self) -> str:
        return f"{self.iterations} iterations"


class TimeBudget(SearchTarget):
    """Stop after a wall-clock budget (the paper's 24-hour MySQL run)."""

    def __init__(self, seconds: float, clock: Callable[[], float] = time.monotonic) -> None:
        if seconds <= 0:
            raise ValueError(f"time budget must be positive, got {seconds}")
        self.seconds = seconds
        self._clock = clock
        self._started: float | None = None

    def done(self, executed) -> bool:
        now = self._clock()
        if self._started is None:
            self._started = now
        return now - self._started >= self.seconds

    def describe(self) -> str:
        return f"{self.seconds:.0f}s wall clock"


class ImpactThreshold(SearchTarget):
    """Stop once N tests with impact >= threshold have been found.

    E.g. the paper's "find 3 disk faults that hang the DBMS" becomes an
    impact threshold over a hang-scoring metric.
    """

    def __init__(self, count: int, min_impact: float) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.count = count
        self.min_impact = min_impact

    def done(self, executed) -> bool:
        hits = sum(1 for t in executed if t.impact >= self.min_impact)
        return hits >= self.count

    def describe(self) -> str:
        return f"{self.count} tests with impact >= {self.min_impact}"


class CollectMatching(SearchTarget):
    """Stop once ``expected`` distinct tests satisfying a predicate exist.

    This is the Table 6 target ("find all 28 malloc faults ... that
    cause ln and mv to fail"): the predicate inspects the executed test,
    and the session ends when the known number of matches is collected.
    """

    def __init__(
        self,
        predicate: Callable[["ExecutedTest"], bool],
        expected: int,
    ) -> None:
        if expected < 1:
            raise ValueError(f"expected count must be >= 1, got {expected}")
        self.predicate = predicate
        self.expected = expected

    def matches(self, executed) -> list["ExecutedTest"]:
        return [t for t in executed if self.predicate(t)]

    def done(self, executed) -> bool:
        return len(self.matches(executed)) >= self.expected

    def describe(self) -> str:
        return f"collect {self.expected} matching tests"


class AnyOf(SearchTarget):
    """Stop when any sub-target is met (e.g. budget OR threshold)."""

    def __init__(self, *subtargets: SearchTarget) -> None:
        if not subtargets:
            raise ValueError("AnyOf needs at least one sub-target")
        self.subtargets = subtargets

    def done(self, executed) -> bool:
        return any(t.done(executed) for t in self.subtargets)

    def describe(self) -> str:
        return " or ".join(t.describe() for t in self.subtargets)
