"""Per-axis sensitivity: the learned stand-in for linear density (§3).

"Given a value n, the sensitivity of X_i is computed by summing the
fitness value of the previous n test cases in which attribute α_i was
mutated."  Axes whose mutations recently produced high-fitness tests get
proportionally more future mutations — this is how the search aligns
itself with fault-space structure it cannot see a priori (the
Battleship player inferring ship orientation).

A smoothing floor keeps every axis at a non-zero probability, so the
search never permanently abandons a direction (mirroring how Qpriority
sampling never fully excludes low-fitness parents).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

from repro.errors import SearchError

__all__ = ["SensitivityTracker"]


class SensitivityTracker:
    """Sliding-window fitness accounting per fault-space axis."""

    def __init__(
        self,
        axis_names: Sequence[str],
        window: int = 20,
        floor: float = 0.05,
    ) -> None:
        if not axis_names:
            raise SearchError("sensitivity tracker needs at least one axis")
        if window < 1:
            raise SearchError(f"window must be >= 1, got {window}")
        if not 0.0 < floor < 1.0:
            raise SearchError(f"floor must be in (0, 1), got {floor}")
        self.axis_names = tuple(axis_names)
        self.window = window
        self.floor = floor
        self._history: dict[str, deque[float]] = {
            name: deque(maxlen=window) for name in self.axis_names
        }

    def record(self, axis_name: str, fitness: float) -> None:
        """Account one executed test whose ``axis_name`` was mutated."""
        history = self._history.get(axis_name)
        if history is None:
            raise SearchError(f"unknown axis {axis_name!r}")
        history.append(fitness)

    def sensitivity(self, axis_name: str) -> float:
        """Sum of the last ``window`` fitness values for this axis."""
        history = self._history.get(axis_name)
        if history is None:
            raise SearchError(f"unknown axis {axis_name!r}")
        return sum(history)

    def sensitivities(self) -> dict[str, float]:
        return {name: sum(h) for name, h in self._history.items()}

    def probabilities(self) -> dict[str, float]:
        """Normalized axis-selection distribution (Algorithm 1, line 5).

        Each axis receives ``floor / N`` probability mass
        unconditionally; the remainder is split proportionally to
        sensitivity.  Before any observations, the distribution is
        uniform.
        """
        raw = self.sensitivities()
        total = sum(raw.values())
        n = len(self.axis_names)
        if total <= 0.0:
            return {name: 1.0 / n for name in self.axis_names}
        base = self.floor / n
        scale = 1.0 - self.floor
        return {
            name: base + scale * raw[name] / total for name in self.axis_names
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v:.2f}" for k, v in self.sensitivities().items())
        return f"SensitivityTracker({parts})"
