"""Fault-space axes: totally ordered attribute value sets.

§2 of the paper: each fault attribute takes values from a finite set
``A_i`` with a total order ``≺_i``, which lays the values out along an
axis and lets faults be addressed by *index vectors*.  The order matters
enormously to the search: the Gaussian mutation assumes neighbouring
values are behaviourally similar, so orders should group related values
(the paper: "group POSIX functions by functionality").

:meth:`Axis.shuffled` produces the same value set under a random order —
the structure-destroying transformation behind the paper's Table 4
ablation.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence

from repro.errors import FaultSpaceError

__all__ = ["Axis"]


class Axis:
    """A named, totally ordered, finite set of attribute values."""

    __slots__ = ("name", "_values", "_index")

    def __init__(self, name: str, values: Iterable[object]) -> None:
        self.name = name
        self._values: tuple = tuple(values)
        if not self._values:
            raise FaultSpaceError(f"axis {name!r} must have at least one value")
        self._index: dict = {}
        for i, value in enumerate(self._values):
            if value in self._index:
                raise FaultSpaceError(
                    f"axis {name!r} has duplicate value {value!r}"
                )
            self._index[value] = i

    @classmethod
    def from_range(cls, name: str, low: int, high: int) -> "Axis":
        """An integer axis covering ``[low, high]`` inclusive."""
        if high < low:
            raise FaultSpaceError(f"axis {name!r}: empty range [{low}, {high}]")
        return cls(name, range(low, high + 1))

    @classmethod
    def from_subintervals(cls, name: str, low: int, high: int) -> "Axis":
        """An axis whose values are the sub-intervals of ``[low, high]``.

        Implements the DSL's ``< low , high >`` interval kind, which is
        "sampled for entire sub-intervals" (§6.2).  Values are
        ``(lo, hi)`` pairs in lexicographic order; there are
        ``n*(n+1)/2`` of them for a range of n integers.
        """
        if high < low:
            raise FaultSpaceError(f"axis {name!r}: empty range [{low}, {high}]")
        values = [
            (lo, hi)
            for lo in range(low, high + 1)
            for hi in range(lo, high + 1)
        ]
        return cls(name, values)

    # -- value/index mapping -------------------------------------------------

    @property
    def values(self) -> tuple:
        return self._values

    def index_of(self, value: object) -> int:
        index = self._index.get(value)
        if index is None:
            raise FaultSpaceError(f"axis {self.name!r} has no value {value!r}")
        return index

    def value_at(self, index: int) -> object:
        if not 0 <= index < len(self._values):
            raise FaultSpaceError(
                f"axis {self.name!r}: index {index} out of range "
                f"[0, {len(self._values) - 1}]"
            )
        return self._values[index]

    def __contains__(self, value: object) -> bool:
        return value in self._index

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        return iter(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Axis):
            return NotImplemented
        return self.name == other.name and self._values == other._values

    def __hash__(self) -> int:
        return hash((self.name, self._values))

    # -- transformations ----------------------------------------------------------

    def shuffled(self, rng: random.Random) -> "Axis":
        """Same values, random order: destroys structure along this axis."""
        values = list(self._values)
        rng.shuffle(values)
        return Axis(self.name, values)

    def restricted(self, keep: Sequence[object]) -> "Axis":
        """Trim the axis to ``keep`` (in this axis's order).

        This is the "domain knowledge" transformation of §7.5: a
        developer who knows the target only calls 9 libc functions trims
        the function axis accordingly.
        """
        keep_set = set(keep)
        unknown = keep_set - set(self._values)
        if unknown:
            raise FaultSpaceError(
                f"axis {self.name!r}: cannot keep unknown values {sorted(map(repr, unknown))}"
            )
        return Axis(self.name, [v for v in self._values if v in keep_set])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(repr(v) for v in self._values[:4])
        suffix = ", ..." if len(self._values) > 4 else ""
        return f"Axis({self.name!r}, [{preview}{suffix}] x{len(self._values)})"
