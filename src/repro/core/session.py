"""The exploration session: AFEX's generate → execute → evaluate loop.

This is the explorer of §6.1: it asks the strategy for the next
*generation* of faults, executes them through a runner (locally or via
the cluster substrate in :mod:`repro.cluster`), scores each outcome with
the impact metric (optionally weighted by an environment model, §7.5),
feeds the results back to the strategy, and stops when the search target
is met or the strategy exhausts the space.

``batch_size=1`` (the default) is the paper's single-process loop and
reproduces serial trajectories exactly: one proposal, one execution, one
observation per iteration.  ``batch_size=k`` dispatches ``k``
speculative candidates per round — sound for every bundled strategy
(Algorithm 1 is stochastic beam search; see
:meth:`~repro.core.search.base.SearchStrategy.propose_batch`) — and an
optional ``batch_runner`` executes each generation on a parallel fabric
(thread pool, process pool) instead of the in-process serial map.

Sessions are also **resumable**: with ``checkpoint_path`` /
``checkpoint_every`` set, the session snapshots its state between
rounds (see :mod:`repro.core.checkpoint`), and a session constructed
with ``resume_from`` replays the recorded history through the strategy
before going live, so a killed run continues byte-identically from its
last checkpoint.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from pathlib import Path

from repro.core.checkpoint import Checkpoint, CheckpointWriter, replay_history
from repro.core.faultspace import FaultSpace
from repro.core.fault import Fault
from repro.core.impact import ImpactMetric
from repro.core.results import ExecutedTest, ResultSet
from repro.core.search.base import SearchStrategy
from repro.core.targets import SearchTarget
from repro.errors import SearchError
from repro.quality.relevance import EnvironmentModel
from repro.sim.process import RunResult
from repro.util.rng import ensure_rng

__all__ = ["ExplorationSession"]

#: runner signature: fault -> run outcome.
Runner = Callable[[Fault], RunResult]

#: batch-runner signature: faults -> run outcomes, in the same order.
BatchRunner = Callable[[Sequence[Fault]], Sequence[RunResult]]


class ExplorationSession:
    """Drives one strategy against one target until the goal is met."""

    def __init__(
        self,
        runner: Runner,
        space: FaultSpace,
        metric: ImpactMetric,
        strategy: SearchStrategy,
        target: SearchTarget,
        rng: random.Random | int | None = None,
        environment: EnvironmentModel | None = None,
        on_test: Callable[[ExecutedTest], None] | None = None,
        batch_size: int = 1,
        batch_runner: BatchRunner | None = None,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 0,
        checkpoint_meta: dict[str, object] | None = None,
        resume_from: Checkpoint | None = None,
    ) -> None:
        if batch_size < 1:
            raise SearchError(f"batch size must be >= 1, got {batch_size}")
        self.runner = runner
        self.space = space
        self.metric = metric
        self.strategy = strategy
        self.target = target
        self.rng = ensure_rng(rng)
        self.environment = environment
        self.on_test = on_test
        self.batch_size = batch_size
        self.batch_runner = batch_runner
        self.resume_from = resume_from
        self.checkpointer = (
            CheckpointWriter(
                checkpoint_path, checkpoint_every, space, batch_size,
                meta=checkpoint_meta,
            )
            if checkpoint_path is not None else None
        )
        self.executed: list[ExecutedTest] = []
        self._started = False

    def run(self) -> ResultSet:
        """Run the session to completion and return the result set.

        Each round proposes up to ``batch_size`` candidates *before* any
        of their results are observed, executes the whole generation,
        then applies feedback in proposal order.  The stop criterion is
        consulted between rounds, so a session may overshoot its target
        by at most one batch — the §6.1 price of dispatch width (zero at
        the default ``batch_size=1``).
        """
        if self._started:
            raise SearchError(
                "a session cannot be run twice; create a new session "
                "(impact metrics and strategies carry per-session state)"
            )
        self._started = True
        self.strategy.bind(self.space, self.rng)
        if self.resume_from is not None:
            replay_history(
                self.resume_from, self.strategy, self.batch_size,
                self.space, self._account, rng=self.rng,
            )
        while not self.target.done(self.executed):
            batch = self.strategy.propose_batch(self.batch_size)
            if not batch:
                break  # space exhausted (or strategy gave up)
            self._execute_batch(batch)
            if self.checkpointer is not None:
                self.checkpointer.maybe_write(self.executed, self.rng)
        if self.checkpointer is not None:
            self.checkpointer.maybe_write(self.executed, self.rng, force=True)
        return ResultSet(self.executed)

    def _execute_batch(self, batch: list[Fault]) -> list[ExecutedTest]:
        """Execute one generation and account results in proposal order."""
        if self.batch_runner is not None and len(batch) > 1:
            results = list(self.batch_runner(batch))
            if len(results) != len(batch):
                raise SearchError(
                    f"batch runner returned {len(results)} results "
                    f"for {len(batch)} faults"
                )
        else:
            results = [self.runner(fault) for fault in batch]
        return [
            self._account(fault, result)
            for fault, result in zip(batch, results)
        ]

    def execute_one(self, fault: Fault) -> ExecutedTest:
        """Execute a single fault and account it (exposed for clusters)."""
        return self._account(fault, self.runner(fault))

    def _account(self, fault: Fault, result: RunResult) -> ExecutedTest:
        """Score, feed back, and record one executed fault."""
        impact = self.metric.score(result)
        if self.environment is not None:
            impact = self.environment.weight_impact(fault, impact)
        self.strategy.observe(fault, impact, result)
        executed = ExecutedTest(
            index=len(self.executed),
            fault=fault,
            result=result,
            impact=impact,
            fitness=impact,
        )
        self.executed.append(executed)
        if self.on_test is not None:
            self.on_test(executed)
        return executed

    @property
    def iterations(self) -> int:
        return len(self.executed)
