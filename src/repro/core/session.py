"""The exploration session: AFEX's generate → execute → evaluate loop.

This is the explorer of §6.1: it asks the strategy for the next
*generation* of faults, executes them through a runner (locally or via
the cluster substrate in :mod:`repro.cluster`), scores each outcome with
the impact metric (optionally weighted by an environment model, §7.5),
feeds the results back to the strategy, and stops when the search target
is met or the strategy exhausts the space.

``batch_size=1`` (the default) is the paper's single-process loop and
reproduces serial trajectories exactly: one proposal, one execution, one
observation per iteration.  ``batch_size=k`` dispatches ``k``
speculative candidates per round — sound for every bundled strategy
(Algorithm 1 is stochastic beam search; see
:meth:`~repro.core.search.base.SearchStrategy.propose_batch`) — and an
optional ``batch_runner`` executes each generation on a parallel fabric
(thread pool, process pool) instead of the in-process serial map.

Sessions are also **resumable**: with ``checkpoint_path`` /
``checkpoint_every`` set, the session snapshots its state between
rounds (see :mod:`repro.core.checkpoint`), and a session constructed
with ``resume_from`` replays the recorded history through the strategy
before going live, so a killed run continues byte-identically from its
last checkpoint.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from pathlib import Path

from repro.core.checkpoint import Checkpoint, CheckpointWriter, replay_history
from repro.core.faultspace import FaultSpace
from repro.core.fault import Fault
from repro.core.impact import ImpactMetric
from repro.core.results import ExecutedTest, ResultSet
from repro.core.search.base import SearchStrategy
from repro.core.targets import SearchTarget
from repro.errors import CheckpointError, SearchError
from repro.quality.online import OnlineClusters, QualityDelta
from repro.quality.relevance import EnvironmentModel
from repro.sim.process import RunResult
from repro.util.rng import ensure_rng

__all__ = ["ExplorationSession"]

#: runner signature: fault -> run outcome.
Runner = Callable[[Fault], RunResult]

#: batch-runner signature: faults -> run outcomes, in the same order.
BatchRunner = Callable[[Sequence[Fault]], Sequence[RunResult]]

#: impact scores are small non-negative reals; these buckets resolve
#: the paper's 0-10 composite range (and a tail for weighted metrics).
FITNESS_BUCKETS: tuple[float, ...] = (
    0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 15.0, 25.0, 50.0,
)


class ExplorationSession:
    """Drives one strategy against one target until the goal is met."""

    def __init__(
        self,
        runner: Runner,
        space: FaultSpace,
        metric: ImpactMetric,
        strategy: SearchStrategy,
        target: SearchTarget,
        rng: random.Random | int | None = None,
        environment: EnvironmentModel | None = None,
        on_test: Callable[[ExecutedTest], None] | None = None,
        batch_size: int = 1,
        batch_runner: BatchRunner | None = None,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 0,
        checkpoint_meta: dict[str, object] | None = None,
        resume_from: Checkpoint | None = None,
        metrics: "object | None" = None,
        tracer: "object | None" = None,
        online_quality: bool = False,
        cluster_distance: int = 1,
        similarity_threshold: float = 0.0,
    ) -> None:
        if batch_size < 1:
            raise SearchError(f"batch size must be >= 1, got {batch_size}")
        self.runner = runner
        self.space = space
        self.metric = metric
        self.strategy = strategy
        self.target = target
        self.rng = ensure_rng(rng)
        self.environment = environment
        self.on_test = on_test
        self.batch_size = batch_size
        self.batch_runner = batch_runner
        self.resume_from = resume_from
        #: optional :class:`~repro.obs.metrics.MetricsRegistry` — the
        #: session reports per-round fitness, round latency, and
        #: proposal throughput into it.
        self.metrics = metrics
        #: optional :class:`~repro.obs.trace.Tracer` — every round
        #: emits round/propose/dispatch/verdict spans.
        self.tracer = tracer
        #: the streaming §5 quality stage: every executed result is
        #: assigned to a redundancy cluster as it arrives, and the
        #: per-result novelty flows into :meth:`SearchStrategy.observe`
        #: (strategies act on it only when opted in via ``use_novelty``,
        #: so the default trajectory is untouched).
        self.quality: OnlineClusters | None = (
            OnlineClusters(
                max_distance=cluster_distance,
                similarity_threshold=similarity_threshold,
            )
            if online_quality else None
        )
        #: per-round cluster movement (populated when online quality is
        #: on; campaigns and the CLI surface it as live non-redundancy).
        self.quality_deltas: list[QualityDelta] = []
        self._quality_prev: dict[str, object] | None = None
        if self.quality is not None and metrics is not None:
            self.quality.bind_metrics(metrics)
        if metrics is not None:
            # Resolved once: series lookups are string formatting plus a
            # dict probe, which adds up on the per-test path the <5 %
            # overhead budget covers.
            self._tests_counter = metrics.counter("session.tests")
            self._fitness_hist = metrics.histogram(
                "session.fitness", boundaries=FITNESS_BUCKETS
            )
            self._rounds_counter = metrics.counter("session.rounds")
            self._round_hist = metrics.histogram("session.round_seconds")
            self._proposals_gauge = metrics.gauge("session.proposals_per_s")
        self.checkpointer = (
            CheckpointWriter(
                checkpoint_path, checkpoint_every, space, batch_size,
                meta=checkpoint_meta,
                meta_provider=(
                    self._checkpoint_meta
                    if metrics is not None or self.quality is not None
                    else None
                ),
            )
            if checkpoint_path is not None else None
        )
        self.executed: list[ExecutedTest] = []
        self._started = False
        self._round = 0

    def _obs_meta(self) -> dict[str, object]:
        """Checkpoint metadata: the metrics snapshot at a round boundary
        plus the trace schema version (recorded next to the checkpoint
        schema version so a resumed run knows both formats)."""
        from repro.obs.trace import TRACE_SCHEMA_VERSION

        return {
            "trace_schema": TRACE_SCHEMA_VERSION,
            "metrics": self.metrics.snapshot(),  # type: ignore[union-attr]
        }

    def _checkpoint_meta(self) -> dict[str, object]:
        """Dynamic checkpoint metadata: the obs snapshot plus the
        versioned cluster-state summary.  Both live in ``meta``, which
        the history digest does not cover — adding them cannot shift a
        resumed trajectory."""
        meta: dict[str, object] = {}
        if self.metrics is not None:
            meta.update(self._obs_meta())
        if self.quality is not None:
            meta["quality"] = self.quality.state_payload()
        return meta

    def run(self) -> ResultSet:
        """Run the session to completion and return the result set.

        Each round proposes up to ``batch_size`` candidates *before* any
        of their results are observed, executes the whole generation,
        then applies feedback in proposal order.  The stop criterion is
        consulted between rounds, so a session may overshoot its target
        by at most one batch — the §6.1 price of dispatch width (zero at
        the default ``batch_size=1``).
        """
        if self._started:
            raise SearchError(
                "a session cannot be run twice; create a new session "
                "(impact metrics and strategies carry per-session state)"
            )
        self._started = True
        self.strategy.bind(self.space, self.rng)
        if self.resume_from is not None:
            replay_history(
                self.resume_from, self.strategy, self.batch_size,
                self.space, self._account, rng=self.rng,
            )
            self._verify_quality_resume()
        while not self.target.done(self.executed):
            if self.tracer is None and self.metrics is None:
                batch = self.strategy.propose_batch(self.batch_size)
                if not batch:
                    break  # space exhausted (or strategy gave up)
                self._execute_batch(batch)
                self._publish_quality_delta()
            else:
                if not self._observed_round():
                    break
            if self.checkpointer is not None:
                self.checkpointer.maybe_write(self.executed, self.rng)
        if self.checkpointer is not None:
            self.checkpointer.maybe_write(self.executed, self.rng, force=True)
        return ResultSet(self.executed)

    def _observed_round(self) -> bool:
        """One instrumented round; returns False when the space is dry."""
        from repro.obs.trace import Tracer

        tracer = self.tracer or Tracer(sinks=[])
        clock = self.metrics.clock if self.metrics is not None else None
        started = clock() if clock is not None else 0.0
        self._round += 1
        with tracer.span("round", round=self._round,
                         batch_size=self.batch_size):
            with tracer.span("propose"):
                batch = self.strategy.propose_batch(self.batch_size)
            if not batch:
                return False
            with tracer.span("dispatch", requests=len(batch)):
                executed = self._execute_batch(batch)
            for test in executed:
                with tracer.span("verdict", index=test.index) as span:
                    span.set(impact=test.impact, failed=test.result.failed)
            if self.quality is not None:
                with tracer.span("quality") as span:
                    delta = self._publish_quality_delta()
                    if delta is not None:
                        span.set(**delta.as_dict())
        if self.metrics is not None and clock is not None:
            elapsed = clock() - started
            self._rounds_counter.inc()
            self._round_hist.observe(elapsed)
            if elapsed > 0:
                self._proposals_gauge.set(len(batch) / elapsed)
        return True

    def _execute_batch(self, batch: list[Fault]) -> list[ExecutedTest]:
        """Execute one generation and account results in proposal order."""
        if self.batch_runner is not None and len(batch) > 1:
            results = list(self.batch_runner(batch))
            if len(results) != len(batch):
                raise SearchError(
                    f"batch runner returned {len(results)} results "
                    f"for {len(batch)} faults"
                )
        else:
            results = [self.runner(fault) for fault in batch]
        return [
            self._account(fault, result)
            for fault, result in zip(batch, results)
        ]

    def execute_one(self, fault: Fault) -> ExecutedTest:
        """Execute a single fault and account it (exposed for clusters)."""
        return self._account(fault, self.runner(fault))

    def _account(self, fault: Fault, result: RunResult) -> ExecutedTest:
        """Score, feed back, and record one executed fault."""
        impact = self.metric.score(result)
        if self.environment is not None:
            impact = self.environment.weight_impact(fault, impact)
        if self.metrics is not None:
            self._tests_counter.inc()
            self._fitness_hist.observe(impact)
        if self.quality is not None:
            update = self.quality.add(result.injection_stack)
            self.strategy.observe(fault, impact, result,
                                  novelty=update.novelty)
        else:
            self.strategy.observe(fault, impact, result)
        executed = ExecutedTest(
            index=len(self.executed),
            fault=fault,
            result=result,
            impact=impact,
            fitness=impact,
        )
        self.executed.append(executed)
        if self.on_test is not None:
            self.on_test(executed)
        return executed

    def _publish_quality_delta(self) -> QualityDelta | None:
        """Record the round's cluster movement (online quality only)."""
        if self.quality is None:
            return None
        delta = self.quality.delta(
            len(self.quality_deltas) + 1, self._quality_prev
        )
        self._quality_prev = self.quality.stats()
        self.quality_deltas.append(delta)
        return delta

    def _verify_quality_resume(self) -> None:
        """Cross-check the replay-rebuilt cluster state against what the
        checkpoint recorded (replay re-feeds every recorded result
        through :meth:`_account`, so the engine must land exactly where
        it was)."""
        if self.quality is None or self.resume_from is None:
            return
        persisted = self.resume_from.meta.get("quality")
        if not isinstance(persisted, dict):
            return  # checkpoint predates online quality (or it was off)
        try:
            self.quality.verify_state(persisted)
        except ValueError as exc:
            raise CheckpointError(str(exc)) from None

    @property
    def iterations(self) -> int:
        return len(self.executed)
