"""The exploration session: AFEX's generate → execute → evaluate loop.

This is the single-process explorer (§6.1): it asks the strategy for the
next fault, executes it through a runner (locally or via the cluster
substrate in :mod:`repro.cluster`), scores the outcome with the impact
metric (optionally weighted by an environment model, §7.5), feeds the
result back to the strategy, and stops when the search target is met or
the strategy exhausts the space.
"""

from __future__ import annotations

import random
from collections.abc import Callable

from repro.core.faultspace import FaultSpace
from repro.core.fault import Fault
from repro.core.impact import ImpactMetric
from repro.core.results import ExecutedTest, ResultSet
from repro.core.search.base import SearchStrategy
from repro.core.targets import SearchTarget
from repro.errors import SearchError
from repro.quality.relevance import EnvironmentModel
from repro.sim.process import RunResult
from repro.util.rng import ensure_rng

__all__ = ["ExplorationSession"]

#: runner signature: fault -> run outcome.
Runner = Callable[[Fault], RunResult]


class ExplorationSession:
    """Drives one strategy against one target until the goal is met."""

    def __init__(
        self,
        runner: Runner,
        space: FaultSpace,
        metric: ImpactMetric,
        strategy: SearchStrategy,
        target: SearchTarget,
        rng: random.Random | int | None = None,
        environment: EnvironmentModel | None = None,
        on_test: Callable[[ExecutedTest], None] | None = None,
    ) -> None:
        self.runner = runner
        self.space = space
        self.metric = metric
        self.strategy = strategy
        self.target = target
        self.rng = ensure_rng(rng)
        self.environment = environment
        self.on_test = on_test
        self.executed: list[ExecutedTest] = []
        self._started = False

    def run(self) -> ResultSet:
        """Run the session to completion and return the result set."""
        if self._started:
            raise SearchError(
                "a session cannot be run twice; create a new session "
                "(impact metrics and strategies carry per-session state)"
            )
        self._started = True
        self.strategy.bind(self.space, self.rng)
        while not self.target.done(self.executed):
            fault = self.strategy.propose()
            if fault is None:
                break  # space exhausted (or strategy gave up)
            self.execute_one(fault)
        return ResultSet(self.executed)

    def execute_one(self, fault: Fault) -> ExecutedTest:
        """Execute a single fault and account it (exposed for clusters)."""
        result = self.runner(fault)
        impact = self.metric.score(result)
        if self.environment is not None:
            impact = self.environment.weight_impact(fault, impact)
        self.strategy.observe(fault, impact, result)
        executed = ExecutedTest(
            index=len(self.executed),
            fault=fault,
            result=result,
            impact=impact,
            fitness=impact,
        )
        self.executed.append(executed)
        if self.on_test is not None:
            self.on_test(executed)
        return executed

    @property
    def iterations(self) -> int:
        return len(self.executed)
