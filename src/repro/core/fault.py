"""Faults: points in a fault space.

A fault φ is a vector of attribute values ``<α_1, ..., α_N>`` (§2).  We
carry the attribute *names* with the values so a fault is
self-describing (injector plugins consume the named dict), and we tag
each fault with the label of the subspace it belongs to, since fault
spaces are unions of subspaces (the DSL's ``;``-separated subtypes).

Faults are immutable and hashable — they are keys in the History set
that prevents AFEX from re-executing tests (§3).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Fault"]


@dataclass(frozen=True)
class Fault:
    """An immutable point in a fault space."""

    #: label of the subspace this fault belongs to.
    subspace: str
    #: ordered (attribute name, value) pairs, aligned with the subspace axes.
    attributes: tuple[tuple[str, object], ...]

    @classmethod
    def of(cls, subspace: str = "", **attributes: object) -> "Fault":
        """Convenience constructor: ``Fault.of(test=3, function="read")``."""
        return cls(subspace, tuple(attributes.items()))

    def value(self, name: str) -> object:
        """The value of attribute ``name`` (raises KeyError if absent)."""
        for attr_name, attr_value in self.attributes:
            if attr_name == name:
                return attr_value
        raise KeyError(f"fault has no attribute {name!r}")

    def get(self, name: str, default: object = None) -> object:
        for attr_name, attr_value in self.attributes:
            if attr_name == name:
                return attr_value
        return default

    def as_dict(self) -> dict[str, object]:
        """Attribute dict, as consumed by injector plugins."""
        return dict(self.attributes)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.attributes)

    @property
    def values(self) -> tuple:
        return tuple(value for _, value in self.attributes)

    def replace(self, name: str, value: object) -> "Fault":
        """Clone with one attribute changed (Algorithm 1, lines 10-11)."""
        if name not in self.names:
            raise KeyError(f"fault has no attribute {name!r}")
        return Fault(
            self.subspace,
            tuple(
                (n, value if n == name else v) for n, v in self.attributes
            ),
        )

    def __str__(self) -> str:
        attrs = ", ".join(f"{n}={v!r}" for n, v in self.attributes)
        prefix = f"{self.subspace}:" if self.subspace else ""
        return f"<{prefix}{attrs}>"
