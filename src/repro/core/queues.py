"""The three collections of Algorithm 1: Qpriority, Qpending, History.

* :class:`PriorityQueue` — bounded queue of executed high-fitness tests.
  Parents are sampled with probability *proportional* to fitness; when
  full, a victim is dropped with probability *inversely* proportional to
  fitness, so the average fitness in the queue rises over time (§3).
  Retired and evicted tests flow into History.
* :class:`History` — every fault ever executed or enqueued, so AFEX
  never re-executes a test (§3: "it avoids re-executing any tests").
* Qpending is a plain FIFO (``collections.deque``) in the strategy; it
  needs no dedicated type.

Aging (§3): each candidate's fitness decays multiplicatively every
generation step; candidates below the retirement threshold can no longer
have offspring and are dropped.  This is what keeps the search from
orbiting a massive-impact outlier forever.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.fault import Fault
from repro.errors import SearchError

__all__ = ["Candidate", "PriorityQueue", "History"]

#: numerical floor so zero-fitness tests keep a tiny selection chance.
_EPSILON = 1e-9


@dataclass
class Candidate:
    """An executed test living in Qpriority."""

    fault: Fault
    impact: float
    fitness: float
    #: axis mutated to produce this test (None for the random seed batch).
    mutated_axis: str | None = None
    #: bookkeeping: how many aging steps this candidate has survived.
    age: int = 0


class PriorityQueue:
    """Bounded fitness-weighted pool of parent candidates.

    ``eviction`` selects the policy used when the queue is full:

    * ``"probabilistic"`` (the paper's): the victim is *sampled* with
      probability inversely proportional to fitness — low-fitness tests
      usually go, but nothing is guaranteed safe;
    * ``"strict-min"`` (ablation baseline): always drop the lowest
      fitness candidate — greedier, loses the diversity that keeps
      mediocre-but-differently-located parents alive.
    """

    def __init__(
        self,
        capacity: int,
        rng: random.Random,
        eviction: str = "probabilistic",
    ) -> None:
        if capacity < 1:
            raise SearchError(f"Qpriority capacity must be >= 1, got {capacity}")
        if eviction not in ("probabilistic", "strict-min"):
            raise SearchError(f"unknown eviction policy {eviction!r}")
        self.capacity = capacity
        self.eviction = eviction
        self._rng = rng
        self._items: list[Candidate] = []

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    @property
    def items(self) -> tuple[Candidate, ...]:
        return tuple(self._items)

    def add(self, candidate: Candidate) -> Candidate | None:
        """Insert; returns the evicted candidate if the queue was full."""
        evicted = None
        if len(self._items) >= self.capacity:
            evicted = self._evict()
        self._items.append(candidate)
        return evicted

    def _evict(self) -> Candidate:
        """Drop one candidate according to the configured policy."""
        if self.eviction == "strict-min":
            index = min(range(len(self._items)),
                        key=lambda i: self._items[i].fitness)
            return self._items.pop(index)
        weights = [1.0 / (c.fitness + _EPSILON) for c in self._items]
        index = self._weighted_index(weights)
        return self._items.pop(index)

    def sample_parent(self) -> Candidate:
        """Algorithm 1 lines 1-4: fitness-proportional parent selection."""
        if not self._items:
            raise SearchError("Qpriority is empty; cannot sample a parent")
        weights = [c.fitness + _EPSILON for c in self._items]
        return self._items[self._weighted_index(weights)]

    def _weighted_index(self, weights: list[float]) -> int:
        total = sum(weights)
        pick = self._rng.random() * total
        cumulative = 0.0
        for i, w in enumerate(weights):
            cumulative += w
            if pick <= cumulative:
                return i
        return len(weights) - 1

    def age(self, decay: float, retire_threshold: float) -> list[Candidate]:
        """One aging step: decay every fitness; retire the exhausted.

        Returns the retired candidates (they go into History — they were
        executed, so they must never run again, but they can no longer
        be parents).
        """
        if not 0.0 < decay <= 1.0:
            raise SearchError(f"aging decay must be in (0, 1], got {decay}")
        survivors: list[Candidate] = []
        retired: list[Candidate] = []
        for candidate in self._items:
            candidate.fitness *= decay
            candidate.age += 1
            if candidate.fitness < retire_threshold and candidate.age > 1:
                retired.append(candidate)
            else:
                survivors.append(candidate)
        self._items = survivors
        return retired

    def mean_fitness(self) -> float:
        if not self._items:
            return 0.0
        return sum(c.fitness for c in self._items) / len(self._items)

    def best(self) -> Candidate | None:
        if not self._items:
            return None
        return max(self._items, key=lambda c: c.fitness)


@dataclass
class History:
    """Every fault executed or scheduled — the dedup set of Algorithm 1."""

    _seen: set[Fault] = field(default_factory=set)

    def add(self, fault: Fault) -> None:
        self._seen.add(fault)

    def __contains__(self, fault: Fault) -> bool:
        return fault in self._seen

    def __len__(self) -> int:
        return len(self._seen)
