"""Fault spaces: unions of hyperrectangular subspaces with holes.

Implements §2 of the paper: a fault space Φ is spanned by totally
ordered axes (Φ = X₁ × ... × X_N), may be a union of such products (the
DSL's ``;``-separated subspaces), and may contain *holes* — invalid
attribute combinations, expressed here as a validity predicate.

Also implements the analysis tools of §2:

* Manhattan distance δ between faults (within one subspace);
* D-vicinities (all faults within distance D);
* the relative linear density ρ — the structure metric that quantifies
  how rewarding it is to walk along one axis versus a random direction.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Callable, Iterator, Sequence
from math import prod

from repro.core.axis import Axis
from repro.core.fault import Fault
from repro.errors import FaultSpaceError
from repro.util.rng import ensure_rng

__all__ = ["Subspace", "FaultSpace"]


class Subspace:
    """One hyperrectangle: a labelled Cartesian product of axes."""

    def __init__(
        self,
        label: str,
        axes: Sequence[Axis],
        valid: Callable[[dict[str, object]], bool] | None = None,
    ) -> None:
        if not axes:
            raise FaultSpaceError(f"subspace {label!r} needs at least one axis")
        names = [a.name for a in axes]
        if len(set(names)) != len(names):
            raise FaultSpaceError(
                f"subspace {label!r} has duplicate axis names: {names}"
            )
        self.label = label
        self.axes: tuple[Axis, ...] = tuple(axes)
        self._axes_by_name = {a.name: a for a in self.axes}
        #: validity predicate; points where it returns False are holes.
        self.valid = valid

    # -- geometry ------------------------------------------------------------

    @property
    def axis_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.axes)

    def axis(self, name: str) -> Axis:
        axis = self._axes_by_name.get(name)
        if axis is None:
            raise FaultSpaceError(
                f"subspace {self.label!r} has no axis {name!r}"
            )
        return axis

    def size(self) -> int:
        """Number of grid points (holes included — they are addressable)."""
        return prod(len(a) for a in self.axes)

    # -- fault <-> index vector ----------------------------------------------------

    def fault_at(self, indices: Sequence[int]) -> Fault:
        if len(indices) != len(self.axes):
            raise FaultSpaceError(
                f"subspace {self.label!r} expects {len(self.axes)} indices, "
                f"got {len(indices)}"
            )
        return Fault(
            self.label,
            tuple(
                (axis.name, axis.value_at(i))
                for axis, i in zip(self.axes, indices)
            ),
        )

    def indices_of(self, fault: Fault) -> tuple[int, ...]:
        if fault.subspace != self.label:
            raise FaultSpaceError(
                f"fault belongs to subspace {fault.subspace!r}, "
                f"not {self.label!r}"
            )
        return tuple(
            self.axis(name).index_of(value) for name, value in fault.attributes
        )

    def contains(self, fault: Fault) -> bool:
        if fault.subspace != self.label:
            return False
        if fault.names != self.axis_names:
            return False
        for name, value in fault.attributes:
            if value not in self._axes_by_name[name]:
                return False
        return not self.is_hole(fault)

    def is_hole(self, fault: Fault) -> bool:
        if self.valid is None:
            return False
        return not self.valid(fault.as_dict())

    # -- sampling / enumeration -------------------------------------------------------

    def random_fault(self, rng: random.Random, max_tries: int = 256) -> Fault:
        """Uniformly sample a valid fault (rejection-sampling over holes)."""
        for _ in range(max_tries):
            fault = self.fault_at([rng.randrange(len(a)) for a in self.axes])
            if not self.is_hole(fault):
                return fault
        raise FaultSpaceError(
            f"subspace {self.label!r}: could not sample a valid fault in "
            f"{max_tries} tries — is the space almost entirely holes?"
        )

    def enumerate(self) -> Iterator[Fault]:
        """All valid faults, in row-major axis order."""
        for indices in itertools.product(*(range(len(a)) for a in self.axes)):
            fault = self.fault_at(indices)
            if not self.is_hole(fault):
                yield fault

    # -- transformations ---------------------------------------------------------------

    def with_axis(self, axis: Axis) -> "Subspace":
        """Replace the axis with the same name (shuffle/trim helpers)."""
        if axis.name not in self._axes_by_name:
            raise FaultSpaceError(
                f"subspace {self.label!r} has no axis {axis.name!r}"
            )
        return Subspace(
            self.label,
            tuple(axis if a.name == axis.name else a for a in self.axes),
            self.valid,
        )


class FaultSpace:
    """A union of subspaces — the full Φ the explorer navigates."""

    def __init__(self, subspaces: Sequence[Subspace]) -> None:
        if not subspaces:
            raise FaultSpaceError("a fault space needs at least one subspace")
        labels = [s.label for s in subspaces]
        if len(set(labels)) != len(labels):
            raise FaultSpaceError(f"duplicate subspace labels: {labels}")
        self.subspaces: tuple[Subspace, ...] = tuple(subspaces)
        self._by_label = {s.label: s for s in self.subspaces}

    @classmethod
    def product(
        cls,
        label: str = "",
        valid: Callable[[dict[str, object]], bool] | None = None,
        **axes: Sequence[object],
    ) -> "FaultSpace":
        """Single-subspace space from keyword axes.

        >>> space = FaultSpace.product(test=range(1, 30),
        ...                            function=["malloc", "read"],
        ...                            call=[0, 1, 2])
        """
        built = [Axis(name, values) for name, values in axes.items()]
        return cls([Subspace(label, built, valid)])

    # -- structure -----------------------------------------------------------

    def subspace(self, label: str) -> Subspace:
        sub = self._by_label.get(label)
        if sub is None:
            raise FaultSpaceError(f"no subspace labelled {label!r}")
        return sub

    def subspace_of(self, fault: Fault) -> Subspace:
        return self.subspace(fault.subspace)

    def size(self) -> int:
        return sum(s.size() for s in self.subspaces)

    def contains(self, fault: Fault) -> bool:
        sub = self._by_label.get(fault.subspace)
        return sub is not None and sub.contains(fault)

    def axis_names(self) -> tuple[str, ...]:
        """Union of axis names across subspaces (stable order)."""
        seen: dict[str, None] = {}
        for sub in self.subspaces:
            for name in sub.axis_names:
                seen.setdefault(name, None)
        return tuple(seen)

    # -- sampling / enumeration ------------------------------------------------

    def random_fault(self, rng: random.Random | int | None = None) -> Fault:
        """Sample uniformly across the union (subspaces weighted by size)."""
        rng = ensure_rng(rng)
        total = self.size()
        pick = rng.randrange(total)
        for sub in self.subspaces:
            if pick < sub.size():
                return sub.random_fault(rng)
            pick -= sub.size()
        raise AssertionError("unreachable")  # pragma: no cover

    def enumerate(self) -> Iterator[Fault]:
        for sub in self.subspaces:
            yield from sub.enumerate()

    # -- distance and vicinity ------------------------------------------------------

    def distance(self, a: Fault, b: Fault) -> int:
        """Manhattan distance δ(a, b); defined within one subspace (§2)."""
        if a.subspace != b.subspace:
            raise FaultSpaceError(
                "Manhattan distance is defined within a single subspace; "
                f"got {a.subspace!r} and {b.subspace!r}"
            )
        sub = self.subspace_of(a)
        ia, ib = sub.indices_of(a), sub.indices_of(b)
        return sum(abs(x - y) for x, y in zip(ia, ib))

    def vicinity(self, fault: Fault, radius: int) -> Iterator[Fault]:
        """All valid faults within Manhattan distance ``radius`` of ``fault``.

        The D-vicinity of §2, including ``fault`` itself.
        """
        if radius < 0:
            raise FaultSpaceError("vicinity radius must be non-negative")
        sub = self.subspace_of(fault)
        center = sub.indices_of(fault)
        ranges = []
        for axis, c in zip(sub.axes, center):
            low = max(0, c - radius)
            high = min(len(axis) - 1, c + radius)
            ranges.append(range(low, high + 1))
        for indices in itertools.product(*ranges):
            if sum(abs(i - c) for i, c in zip(indices, center)) <= radius:
                candidate = sub.fault_at(indices)
                if not sub.is_hole(candidate):
                    yield candidate

    def relative_linear_density(
        self,
        fault: Fault,
        axis_name: str,
        impact: Callable[[Fault], float],
        radius: int | None = None,
    ) -> float:
        """The structure metric ρ of §2.

        ρ = (average impact along the ``axis_name`` line through
        ``fault``) / (average impact over the whole space — or, when
        ``radius`` is given, over the D-vicinity of ``fault``, which is
        what's practical for large spaces).

        ρ > 1 means walking along this axis encounters more high-impact
        faults than a random direction.
        """
        sub = self.subspace_of(fault)
        axis = sub.axis(axis_name)
        center = sub.indices_of(fault)
        axis_pos = sub.axis_names.index(axis_name)

        line: list[Fault] = []
        for i in range(len(axis)):
            indices = list(center)
            indices[axis_pos] = i
            candidate = sub.fault_at(indices)
            if not sub.is_hole(candidate):
                line.append(candidate)
        if radius is not None:
            line = [f for f in line if self.distance(fault, f) <= radius]

        if radius is None:
            reference: Iterator[Fault] = sub.enumerate()
        else:
            reference = self.vicinity(fault, radius)

        line_impacts = [impact(f) for f in line]
        reference_impacts = [impact(f) for f in reference]
        if not line_impacts or not reference_impacts:
            return 0.0
        reference_avg = sum(reference_impacts) / len(reference_impacts)
        if reference_avg == 0:
            return 0.0
        return (sum(line_impacts) / len(line_impacts)) / reference_avg

    # -- transformations ----------------------------------------------------------------

    def shuffle_axis(self, axis_name: str, rng: random.Random | int | None) -> "FaultSpace":
        """Shuffle ``axis_name``'s value order in every subspace having it.

        The Table 4 ablation: the *set* of faults is unchanged, but any
        structure along that axis is destroyed, so locality-exploiting
        search degrades toward random along it.
        """
        rng = ensure_rng(rng)
        replaced = False
        new_subspaces = []
        for sub in self.subspaces:
            if axis_name in sub.axis_names:
                new_subspaces.append(sub.with_axis(sub.axis(axis_name).shuffled(rng)))
                replaced = True
            else:
                new_subspaces.append(sub)
        if not replaced:
            raise FaultSpaceError(f"no subspace has an axis named {axis_name!r}")
        return FaultSpace(new_subspaces)

    def restrict_axis(self, axis_name: str, keep: Sequence[object]) -> "FaultSpace":
        """Trim an axis to a known-relevant subset (§7.5 domain knowledge)."""
        replaced = False
        new_subspaces = []
        for sub in self.subspaces:
            if axis_name in sub.axis_names:
                new_subspaces.append(
                    sub.with_axis(sub.axis(axis_name).restricted(keep))
                )
                replaced = True
            else:
                new_subspaces.append(sub)
        if not replaced:
            raise FaultSpaceError(f"no subspace has an axis named {axis_name!r}")
        return FaultSpace(new_subspaces)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{s.label or '<anon>'}:{'x'.join(str(len(a)) for a in s.axes)}"
            for s in self.subspaces
        )
        return f"FaultSpace({parts}; {self.size()} faults)"
