"""Fault-injection substrate: plans, injectors, profiles, callsite analysis.

This package plays the role LFI [16] plays in the paper: it defines the
injectable fault model (fail the *n*-th call to libc function *f* with a
given errno/return value), applies injection plans to the simulated C
library, and provides the profiling machinery (an ``ltrace``-like tracer
plus a callsite analyzer) used to construct fault-space descriptions
mechanically, mirroring the paper's "Fault Space Definition Methodology"
(§7).
"""

from repro.injection.plan import AtomicFault, InjectionPlan
from repro.injection.injector import FaultInjector, InjectorRegistry
from repro.injection.libfi import (
    LibFaultInjector,
    MultiLibFaultInjector,
    atomic_for,
)
from repro.injection.profiles import FaultProfile, fault_profile, profiled_functions

__all__ = [
    "AtomicFault",
    "FaultInjector",
    "FaultProfile",
    "InjectionPlan",
    "InjectorRegistry",
    "LibFaultInjector",
    "MultiLibFaultInjector",
    "atomic_for",
    "fault_profile",
    "profiled_functions",
]
