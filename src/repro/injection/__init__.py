"""Fault-injection substrate: plans, injectors, profiles, callsite analysis.

This package plays the role LFI [16] plays in the paper: it defines the
injectable fault model (fail the *n*-th call to libc function *f* with a
given errno/return value), applies injection plans to the simulated C
library, and provides the profiling machinery (an ``ltrace``-like tracer
plus a callsite analyzer) used to construct fault-space descriptions
mechanically, mirroring the paper's "Fault Space Definition Methodology"
(§7).
"""

from repro.injection.plan import AtomicFault, InjectionPlan
from repro.injection.injector import FaultInjector, InjectorRegistry
from repro.injection.libfi import (
    LibFaultInjector,
    MultiLibFaultInjector,
    atomic_for,
)
from repro.injection.profiles import FaultProfile, fault_profile, profiled_functions
from repro.injection.models import (
    FaultModel,
    ModelInjector,
    ScenarioPlan,
    WorldHook,
    canonical_spec,
    compose_models,
    model_by_name,
    model_injector,
    model_space,
    register_model,
    registered_models,
)

__all__ = [
    "AtomicFault",
    "FaultInjector",
    "FaultModel",
    "FaultProfile",
    "InjectionPlan",
    "InjectorRegistry",
    "LibFaultInjector",
    "ModelInjector",
    "MultiLibFaultInjector",
    "ScenarioPlan",
    "WorldHook",
    "atomic_for",
    "canonical_spec",
    "compose_models",
    "fault_profile",
    "model_by_name",
    "model_injector",
    "model_space",
    "profiled_functions",
    "register_model",
    "registered_models",
]
