"""Fault profiles for simulated libc functions.

The paper obtains, for each libc function, "its possible error return
values and associated errno codes" by running LFI's callsite analyzer on
``libc.so`` (§7).  We ship the equivalent knowledge as a static table:
for every function the simulated library implements, the plausible
(errno, retval) failure pairs.  The callsite analyzer
(:mod:`repro.injection.callsite`) combines these profiles with observed
call counts to emit fault-space descriptors.

Retval conventions follow C: ``0`` stands for NULL for pointer-returning
functions, ``-1`` for int-returning syscall wrappers, ``EOF``/``-1`` for
stdio character functions, and so on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InjectionError
from repro.sim.errnos import Errno

__all__ = ["FaultProfile", "fault_profile", "profiled_functions", "default_fault"]


@dataclass(frozen=True)
class FaultProfile:
    """The injectable failure modes of one library function."""

    function: str
    #: (errno, retval) pairs this function can plausibly fail with.
    errors: tuple[tuple[Errno, int], ...]
    #: coarse functional category, used for ordering the function axis
    #: (the paper groups POSIX functions "by functionality: file,
    #: networking, memory, etc." when picking a total order, §2).
    category: str

    def default_error(self) -> tuple[Errno, int]:
        """The most representative failure mode (first in the profile)."""
        return self.errors[0]

    def errnos(self) -> tuple[Errno, ...]:
        return tuple(e for e, _ in self.errors)


def _p(function: str, category: str, *errors: tuple[Errno, int]) -> FaultProfile:
    return FaultProfile(function, tuple(errors), category)


# Categories order the function axis: related functions are adjacent, so
# the Gaussian mutation's locality assumption (§3) holds, exactly as the
# paper recommends when choosing the total order for each attribute set.
_PROFILES: tuple[FaultProfile, ...] = (
    # memory
    _p("malloc", "memory", (Errno.ENOMEM, 0)),
    _p("calloc", "memory", (Errno.ENOMEM, 0)),
    _p("realloc", "memory", (Errno.ENOMEM, 0)),
    _p("strdup", "memory", (Errno.ENOMEM, 0)),
    # file descriptors
    _p(
        "open",
        "file",
        (Errno.ENOENT, -1),
        (Errno.EACCES, -1),
        (Errno.EMFILE, -1),
        (Errno.ENOSPC, -1),
        (Errno.EINTR, -1),
    ),
    _p(
        "close",
        "file",
        (Errno.EIO, -1),
        (Errno.EINTR, -1),
        (Errno.EBADF, -1),
    ),
    _p(
        "read",
        "file",
        (Errno.EINTR, -1),
        (Errno.EIO, -1),
        (Errno.EAGAIN, -1),
        (Errno.EBADF, -1),
    ),
    _p(
        "write",
        "file",
        (Errno.ENOSPC, -1),
        (Errno.EINTR, -1),
        (Errno.EIO, -1),
        (Errno.EFBIG, -1),
        (Errno.EPIPE, -1),
    ),
    _p("lseek", "file", (Errno.EINVAL, -1), (Errno.ESPIPE, -1)),
    _p("fsync", "file", (Errno.EIO, -1), (Errno.EINVAL, -1)),
    _p("fcntl", "file", (Errno.EINVAL, -1), (Errno.EMFILE, -1)),
    _p("pipe", "file", (Errno.EMFILE, -1), (Errno.ENFILE, -1)),
    # stdio streams
    _p(
        "fopen",
        "stdio",
        (Errno.ENOENT, 0),
        (Errno.EACCES, 0),
        (Errno.EMFILE, 0),
        (Errno.ENOMEM, 0),
    ),
    _p("fopen64", "stdio", (Errno.ENOENT, 0), (Errno.EMFILE, 0)),
    _p("fclose", "stdio", (Errno.EIO, -1), (Errno.ENOSPC, -1)),
    _p("fgets", "stdio", (Errno.EIO, 0), (Errno.EINTR, 0)),
    _p("putc", "stdio", (Errno.EIO, -1), (Errno.ENOSPC, -1)),
    _p("fputs", "stdio", (Errno.EIO, -1), (Errno.ENOSPC, -1)),
    _p("fflush", "stdio", (Errno.EIO, -1), (Errno.ENOSPC, -1)),
    _p("ferror", "stdio", (Errno.OK, 1)),
    # metadata / directories
    _p("stat", "dir", (Errno.ENOENT, -1), (Errno.EACCES, -1), (Errno.ELOOP, -1)),
    _p("opendir", "dir", (Errno.ENOENT, 0), (Errno.EACCES, 0), (Errno.EMFILE, 0)),
    _p("readdir", "dir", (Errno.EBADF, 0)),
    _p("closedir", "dir", (Errno.EBADF, -1)),
    _p("chdir", "dir", (Errno.ENOENT, -1), (Errno.EACCES, -1)),
    _p("getcwd", "dir", (Errno.ERANGE, 0), (Errno.ENOMEM, 0)),
    _p("mkdir", "dir", (Errno.EEXIST, -1), (Errno.ENOSPC, -1), (Errno.EACCES, -1)),
    _p("rmdir", "dir", (Errno.ENOTEMPTY, -1), (Errno.EBUSY, -1)),
    _p("unlink", "dir", (Errno.ENOENT, -1), (Errno.EACCES, -1), (Errno.EBUSY, -1)),
    _p("rename", "dir", (Errno.EXDEV, -1), (Errno.EACCES, -1), (Errno.ENOSPC, -1)),
    _p("link", "dir", (Errno.EEXIST, -1), (Errno.EXDEV, -1), (Errno.EMLINK, -1)),
    # process / limits / misc
    _p("wait", "process", (Errno.ECHILD, -1), (Errno.EINTR, -1)),
    _p("getrlimit", "process", (Errno.EINVAL, -1), (Errno.EFAULT, -1)),
    _p("setrlimit", "process", (Errno.EINVAL, -1), (Errno.EPERM, -1)),
    _p("clock_gettime", "process", (Errno.EINVAL, -1), (Errno.EFAULT, -1)),
    _p("setlocale", "locale", (Errno.ENOENT, 0)),
    _p("bindtextdomain", "locale", (Errno.ENOMEM, 0)),
    _p("textdomain", "locale", (Errno.ENOMEM, 0)),
    _p("strtol", "string", (Errno.ERANGE, 0), (Errno.EINVAL, 0)),
    # networking (used by MiniDB / MiniHttpd / DocStore)
    _p("socket", "net", (Errno.EMFILE, -1), (Errno.ENOMEM, -1)),
    _p("bind", "net", (Errno.EACCES, -1), (Errno.EINVAL, -1)),
    _p("listen", "net", (Errno.EINVAL, -1)),
    _p("accept", "net", (Errno.EINTR, -1), (Errno.ECONNRESET, -1), (Errno.EMFILE, -1)),
    _p("connect", "net", (Errno.ETIMEDOUT, -1), (Errno.ECONNRESET, -1), (Errno.EINTR, -1)),
    _p("recv", "net", (Errno.EINTR, -1), (Errno.ECONNRESET, -1), (Errno.EAGAIN, -1)),
    _p("send", "net", (Errno.EPIPE, -1), (Errno.EINTR, -1), (Errno.ECONNRESET, -1)),
)

_BY_NAME: dict[str, FaultProfile] = {p.function: p for p in _PROFILES}


def fault_profile(function: str) -> FaultProfile:
    """The fault profile for ``function`` (raises for unknown functions)."""
    profile = _BY_NAME.get(function)
    if profile is None:
        raise InjectionError(f"no fault profile for libc function {function!r}")
    return profile


def profiled_functions(category: str | None = None) -> tuple[str, ...]:
    """All profiled function names, optionally filtered by category.

    The returned order groups functions by category (memory, file,
    stdio, dir, ...), which is the total order used for the function
    axis of fault spaces.
    """
    if category is None:
        return tuple(p.function for p in _PROFILES)
    return tuple(p.function for p in _PROFILES if p.category == category)


def default_fault(function: str) -> tuple[Errno, int]:
    """The representative (errno, retval) failure for ``function``."""
    return fault_profile(function).default_error()
