"""Injection plans: which library calls fail, and how.

An :class:`AtomicFault` is one injectable failure — the paper's
``<function, callNumber, errno, retval>`` tuple (§2, Fig. 5).  An
:class:`InjectionPlan` is a *scenario*: a set of atomic faults applied
together during one test execution (the prototype's node manager "breaks
the scenario down into atomic faults", §6).  The evaluation uses
single-fault scenarios, but the plan type supports multi-fault scenarios
exactly as the paper's language does.

The textual format round-trips the paper's Fig. 5 example::

    function malloc errno ENOMEM retval 0 callNumber 23
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InjectionError
from repro.sim.errnos import Errno

__all__ = ["AtomicFault", "InjectionPlan"]


@dataclass(frozen=True)
class AtomicFault:
    """One injectable library-call failure.

    ``call_number`` is 1-based: ``call_number=5`` fails the fifth call
    the program makes to ``function``.  Three trigger shapes exist:

    * the default fails exactly one call;
    * ``persistent=True`` also fails every later call (LFI's "trigger
      once, fail forever" mode);
    * ``until=N`` fails every call in ``[call_number, N]`` — the range
      trigger behind the DSL's ``< lo , hi >`` sub-interval axes (§6.2).
    """

    function: str
    call_number: int
    errno: Errno
    retval: int
    persistent: bool = False
    until: int | None = None

    def __post_init__(self) -> None:
        if self.call_number < 1:
            raise InjectionError(
                f"call_number must be >= 1, got {self.call_number}"
            )
        if not self.function:
            raise InjectionError("function name must be non-empty")
        if self.until is not None:
            if self.until < self.call_number:
                raise InjectionError(
                    f"until={self.until} precedes callNumber={self.call_number}"
                )
            if self.persistent:
                raise InjectionError("choose either persistent or until, not both")

    def fires_at(self, call_number: int) -> bool:
        """Does this fault fire at the given call cardinality?"""
        if self.persistent:
            return call_number >= self.call_number
        if self.until is not None:
            return self.call_number <= call_number <= self.until
        return call_number == self.call_number

    def format(self) -> str:
        """Render in the Fig. 5 scenario syntax."""
        text = (
            f"function {self.function} errno {self.errno.name} "
            f"retval {self.retval} callNumber {self.call_number}"
        )
        if self.persistent:
            text += " persistent 1"
        if self.until is not None:
            text += f" callUntil {self.until}"
        return text

    @classmethod
    def parse(cls, text: str) -> "AtomicFault":
        """Parse the Fig. 5 scenario syntax (one atomic fault)."""
        tokens = text.split()
        if len(tokens) % 2 != 0:
            raise InjectionError(f"odd token count in fault description: {text!r}")
        fields = dict(zip(tokens[::2], tokens[1::2]))
        required = {"function", "errno", "retval", "callNumber"}
        missing = required - fields.keys()
        if missing:
            raise InjectionError(
                f"fault description missing fields {sorted(missing)}: {text!r}"
            )
        try:
            errno = Errno.from_name(fields["errno"])
        except ValueError as exc:
            raise InjectionError(str(exc)) from None
        try:
            retval = int(fields["retval"])
            call_number = int(fields["callNumber"])
            until = int(fields["callUntil"]) if "callUntil" in fields else None
        except ValueError as exc:
            raise InjectionError(f"bad numeric field in {text!r}: {exc}") from None
        persistent = fields.get("persistent", "0") not in ("0", "false", "")
        return cls(fields["function"], call_number, errno, retval, persistent,
                   until)


@dataclass(frozen=True)
class InjectionPlan:
    """A scenario: the set of atomic faults injected during one test."""

    faults: tuple[AtomicFault, ...]

    @classmethod
    def single(
        cls,
        function: str,
        call_number: int,
        errno: Errno,
        retval: int,
        persistent: bool = False,
    ) -> "InjectionPlan":
        """The common case: a plan with exactly one atomic fault."""
        return cls((AtomicFault(function, call_number, errno, retval, persistent),))

    @classmethod
    def none(cls) -> "InjectionPlan":
        """An empty plan — run the test without injecting anything."""
        return cls(())

    @property
    def is_empty(self) -> bool:
        return not self.faults

    def lookup(self, function: str, call_number: int) -> AtomicFault | None:
        """The fault (if any) that fires for this call."""
        for fault in self.faults:
            if fault.function == function and fault.fires_at(call_number):
                return fault
        return None

    def functions(self) -> frozenset[str]:
        return frozenset(f.function for f in self.faults)

    def format(self) -> str:
        """Multi-line Fig. 5 format, one atomic fault per line."""
        return "\n".join(f.format() for f in self.faults)

    @classmethod
    def parse(cls, text: str) -> "InjectionPlan":
        """Parse one atomic fault per non-empty line."""
        faults = tuple(
            AtomicFault.parse(line)
            for line in text.splitlines()
            if line.strip() and not line.strip().startswith("#")
        )
        return cls(faults)

    def __len__(self) -> int:
        return len(self.faults)
