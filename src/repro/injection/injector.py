"""Fault-injector plugin interface.

In the AFEX prototype, each node manager holds "a set of plugins that
convert fault descriptions from the AFEX-internal representation to
concrete configuration files and parameters for the injectors" (§6.1).
The internal representation here is an *attribute dict* — the named
attribute values of a fault-space point, e.g.::

    {"test": 7, "function": "malloc", "call": 2, "errno": "ENOMEM"}

A :class:`FaultInjector` turns such a dict into an
:class:`~repro.injection.plan.InjectionPlan` for the simulated libc.
New injector kinds (bit-flippers, config-error injectors, ...) plug in
by subclassing and registering.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import InjectionError
from repro.injection.plan import InjectionPlan

__all__ = ["FaultInjector", "InjectorRegistry"]


class FaultInjector(ABC):
    """Converts AFEX-internal fault descriptions into injection plans."""

    #: registry key; subclasses must override.
    name: str = ""

    @abstractmethod
    def plan_for(self, attributes: dict[str, object]) -> InjectionPlan:
        """Build the injection plan encoding ``attributes``.

        Returning :meth:`InjectionPlan.none` is legitimate: fault spaces
        may include a "no injection" point (the paper's coreutils space
        uses ``callNumber = 0`` for exactly that).
        """

    def describe(self) -> str:
        return self.name or type(self).__name__


class InjectorRegistry:
    """Name → injector lookup used by node managers."""

    def __init__(self) -> None:
        self._injectors: dict[str, FaultInjector] = {}

    def register(self, injector: FaultInjector) -> None:
        if not injector.name:
            raise InjectionError("injector must define a non-empty name")
        if injector.name in self._injectors:
            raise InjectionError(f"injector {injector.name!r} already registered")
        self._injectors[injector.name] = injector

    def get(self, name: str) -> FaultInjector:
        injector = self._injectors.get(name)
        if injector is None:
            raise InjectionError(
                f"no injector named {name!r}; registered: {sorted(self._injectors)}"
            )
        return injector

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._injectors))

    def __contains__(self, name: str) -> bool:
        return name in self._injectors

    def __len__(self) -> int:
        return len(self._injectors)
