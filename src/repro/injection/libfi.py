"""The library-level fault injector (our LFI stand-in).

Understands the attribute vocabulary the paper's fault spaces use
(§2, §7 "Fault Space Definition Methodology"):

``function``
    libc function name (string).
``call`` / ``callNumber``
    1-based call cardinality.  ``0`` means *no injection* — the hole the
    coreutils space reserves so exhaustive search has an explicit
    baseline point per test.  A ``(lo, hi)`` tuple — the value shape
    produced by the DSL's ``< lo , hi >`` sub-interval axes — fails
    every call in the range.
``errno`` (optional)
    symbolic errno; defaults to the function's representative failure
    mode from :mod:`repro.injection.profiles`.
``retval`` (optional)
    injected return value; defaults alongside errno.
``persistent`` (optional)
    fail every call from ``callNumber`` onward.

Attributes outside this vocabulary (notably ``test``) are ignored here —
they parameterize the *workload*, not the injector, and are consumed by
the node manager.

:class:`MultiLibFaultInjector` extends the vocabulary to multi-fault
scenarios (§4 "fault injection scenarios of arbitrary complexity"):
attributes are grouped by a numeric suffix, e.g. ``function_1``/
``call_1`` and ``function_2``/``call_2`` describe two atomic faults
injected in the same run.
"""

from __future__ import annotations

import re

from repro.errors import InjectionError
from repro.injection.injector import FaultInjector
from repro.injection.plan import AtomicFault, InjectionPlan
from repro.injection.profiles import fault_profile
from repro.sim.errnos import Errno

__all__ = ["LibFaultInjector", "MultiLibFaultInjector", "atomic_for"]


def atomic_for(
    function: object,
    call: object,
    errno: object = None,
    retval: object = None,
    persistent: object = False,
) -> AtomicFault | None:
    """Build one atomic fault from attribute values (None = no injection).

    Applies the profile-based defaulting rules shared by every
    library-level injector.
    """
    if function is None:
        raise InjectionError("libfi fault needs a 'function' attribute")
    function = str(function)

    if call is None:
        raise InjectionError("libfi fault needs a 'call' number")
    until: int | None = None
    if isinstance(call, tuple):
        if len(call) != 2:
            raise InjectionError(f"range call value must be (lo, hi): {call!r}")
        call_number, until = int(call[0]), int(call[1])
        if call_number == 0:
            return None
    else:
        call_number = int(call)  # type: ignore[arg-type]
    if call_number == 0:
        return None
    if call_number < 0:
        raise InjectionError(f"negative call number: {call_number}")

    profile = fault_profile(function)
    default_errno, default_retval = profile.default_error()

    if errno is None:
        chosen_errno = default_errno
    elif isinstance(errno, Errno):
        chosen_errno = errno
    else:
        chosen_errno = Errno.from_name(str(errno))
    if chosen_errno not in profile.errnos() and chosen_errno is not default_errno:
        raise InjectionError(
            f"{function} cannot fail with {chosen_errno.name}; "
            f"profile allows {[e.name for e in profile.errnos()]}"
        )

    if retval is None:
        chosen_retval = default_retval
        for profile_errno, profile_retval in profile.errors:
            if profile_errno is chosen_errno:
                chosen_retval = profile_retval
                break
    else:
        chosen_retval = int(retval)  # type: ignore[arg-type]

    return AtomicFault(
        function, call_number, chosen_errno, chosen_retval,
        bool(persistent), until,
    )


class LibFaultInjector(FaultInjector):
    """Converts single library-fault attribute dicts into injection plans."""

    name = "libfi"

    def plan_for(self, attributes: dict[str, object]) -> InjectionPlan:
        fault = atomic_for(
            attributes.get("function"),
            attributes.get("call", attributes.get("callNumber")),
            attributes.get("errno"),
            attributes.get("retval"),
            attributes.get("persistent", False),
        )
        if fault is None:
            return InjectionPlan.none()
        return InjectionPlan((fault,))


_SUFFIX = re.compile(r"^(function|call|callNumber|errno|retval|persistent)_(\w+)$")


class MultiLibFaultInjector(FaultInjector):
    """Multi-fault scenarios: suffix-grouped attribute vocabulary.

    ``{"function_a": "rename", "call_a": 1, "function_b": "write",
    "call_b": 2}`` injects two atomic faults in one run.  Groups whose
    call number is 0 contribute nothing, so fault spaces can express
    "zero, one, or two faults" uniformly; un-suffixed attributes
    describe an additional fault (compatible with the single-fault
    vocabulary).
    """

    name = "multi-libfi"

    def plan_for(self, attributes: dict[str, object]) -> InjectionPlan:
        groups: dict[str, dict[str, object]] = {}
        plain: dict[str, object] = {}
        for key, value in attributes.items():
            match = _SUFFIX.match(key)
            if match is not None:
                field, suffix = match.groups()
                groups.setdefault(suffix, {})[field] = value
            elif key in ("function", "call", "callNumber", "errno",
                         "retval", "persistent"):
                plain[key] = value

        faults: list[AtomicFault] = []
        if "function" in plain:
            fault = atomic_for(
                plain.get("function"),
                plain.get("call", plain.get("callNumber")),
                plain.get("errno"),
                plain.get("retval"),
                plain.get("persistent", False),
            )
            if fault is not None:
                faults.append(fault)
        for suffix in sorted(groups):
            group = groups[suffix]
            fault = atomic_for(
                group.get("function"),
                group.get("call", group.get("callNumber")),
                group.get("errno"),
                group.get("retval"),
                group.get("persistent", False),
            )
            if fault is not None:
                faults.append(fault)

        seen_functions = [f.function for f in faults]
        if len(set(seen_functions)) != len(seen_functions):
            # Two atomic faults on the same function: keep both only if
            # their trigger windows are disjoint; otherwise reject the
            # scenario as ambiguous (the space should model it as one
            # range fault instead).
            by_function: dict[str, list[AtomicFault]] = {}
            for fault in faults:
                by_function.setdefault(fault.function, []).append(fault)
            for function, group_faults in by_function.items():
                windows = sorted(
                    (f.call_number, f.until or f.call_number)
                    for f in group_faults
                )
                for (lo1, hi1), (lo2, hi2) in zip(windows, windows[1:]):
                    if hi1 >= lo2:
                        raise InjectionError(
                            f"overlapping faults on {function!r}: {windows}"
                        )
        return InjectionPlan(tuple(faults))
