"""Callsite analysis: derive fault spaces from observed behaviour.

The paper's methodology (§7): "we first run the default test suites that
ship with our test targets, and use the ltrace library-call tracer to
identify the calls that our target makes to libc and count how many
times each libc function is called.  We then use LFI's callsite
analyzer ... to obtain a fault profile for each libc function."

:func:`profile_target` is that pipeline: it runs every test of a target
with tracing enabled (no injection), collects per-test per-function call
counts, and joins them with the static fault profiles.  The result can
be rendered directly as a fault-space description in the paper's DSL
(Fig. 3/4) via :meth:`TargetProfile.fault_space_description`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InjectionError
from repro.injection.profiles import fault_profile
from repro.sim.process import run_test
from repro.sim.testsuite import Target

__all__ = ["TargetProfile", "profile_target"]


@dataclass(frozen=True)
class TargetProfile:
    """What a traced run of the whole suite revealed."""

    target_name: str
    #: functions observed, in fault-profile (category-grouped) order.
    functions: tuple[str, ...]
    #: call_counts[test_id][function] -> number of calls in that test.
    call_counts: dict[int, dict[str, int]]
    #: max calls to each function across any single test.
    max_calls: dict[str, int]
    test_ids: tuple[int, ...]

    def functions_called_by(self, test_id: int) -> tuple[str, ...]:
        counts = self.call_counts.get(test_id, {})
        return tuple(f for f in self.functions if counts.get(f, 0) > 0)

    def total_calls(self, function: str) -> int:
        return sum(c.get(function, 0) for c in self.call_counts.values())

    def fault_space_description(
        self,
        max_call: int | None = None,
        include_no_injection: bool = False,
        functions: tuple[str, ...] | None = None,
    ) -> str:
        """Render a DSL description (Fig. 3 grammar) of the fault space.

        One subspace spanning the whole suite: ``test`` × ``function`` ×
        ``call``.  ``max_call`` caps the call axis (the paper caps
        MySQL's at 100); by default it is the largest per-test call
        count observed.  ``include_no_injection`` starts the call axis
        at 0, reserving the explicit no-injection point used by the
        coreutils experiments.
        """
        chosen = functions or self.functions
        cap = max_call if max_call is not None else max(
            (self.max_calls.get(f, 1) for f in chosen), default=1
        )
        low = 0 if include_no_injection else 1
        function_set = ", ".join(chosen)
        # Subtype labels are DSL identifiers: letters/digits/underscores.
        label = "".join(
            ch if ch.isalnum() or ch == "_" else "_" for ch in self.target_name
        )
        return (
            f"{label}\n"
            f"test : [ {min(self.test_ids)} , {max(self.test_ids)} ]\n"
            f"function : {{ {function_set} }}\n"
            f"call : [ {low} , {cap} ] ;\n"
        )


def profile_target(target: Target, step_budget: int = 200_000) -> TargetProfile:
    """Trace every test of ``target`` (no injection) and build a profile.

    Functions with no fault profile are skipped: they are not injectable
    and therefore not part of any fault space.
    """
    call_counts: dict[int, dict[str, int]] = {}
    observed: set[str] = set()
    max_calls: dict[str, int] = {}
    for test in target.suite:
        result_counts = _trace_one(target, test, step_budget)
        call_counts[test.id] = result_counts
        for function, count in result_counts.items():
            observed.add(function)
            if count > max_calls.get(function, 0):
                max_calls[function] = count

    # Order observed functions by the category-grouped profile order so
    # the function axis has the locality the Gaussian mutation exploits.
    from repro.injection.profiles import profiled_functions

    ordered = tuple(f for f in profiled_functions() if f in observed)
    return TargetProfile(
        target_name=target.name,
        functions=ordered,
        call_counts=call_counts,
        max_calls=max_calls,
        test_ids=target.suite.ids,
    )


#: categories ordered by how often unchecked return values lurk there —
#: the heuristic LFI's callsite analyzer encodes (memory allocation
#: failures are the classic unchecked case, stdio next, and so on).
_RISK_ORDER = ("memory", "stdio", "file", "dir", "net", "process",
               "locale", "string")


def suggest_seeds(profile: TargetProfile, per_function: int = 1):
    """Static-analysis-style seed faults for the explorer (§4).

    "AFEX can use the results of the static analysis in the initial
    generation phase of test candidates.  By starting off with highly
    relevant tests from the beginning, AFEX can quickly learn the
    structure of the fault space."  Our analyzer equivalent ranks the
    observed functions by the riskiness of their category and, for each,
    proposes failing its first call(s) in the test that exercises it
    most — one concrete, plausible high-value injection per function.

    Returns :class:`repro.core.fault.Fault` objects with the standard
    ``test``/``function``/``call`` attributes.
    """
    from repro.core.fault import Fault

    def risk(function: str) -> int:
        category = fault_profile(function).category
        try:
            return _RISK_ORDER.index(category)
        except ValueError:  # pragma: no cover - every category is listed
            return len(_RISK_ORDER)

    seeds = []
    for function in sorted(profile.functions, key=risk):
        # The test that calls this function the most is the best probe.
        best_test = max(
            profile.test_ids,
            key=lambda tid: profile.call_counts.get(tid, {}).get(function, 0),
        )
        if profile.call_counts.get(best_test, {}).get(function, 0) == 0:
            continue
        for call in range(1, per_function + 1):
            if call <= profile.call_counts[best_test][function]:
                seeds.append(Fault.of(test=best_test, function=function,
                                      call=call))
    return tuple(seeds)


def _trace_one(target: Target, test, step_budget: int) -> dict[str, int]:
    """Per-function call counts for one uninjected, traced test run."""
    result = run_test(target, test, trace=True, step_budget=step_budget)
    counts: dict[str, int] = {}
    for function, count in result.call_counts.items():
        if _is_injectable(function):
            counts[function] = count
    return counts


def _is_injectable(function: str) -> bool:
    try:
        fault_profile(function)
    except InjectionError:
        return False
    return True
