"""Composable fault-model plugins.

AFEX is black-box and tool-independent (§3): the search engine only ever
sees a :class:`~repro.core.faultspace.FaultSpace` of named axes, and the
node managers only see scenario attribute dicts.  A :class:`FaultModel`
is the pluggable piece in between.  It

* declares which axes it contributes to the fault space
  (:meth:`FaultModel.axes`), and
* compiles a scenario's attribute values into concrete injection
  machinery (:meth:`FaultModel.compile`): libc-plan atomic faults, plus
  *world hooks* — small frozen objects that arm fault state on the
  simulated world (filesystem, network, heap) for one run and disarm it
  afterwards.

Everything a model produces is plain attribute values on the wire, so
``TestRequest`` scenarios, checkpoints, wire v1/v2/v3 frames, result
caches, and every fabric carry model-driven campaigns unchanged.

Models compose.  ``compose_models("errno+disk")`` yields both models'
axes in one subspace and :class:`ModelInjector` merges their compiled
outputs into one :class:`ScenarioPlan`.  Composition order is
canonicalized (each model carries a ``rank``), so ``"disk+errno"`` and
``"errno+disk"`` describe the same space, compile the same scenarios,
and therefore produce the same campaign digests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.faultspace import FaultSpace
from repro.errors import InjectionError
from repro.injection.injector import FaultInjector
from repro.injection.plan import AtomicFault, InjectionPlan

__all__ = [
    "FaultModel",
    "ModelInjector",
    "ScenarioPlan",
    "WorldHook",
    "canonical_spec",
    "compose_models",
    "model_by_name",
    "model_injector",
    "model_space",
    "register_model",
    "registered_models",
]


class WorldHook(ABC):
    """World-side fault state for one run: armed after target setup,
    disarmed before post-mortem invariants.

    Implementations are frozen dataclasses (plans are cached and reused
    across runs); any per-run mutable state — call counters and the
    like — is created inside :meth:`arm` and installed on the simulated
    world, never stored on the hook itself.
    """

    @abstractmethod
    def arm(self, env) -> None:
        """Install this hook's fault state on ``env``'s world."""

    @abstractmethod
    def disarm(self, env) -> None:
        """Remove the fault state, leaving the world pristine."""

    def label(self) -> str:
        """Short low-cardinality identity for metric labels and replay
        explanations (``disk:torn``, ``net:partition``...).

        Concrete hooks override this; the default keeps third-party
        hooks identifiable without requiring the method.
        """
        return type(self).__name__


@dataclass(frozen=True)
class ScenarioPlan(InjectionPlan):
    """An injection plan that also carries world hooks.

    The inherited Fig. 5 :meth:`~InjectionPlan.format` covers only the
    atomic faults; hooks are re-derived from the scenario attributes on
    replay, so a hook-free errno scenario formats — and digests —
    byte-identically to a plain :class:`InjectionPlan`.
    """

    hooks: tuple[WorldHook, ...] = ()


class FaultModel(ABC):
    """One composable fault dimension: axes in, injection machinery out."""

    #: registry key and the token used in ``--fault-model`` specs.
    name: str = ""
    #: canonical composition order (lower ranks compile first).  The
    #: built-ins claim 0–3; third-party models default higher.
    rank: int = 100

    @abstractmethod
    def axes(self, target, max_call: int = 2) -> dict[str, Sequence[object]]:
        """The axes this model contributes, in declaration order.

        Axis order is load-bearing: it fixes proposal order and thereby
        campaign digests, exactly like hand-built ``FaultSpace.product``
        keyword order.
        """

    @abstractmethod
    def compile(
        self, attributes: dict[str, object]
    ) -> tuple[tuple[AtomicFault, ...], tuple[WorldHook, ...]]:
        """Compile one scenario's attribute values.

        Returns ``(atomic_faults, world_hooks)``; either may be empty
        (every model reserves an explicit no-injection point).  Raises
        :class:`InjectionError` when the model's own axes are missing
        or malformed.
        """

    def describe(self) -> str:
        return self.name or type(self).__name__


_MODELS: dict[str, Callable[[], FaultModel]] = {}


def register_model(name: str, factory: Callable[[], FaultModel]) -> None:
    """Register a fault model under ``name`` (its ``--fault-model`` token)."""
    if not name:
        raise InjectionError("fault model must have a non-empty name")
    if name in _MODELS:
        raise InjectionError(f"fault model {name!r} already registered")
    if "+" in name:
        raise InjectionError(f"fault model name {name!r} may not contain '+'")
    _MODELS[name] = factory


def _ensure_builtins() -> None:
    # The built-in model modules self-register on import; importing the
    # package pulls them all in regardless of which symbol the caller
    # reached first.
    import repro.injection.models  # noqa: F401


def registered_models() -> tuple[str, ...]:
    """All registered model names, in canonical composition order."""
    _ensure_builtins()
    return tuple(
        name
        for name in sorted(_MODELS, key=lambda n: (_MODELS[n]().rank, n))
    )


def model_by_name(name: str) -> FaultModel:
    _ensure_builtins()
    factory = _MODELS.get(name)
    if factory is None:
        raise InjectionError(
            f"no fault model named {name!r}; registered: "
            f"{sorted(_MODELS)}"
        )
    return factory()


def compose_models(spec: str | Sequence[str]) -> tuple[FaultModel, ...]:
    """Resolve a ``"errno+disk"`` spec into model instances.

    Duplicates are rejected; order is canonicalized by ``(rank, name)``
    so every spelling of the same composition behaves — and digests —
    identically.
    """
    if isinstance(spec, str):
        names = [token.strip() for token in spec.split("+")]
    else:
        names = [str(token) for token in spec]
    names = [name for name in names if name]
    if not names:
        raise InjectionError("empty fault-model spec")
    if len(set(names)) != len(names):
        raise InjectionError(f"duplicate model in fault-model spec: {names}")
    models = [model_by_name(name) for name in names]
    models.sort(key=lambda m: (m.rank, m.name))
    return tuple(models)


def canonical_spec(spec: str | Sequence[str]) -> str:
    """The canonical ``+``-joined spelling of a fault-model spec."""
    return "+".join(model.name for model in compose_models(spec))


class ModelInjector(FaultInjector):
    """Adapter: a composed model stack behind the injector interface.

    The injector ``name`` (``model:errno+disk``) namespaces result-cache
    keys; campaign digests depend only on the compiled plans, which for
    the plain errno model are byte-identical to ``LibFaultInjector``'s.
    """

    def __init__(self, spec: str | Sequence[str] = "errno") -> None:
        self.models = compose_models(spec)
        self.spec = "+".join(model.name for model in self.models)
        self.name = f"model:{self.spec}"

    def plan_for(self, attributes: dict[str, object]) -> ScenarioPlan:
        faults: list[AtomicFault] = []
        hooks: list[WorldHook] = []
        for model in self.models:
            model_faults, model_hooks = model.compile(attributes)
            faults.extend(model_faults)
            hooks.extend(model_hooks)
        return ScenarioPlan(tuple(faults), tuple(hooks))

    def describe(self) -> str:
        return self.name


def model_injector(spec: str | Sequence[str] = "errno") -> ModelInjector:
    """Module-level factory — picklable via ``functools.partial`` for
    process-pool worker initializers and socket-fabric nodes."""
    return ModelInjector(spec)


def model_space(
    target,
    models: str | Sequence[str] | Sequence[FaultModel],
    max_call: int = 2,
) -> FaultSpace:
    """The fault space for ``target`` under a composed model stack.

    The ``test`` axis (workload selector) always comes first, then each
    model's axes in canonical composition order — for the plain errno
    model this reproduces the CLI's historical default space exactly.
    """
    if isinstance(models, str):
        stack: Sequence[FaultModel] = compose_models(models)
    elif models and isinstance(models[0], FaultModel):
        stack = tuple(models)  # type: ignore[arg-type]
    else:
        stack = compose_models(models)  # type: ignore[arg-type]
    axes: dict[str, Sequence[object]] = {
        "test": range(1, len(target.suite) + 1)
    }
    for model in stack:
        for axis_name, values in model.axes(target, max_call=max_call).items():
            if axis_name in axes:
                raise InjectionError(
                    f"axis {axis_name!r} declared by more than one model "
                    f"in {[m.name for m in stack]}"
                )
            axes[axis_name] = values
    return FaultSpace.product(**axes)
