"""Network fault model: partitions, delays, and reordering.

The model keeps one op counter per run and opens a bounded fault
*window* (``_WINDOW`` consecutive network operations starting at the
``net_op``-th); after the window closes the network is healed and stays
healed — the hypothesis suite proves partitions always heal back to a
connected fabric.

Modes:

``"partition"``
    operations inside the window fail hard (``ECONNRESET``-style);
    messages are dropped, never delivered.
``"delay"``
    the send is accepted but the message is parked until the window
    closes (the sender cannot tell — the classic ack-on-send trap the
    ``replkv`` target's planted commit bug walks into).
``"reorder"``
    the message jumps the queue, arriving ahead of earlier traffic.

Two consumers share the state object: ``SimLibc.recv``/``send`` (the
raw socket surface every target sees) and the ``replkv`` target's
replication bus.  For campaigns on the *real* socket fabric, the
:func:`chaos_rates` adapter maps a mode onto the chaos-cluster knobs
(``ChaosCluster(**chaos_rates("partition"))``) so the same axes drive
sabotage of genuine TCP dispatch.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import InjectionError
from repro.injection.models.base import FaultModel, WorldHook, register_model
from repro.injection.plan import AtomicFault

__all__ = [
    "NET_MODES",
    "NetFaultModel",
    "NetFaultState",
    "chaos_rates",
]

NET_MODES = ("partition", "delay", "reorder")
#: 1-based ordinal of the first network op inside the fault window;
#: ``0`` is the explicit no-fault point.
NET_OP_AXIS = tuple(range(0, 7))

#: consecutive network operations affected once the window opens — wide
#: enough to hit a leader's full replication fan-out in one window.
_WINDOW = 2


class NetFaultState:
    """Per-run mutable state: counts network ops, faults a window of them."""

    __slots__ = ("op_number", "mode", "window", "ops")

    def __init__(self, op_number: int, mode: str, window: int = _WINDOW) -> None:
        self.op_number = op_number
        self.mode = mode
        self.window = window
        self.ops = 0

    def on_op(self) -> str | None:
        """Advance the op counter; the active mode if this op is faulted."""
        self.ops += 1
        if self.op_number <= self.ops < self.op_number + self.window:
            return self.mode
        return None

    def peek(self) -> str | None:
        """The mode the *next* op would suffer, without consuming it."""
        nxt = self.ops + 1
        if self.op_number <= nxt < self.op_number + self.window:
            return self.mode
        return None

    @property
    def healed(self) -> bool:
        """True once the fault window has fully passed."""
        return self.ops >= self.op_number + self.window - 1


@dataclass(frozen=True)
class NetFaultHook(WorldHook):
    op_number: int
    mode: str

    def arm(self, env) -> None:
        env.libc.net_fault = NetFaultState(self.op_number, self.mode)

    def disarm(self, env) -> None:
        env.libc.net_fault = None

    def label(self) -> str:
        return f"net:{self.mode}"


def chaos_rates(mode: str) -> dict[str, float]:
    """ChaosCluster kwargs approximating a net-fault mode on the real
    socket fabric (partition → dropped dispatches, delay → hangs)."""
    if mode == "partition":
        return {"drop_rate": 0.3}
    if mode == "delay":
        return {"hang_rate": 0.3}
    if mode == "reorder":
        # TCP never reorders within a stream; on the real fabric the
        # observable analogue is a corrupted (retried) dispatch.
        return {"corrupt_rate": 0.3}
    raise InjectionError(f"unknown net mode {mode!r}; expected {NET_MODES}")


class NetFaultModel(FaultModel):
    """Partition/delay/reorder faults on the simulated network surface."""

    name = "net"
    rank = 2

    def axes(self, target=None, max_call: int = 2) -> dict[str, Sequence[object]]:
        return {"net_op": NET_OP_AXIS, "net_mode": NET_MODES}

    def compile(
        self, attributes: dict[str, object]
    ) -> tuple[tuple[AtomicFault, ...], tuple[WorldHook, ...]]:
        number = attributes.get("net_op")
        if number is None:
            raise InjectionError("net model needs a 'net_op' attribute")
        op_number = int(number)  # type: ignore[arg-type]
        if op_number < 0:
            raise InjectionError(f"negative net_op: {op_number}")
        if op_number == 0:
            return ((), ())
        mode = str(attributes.get("net_mode", "partition"))
        if mode not in NET_MODES:
            raise InjectionError(
                f"unknown net_mode {mode!r}; expected one of {NET_MODES}"
            )
        return ((), (NetFaultHook(op_number, mode),))


register_model("net", NetFaultModel)
