"""The errno fault model: the original libc-errno axes behind the
plugin interface.

This is a pure refactor of the pre-plugin behaviour: the axes match the
CLI's historical default space (``function`` × ``call``, with ``call=0``
reserved as the explicit no-injection point) and compilation defers to
the same :func:`~repro.injection.libfi.atomic_for` defaulting rules as
:class:`~repro.injection.libfi.LibFaultInjector`, so campaigns driven
through ``ModelInjector("errno")`` produce byte-identical digests to the
legacy injector.  The differential tests in
``tests/test_faultmodel_conformance.py`` gate exactly that.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.injection.libfi import atomic_for
from repro.injection.models.base import FaultModel, WorldHook, register_model
from repro.injection.plan import AtomicFault

__all__ = ["ErrnoFaultModel"]


class ErrnoFaultModel(FaultModel):
    """Library-call errno injection (the paper's §2 fault space)."""

    name = "errno"
    rank = 0

    def axes(self, target, max_call: int = 2) -> dict[str, Sequence[object]]:
        return {
            "function": target.libc_functions(),
            "call": range(0, max_call + 1),
        }

    def compile(
        self, attributes: dict[str, object]
    ) -> tuple[tuple[AtomicFault, ...], tuple[WorldHook, ...]]:
        fault = atomic_for(
            attributes.get("function"),
            attributes.get("call", attributes.get("callNumber")),
            attributes.get("errno"),
            attributes.get("retval"),
            attributes.get("persistent", False),
        )
        if fault is None:
            return ((), ())
        return ((fault,), ())


register_model("errno", ErrnoFaultModel)
