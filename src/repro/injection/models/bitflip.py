"""Bit-flip fault model: ZOFI-style transient flips in the sim heap.

ZOFI (PAPERS.md) injects single-bit transient faults into live machine
state and observes whether they are masked, corrupt output, or crash
the program.  The sim analogue: every *validated* heap access funnels
through ``Heap._checked``, so a counter there sees each load, store,
string read, and realloc of live allocations — the Nth access gets one
bit of its allocation's first byte flipped, then execution proceeds.
Flips can be masked (a store immediately overwrites the byte), surface
as silent data corruption (a KV value read back wrong), or escalate to
crashes — exactly ZOFI's outcome taxonomy.

Axes:

``flip_access``
    1-based ordinal of the checked heap access to flip at; ``0`` is the
    explicit no-fault point.
``flip_bit``
    which bit (0–7) of the allocation's first byte to flip.  XORing a
    single-bit mask is an involution — flipping twice restores the
    byte — which the hypothesis suite proves.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import InjectionError
from repro.injection.models.base import FaultModel, WorldHook, register_model
from repro.injection.plan import AtomicFault

__all__ = ["BitFlipModel", "BitFlipState", "flip_bit"]

FLIP_ACCESS_AXIS = tuple(range(0, 9))
FLIP_BITS = tuple(range(8))


def flip_bit(data: bytearray, bit: int) -> None:
    """Flip one bit of the first byte in place (involution; no-op on
    empty buffers)."""
    if data:
        data[0] ^= 1 << (bit & 7)


class BitFlipState:
    """Per-run mutable state: counts checked heap accesses, flips once."""

    __slots__ = ("access_number", "bit", "accesses", "fired")

    def __init__(self, access_number: int, bit: int) -> None:
        self.access_number = access_number
        self.bit = bit
        self.accesses = 0
        self.fired = False

    def on_access(self, data: bytearray) -> None:
        self.accesses += 1
        if not self.fired and self.accesses == self.access_number:
            self.fired = True
            flip_bit(data, self.bit)


@dataclass(frozen=True)
class BitFlipHook(WorldHook):
    access_number: int
    bit: int

    def arm(self, env) -> None:
        env.libc.heap.bitflip = BitFlipState(self.access_number, self.bit)

    def disarm(self, env) -> None:
        env.libc.heap.bitflip = None

    def label(self) -> str:
        return f"bitflip:bit{self.bit}"


class BitFlipModel(FaultModel):
    """Transient single-bit flips in live heap allocations."""

    name = "bitflip"
    rank = 3

    def axes(self, target=None, max_call: int = 2) -> dict[str, Sequence[object]]:
        return {"flip_access": FLIP_ACCESS_AXIS, "flip_bit": FLIP_BITS}

    def compile(
        self, attributes: dict[str, object]
    ) -> tuple[tuple[AtomicFault, ...], tuple[WorldHook, ...]]:
        number = attributes.get("flip_access")
        if number is None:
            raise InjectionError("bitflip model needs a 'flip_access' attribute")
        access_number = int(number)  # type: ignore[arg-type]
        if access_number < 0:
            raise InjectionError(f"negative flip_access: {access_number}")
        if access_number == 0:
            return ((), ())
        bit = int(attributes.get("flip_bit", 0))  # type: ignore[arg-type]
        if not 0 <= bit <= 7:
            raise InjectionError(f"flip_bit must be in [0, 7], got {bit}")
        return ((), (BitFlipHook(access_number, bit),))


register_model("bitflip", BitFlipModel)
