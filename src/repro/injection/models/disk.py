"""Disk fault model: torn writes and silent corruption in the sim FS.

Real disks lie.  A torn write persists only a prefix of the data while
the ``write(2)`` syscall still reports full success; silent corruption
flips bits on the platter with no error at all.  Both are classic
triggers for write-ahead-log recovery bugs — a WAL whose replay trusts
record framing or skips checksum validation loses acknowledged data
(the ``replkv`` target plants exactly that bug).

Axes:

``disk_write``
    1-based ordinal of the filesystem write the fault hits; ``0`` is
    the explicit no-fault point.
``disk_mode``
    ``"torn"`` persists only the first half of the write (the claimed
    byte count is unchanged — the lie is the point); ``"corrupt"``
    XORs ``0x20`` over the first bytes, preserving length.  The mask is
    an involution, which the hypothesis suite exploits.

The armed state lives on ``SimFilesystem.disk_fault`` and is consulted
by :meth:`SimFilesystem.write`; a ``None`` check is the entire unarmed
overhead (the ZOFI near-zero-overhead property).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import InjectionError
from repro.injection.models.base import FaultModel, WorldHook, register_model
from repro.injection.plan import AtomicFault

__all__ = [
    "DISK_MODES",
    "DiskFaultModel",
    "DiskFaultState",
    "corrupt_bytes",
    "torn_bytes",
]

DISK_MODES = ("torn", "corrupt")
#: enough ordinals to reach past a few WAL appends in any suite test.
DISK_WRITE_AXIS = tuple(range(0, 7))

_CORRUPT_MASK = 0x20
_CORRUPT_SPAN = 4


def torn_bytes(data: bytes) -> bytes:
    """The prefix a torn write actually persists (never longer than
    the original)."""
    return data[: len(data) // 2]


def corrupt_bytes(data: bytes) -> bytes:
    """Length-preserving silent corruption; applying it twice restores
    the original (XOR involution)."""
    if not data:
        return data
    mutated = bytearray(data)
    for i in range(min(_CORRUPT_SPAN, len(mutated))):
        mutated[i] ^= _CORRUPT_MASK
    return bytes(mutated)


class DiskFaultState:
    """Per-run mutable state: counts writes, mutates the Nth one."""

    __slots__ = ("write_number", "mode", "writes")

    def __init__(self, write_number: int, mode: str) -> None:
        self.write_number = write_number
        self.mode = mode
        self.writes = 0

    def transform(self, data: bytes) -> bytes:
        self.writes += 1
        if self.writes != self.write_number:
            return data
        if self.mode == "torn":
            return torn_bytes(data)
        return corrupt_bytes(data)


@dataclass(frozen=True)
class DiskFaultHook(WorldHook):
    write_number: int
    mode: str

    def arm(self, env) -> None:
        env.fs.disk_fault = DiskFaultState(self.write_number, self.mode)

    def disarm(self, env) -> None:
        env.fs.disk_fault = None

    def label(self) -> str:
        return f"disk:{self.mode}"


class DiskFaultModel(FaultModel):
    """Torn/corrupt writes against the simulated filesystem."""

    name = "disk"
    rank = 1

    def axes(self, target=None, max_call: int = 2) -> dict[str, Sequence[object]]:
        return {"disk_write": DISK_WRITE_AXIS, "disk_mode": DISK_MODES}

    def compile(
        self, attributes: dict[str, object]
    ) -> tuple[tuple[AtomicFault, ...], tuple[WorldHook, ...]]:
        number = attributes.get("disk_write")
        if number is None:
            raise InjectionError("disk model needs a 'disk_write' attribute")
        write_number = int(number)  # type: ignore[arg-type]
        if write_number < 0:
            raise InjectionError(f"negative disk_write: {write_number}")
        if write_number == 0:
            return ((), ())
        mode = str(attributes.get("disk_mode", "torn"))
        if mode not in DISK_MODES:
            raise InjectionError(
                f"unknown disk_mode {mode!r}; expected one of {DISK_MODES}"
            )
        return ((), (DiskFaultHook(write_number, mode),))


register_model("disk", DiskFaultModel)
