"""Composable fault-model plugins (see :mod:`repro.injection.models.base`).

Importing this package registers the four built-in models — errno
(rank 0), disk (1), net (2), bitflip (3) — in canonical composition
order.
"""

from repro.injection.models.base import (
    FaultModel,
    ModelInjector,
    ScenarioPlan,
    WorldHook,
    canonical_spec,
    compose_models,
    model_by_name,
    model_injector,
    model_space,
    register_model,
    registered_models,
)
from repro.injection.models.bitflip import BitFlipModel, BitFlipState, flip_bit
from repro.injection.models.disk import (
    DiskFaultModel,
    DiskFaultState,
    corrupt_bytes,
    torn_bytes,
)
from repro.injection.models.errno_model import ErrnoFaultModel
from repro.injection.models.net import (
    NetFaultModel,
    NetFaultState,
    chaos_rates,
)

__all__ = [
    "BitFlipModel",
    "BitFlipState",
    "DiskFaultModel",
    "DiskFaultState",
    "ErrnoFaultModel",
    "FaultModel",
    "ModelInjector",
    "NetFaultModel",
    "NetFaultState",
    "ScenarioPlan",
    "WorldHook",
    "canonical_spec",
    "chaos_rates",
    "compose_models",
    "corrupt_bytes",
    "flip_bit",
    "model_by_name",
    "model_injector",
    "model_space",
    "register_model",
    "registered_models",
    "torn_bytes",
]
