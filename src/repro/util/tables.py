"""Fixed-width text tables used by benchmarks and reports.

The paper's evaluation is communicated through small tables (Tables 1-6);
benchmark harnesses in :mod:`benchmarks` print the reproduced rows with
this formatter so the output can be compared side-by-side with the paper.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["TextTable"]


class TextTable:
    """A minimal fixed-width table with a header row and aligned columns.

    >>> t = TextTable(["metric", "fitness", "random"])
    >>> t.add_row(["# crashes", 464, 51])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    metric     | fitness | random
    -----------+---------+-------
    # crashes  | 464     | 51
    """

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, cells: Iterable[object]) -> None:
        """Append a row; cells are stringified with ``format_cell``."""
        row = [self.format_cell(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    @staticmethod
    def format_cell(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    def _widths(self) -> list[int]:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        """Render the table as a string (no trailing newline)."""
        widths = self._widths()
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header.rstrip())
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            line = " | ".join(c.ljust(w) for c, w in zip(row, widths))
            lines.append(line.rstrip())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
