"""Small shared utilities: deterministic RNG handling and text tables."""

from repro.util.rng import derive_rng, ensure_rng
from repro.util.tables import TextTable

__all__ = ["derive_rng", "ensure_rng", "TextTable"]
