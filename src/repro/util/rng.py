"""Deterministic random-number handling.

The paper's search algorithms are stochastic, and the evaluation compares
strategies against each other; to make those comparisons reproducible,
*no* module in this package touches the global :mod:`random` state.
Every stochastic component receives a :class:`random.Random` instance,
and derived components receive independent streams via
:func:`derive_rng` so that, e.g., adding extra sampling to one strategy
does not perturb another strategy's stream.
"""

from __future__ import annotations

import random

__all__ = ["ensure_rng", "derive_rng"]


def ensure_rng(rng: random.Random | int | None) -> random.Random:
    """Coerce ``rng`` into a :class:`random.Random`.

    Accepts an existing generator (returned unchanged), an integer seed,
    or ``None`` (a fresh, OS-seeded generator).
    """
    if isinstance(rng, random.Random):
        return rng
    if rng is None:
        return random.Random()
    return random.Random(rng)


def derive_rng(rng: random.Random, label: str) -> random.Random:
    """Derive an independent, deterministic sub-stream from ``rng``.

    The sub-stream is keyed by ``label`` and by a draw from the parent so
    that distinct labels (and distinct parents) produce distinct streams.
    """
    seed = f"{rng.getrandbits(64)}/{label}"
    return random.Random(seed)
